"""Fig 11 — case study: a failed job with a transfer spanning queue and wall.

Paper (pandaid 6583431126): first transfer (4.6 GB) took 22 s, the
second (20.5 GB) over 30 minutes — spanning both queuing and execution
and occupying >90% of the job lifetime; throughput differed >20x; the
job failed with error 1305 ("Non-zero return code from Overlay (1)").
Causality is unproven but prolonged transfers plausibly raise failure
odds.

Reproduced claims: failed jobs with queue+wall-spanning transfers exist;
spanning-staging jobs fail at a higher rate than matched jobs overall
(the mechanism the simulator encodes explicitly).
"""

from conftest import write_comparison

from repro.core.analysis.timeline import find_failed_with_overlap
from repro.core.anomaly.staging import (
    StagingSeverity,
    failure_rate_by_severity,
    find_staging_anomalies,
)
from repro.units import bytes_to_human


def test_fig11_failed_spanning_case(benchmark, eightday_report):
    matches = eightday_report["rm2"].matched_jobs()

    cases = benchmark(find_failed_with_overlap, matches)

    anomalies = find_staging_anomalies(matches)
    rates = failure_rate_by_severity(anomalies)
    overall_failed = sum(1 for m in matches if m.job.status == "failed") / len(matches)

    measured = {
        "n_failed_spanning_jobs": len(cases),
        "overall_matched_failure_rate": round(overall_failed, 3),
        "failure_rate_by_severity": {
            sev.name.lower(): round(rate, 3) for sev, rate in rates.items()
        },
    }
    if cases:
        case = cases[0]
        spanning = case.transfers_spanning_execution()
        measured["case"] = {
            "pandaid": case.pandaid,
            "error_code": case.error_code,
            "error_message": case.error_message,
            "spanning_transfer": bytes_to_human(spanning[0].file_size),
            "spanning_duration_s": round(spanning[0].duration, 1),
            "lifetime_share": round(spanning[0].duration / case.lifetime, 2),
            "throughput_spread": round(case.throughput_spread(), 1),
        }
        assert case.status == "failed"
        assert spanning

    if StagingSeverity.SPANNING in rates and len(
            [a for a in anomalies if a.severity is StagingSeverity.SPANNING]) >= 5:
        assert rates[StagingSeverity.SPANNING] >= overall_failed, (
            "spanning-staging jobs should fail at least as often as average")

    write_comparison(
        "fig11_case_failed",
        paper={
            "pandaid": 6583431126,
            "transfers": ["4.6 GB in 22 s", "20.5 GB in >30 min"],
            "lifetime_share": ">0.9",
            "throughput_spread": ">20x",
            "error": "1305 Non-zero return code from Overlay (1)",
        },
        measured=measured,
    )
