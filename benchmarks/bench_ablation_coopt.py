"""Closed-loop co-optimization ladder (the paper's §7 direction).

The paper argues PanDA and Rucio should "share performance awareness to
jointly balance load and data locality".  This benchmark walks the
registered policy ladder — baseline, aware brokerage, +dedup,
+re-brokerage, full loop — over one congested seeded campaign, every
rung observing only the *degraded telemetry stream* (the digital-twin
setting; no ground-truth sinks).

Reproduced claim (directional): shared awareness drains queue tails
dramatically and the full loop beats the non-aware baseline on
makespan and/or transfer volume; the cost is somewhat more remote
movement — the §3.1 locality-vs-load trade.

The CI gate at the bottom enforces the headline: at the default seed,
the full loop must improve makespan OR transfer volume over baseline.
"""

from conftest import write_comparison

from repro.coopt import POLICY_LADDER, ControlLoop
from repro.grid.presets import WlcgPresetConfig
from repro.scenarios.runtime import HarnessConfig
from repro.workload.generator import WorkloadConfig

SEED = 11


def _config() -> HarnessConfig:
    """A small overloaded grid: queues back up, so steering matters."""
    return HarnessConfig(
        seed=SEED,
        workload=WorkloadConfig(
            duration=12 * 3600.0,
            analysis_tasks_per_hour=60.0,
            production_tasks_per_hour=0.2,
            background_transfers_per_hour=20.0,
        ),
        grid=WlcgPresetConfig(n_tier2=4, n_tier3=2, scale=0.08),
        drain=12 * 3600.0,
    )


def _run_ladder() -> dict:
    results = {}
    for policy in POLICY_LADDER:
        loop = ControlLoop(_config(), policy, epoch_seconds=2 * 3600.0)
        results[policy] = loop.run()
    return results


def test_coopt_policy_ladder(benchmark):
    results = benchmark.pedantic(_run_ladder, rounds=1, iterations=1)

    base = results["baseline"]
    aware = results["aware"]
    full = results["full"]

    for policy, r in results.items():
        assert r.n_jobs > 0, policy
        # no ladder rung may collapse success
        assert r.success_rate > base.success_rate - 0.05, policy

    # Awareness alone must drain the queue tail (the headline effect).
    assert aware.queue_p95 < base.queue_p95 * 0.75

    # Steering happened on the upper rungs and was observed end to end.
    assert full.final_generation == full.n_epochs + 1
    assert results["aware+rebroker"].rebrokered + full.rebrokered > 0

    # -- CI GATE: the closed loop beats the non-aware baseline ------------------
    improves_makespan = full.makespan < base.makespan
    improves_volume = full.transfer_volume < base.transfer_volume
    assert improves_makespan or improves_volume, (
        f"full loop regressed both gate metrics: makespan "
        f"{full.makespan:.0f} vs {base.makespan:.0f}, volume "
        f"{full.transfer_volume / 1e12:.4f} vs {base.transfer_volume / 1e12:.4f} TB"
    )

    write_comparison(
        "ablation_coopt",
        paper={
            "note": "§7 future direction; no numbers in the paper",
            "expectation": "closed-loop shared awareness drains queue tails "
                           "and improves makespan/volume over the locality "
                           "heuristic, trading some extra remote movement",
        },
        measured={
            "config": {
                "seed": SEED,
                "duration_h": 12.0,
                "drain_h": 12.0,
                "epoch_hours": 2.0,
                "grid": "4xT2 + 2xT3 at 0.08 scale (congested)",
            },
            "ladder": {policy: r.row() for policy, r in results.items()},
            "gate": {
                "full_vs_baseline_makespan_s": round(
                    base.makespan - full.makespan, 1
                ),
                "full_vs_baseline_volume_GB": round(
                    (base.transfer_volume - full.transfer_volume) / 1e9, 3
                ),
                "improves_makespan": improves_makespan,
                "improves_volume": improves_volume,
            },
        },
        notes="every rung observes only degraded stream telemetry; "
              "baseline pays the same observation cost but never steers",
    )
