"""Ablation (the paper's §7 direction) — locality-only vs co-optimized
brokerage.

The paper argues PanDA and Rucio should "share performance awareness to
jointly balance load and data locality".  This benchmark runs the same
seeded campaign under both brokers and compares queuing delay, success
rate, load balance, and remote movement.

Reproduced claim (directional): co-optimization should not degrade
success rate and should improve load balance, at the cost of somewhat
more remote movement — the trade §3.1 describes.
"""

from conftest import write_comparison

from repro.scenarios.ablation import AblationConfig, run_ablation


def test_ablation_locality_vs_coopt(benchmark):
    cfg = AblationConfig(seed=11, days=1.5, analysis_tasks_per_hour=8.0)

    result = benchmark.pedantic(run_ablation, args=(cfg,), rounds=1, iterations=1)

    loc, co = result.locality, result.coopt

    assert co.n_jobs > 0 and loc.n_jobs > 0
    # Co-optimization must not collapse success.
    assert co.success_rate > loc.success_rate - 0.05
    # It spreads load at least as evenly as the locality heuristic.
    assert co.load_imbalance <= loc.load_imbalance * 1.2

    write_comparison(
        "ablation_coopt",
        paper={
            "note": "§7 future direction; no numbers in the paper",
            "expectation": "shared awareness balances load without hurting "
                           "success; locality-only piles work onto data sites",
        },
        measured={
            "locality": {
                "jobs": loc.n_jobs,
                "success_rate": round(loc.success_rate, 3),
                "mean_queuing_s": round(loc.mean_queuing, 1),
                "p95_queuing_s": round(loc.p95_queuing, 1),
                "remote_TB": round(loc.remote_bytes / 1e12, 3),
                "load_imbalance": round(loc.load_imbalance, 4),
                "error_share_data": round(loc.data_error_share, 3),
                "error_share_compute": round(loc.compute_error_share, 3),
            },
            "coopt": {
                "jobs": co.n_jobs,
                "success_rate": round(co.success_rate, 3),
                "mean_queuing_s": round(co.mean_queuing, 1),
                "p95_queuing_s": round(co.p95_queuing, 1),
                "remote_TB": round(co.remote_bytes / 1e12, 3),
                "load_imbalance": round(co.load_imbalance, 4),
                "error_share_data": round(co.data_error_share, 3),
                "error_share_compute": round(co.compute_error_share, 3),
            },
            "queue_speedup": round(result.queue_speedup, 3),
            "balance_gain": round(result.balance_gain, 3),
        },
    )
