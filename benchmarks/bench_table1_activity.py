"""Table 1 — breakdown of exact-matched transfers by activity.

Paper: Analysis Download 8.38%, Analysis Upload 95.42%, Analysis
Download Direct IO 2.31%, Production Upload 0%, Production Download 0%,
Total 1.92% of the 1,585,229 transfers carrying a jeditaskid.

The reproduced claim is the *ordering* (Upload ≫ Download > Direct IO >
Production = 0) and the production blind spot.
"""

from conftest import write_comparison

from repro.core.analysis.summary import activity_breakdown


PAPER_ROWS = {
    "Analysis Download": 8.38,
    "Analysis Upload": 95.42,
    "Analysis Download Direct IO": 2.31,
    "Production Upload": 0.0,
    "Production Download": 0.0,
    "Total": 1.92,
}


def test_table1_activity_breakdown(benchmark, eightday, eightday_report):
    telemetry = eightday.telemetry
    exact = eightday_report["exact"]

    rows = benchmark(activity_breakdown, exact, telemetry.transfers)

    by_activity = {r.activity: r for r in rows}

    # Production transfers never match (block-granularity mismatch).
    assert by_activity["Production Upload"].matched == 0
    assert by_activity["Production Download"].matched == 0
    # Upload is the best-matched activity; Direct IO the worst nonzero.
    au = by_activity["Analysis Upload"]
    ad = by_activity["Analysis Download"]
    addio = by_activity["Analysis Download Direct IO"]
    assert au.pct > 50.0
    assert au.pct > ad.pct > addio.pct > 0.0
    # Overall match rate is low single digits.
    assert 0.0 < by_activity["Total"].pct < 15.0

    write_comparison(
        "table1_activity",
        paper={k: f"{v}%" for k, v in PAPER_ROWS.items()},
        measured={
            r.activity: {"matched": r.matched, "total": r.total, "pct": round(r.pct, 2)}
            for r in rows
        },
        notes="Ordering AU >> AD > ADDIO > production=0 is the reproduced claim.",
    )
