"""Fig 12 + Table 3 — case study: redundant transfers and UNKNOWN-site
reconstruction through RM2.

Paper (pandaid 6585617863): the same three files were transferred twice;
the first set's destination was recorded UNKNOWN, so exact matching
misses the job, but RM2 matches it, and byte-identical size pairing
(5,243,410,528 / 5,243,415,988 / 5,242,750,540 bytes) proves the
UNKNOWN destination was CERN-PROD — redundant movement that was "in
principle avoidable".

Reproduced claims: redundant same-file same-destination transfer groups
exist; RM2 matches jobs exact matching misses; UNKNOWN labels are
reconstructible with high accuracy against ground truth.
"""

from conftest import write_comparison

from repro.core.anomaly.inference import infer_unknown_sites, inference_accuracy
from repro.core.anomaly.redundant import find_redundant_transfers, total_wasted_bytes
from repro.units import bytes_to_human


def test_fig12_redundant_and_inference(benchmark, eightday, eightday_report):
    telemetry = eightday.telemetry

    groups = benchmark(find_redundant_transfers, telemetry.transfers)

    assert groups, "redundant transfer groups expected (prefetch duplicates)"
    wasted = total_wasted_bytes(groups)
    assert wasted > 0

    # RM2 recovers jobs exact matching cannot see.
    exact_jobs = {m.job.pandaid for m in eightday_report["exact"].matched_jobs()}
    rm2_jobs = {m.job.pandaid for m in eightday_report["rm2"].matched_jobs()}
    rm2_only = rm2_jobs - exact_jobs
    assert rm2_only, "RM2 must add jobs beyond exact matching"

    inferences = infer_unknown_sites(
        eightday_report["rm2"].matched_jobs(), telemetry.transfers)
    accuracy = inference_accuracy(inferences, telemetry.ground_truth.true_sites)
    assert inferences, "UNKNOWN-site inferences expected"
    assert accuracy > 0.5, "inference must beat coin-flips against ground truth"

    write_comparison(
        "fig12_case_redundant",
        paper={
            "pandaid": 6585617863,
            "redundant_files": 3,
            "unknown_destination_recovered": "CERN-PROD",
            "evidence": "byte-identical sizes pairing transfers (0,3),(1,4),(2,5)",
        },
        measured={
            "n_redundant_groups": len(groups),
            "wasted_bytes": bytes_to_human(wasted),
            "largest_group": {
                "lfn": groups[0].lfn,
                "destination": groups[0].destination,
                "copies": groups[0].n_copies,
                "wasted": bytes_to_human(groups[0].wasted_bytes),
            },
            "rm2_only_jobs": len(rm2_only),
            "n_site_inferences": len(inferences),
            "inference_accuracy_vs_ground_truth": round(accuracy, 3),
        },
        notes="Ground-truth accuracy is an evaluation the paper could not run.",
    )
