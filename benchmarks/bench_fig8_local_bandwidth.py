"""Fig 8 — bandwidth usage variation at six local sites.

Paper: intra-site throughput is generally higher than remote but still
fluctuates substantially (spikes to 430 MBps vs lulls below 60 MBps at
the same site), with intermittent drops limiting effective utilisation
— local placement is not automatically optimal.

Reproduced claims: the six busiest local sites show higher peak
throughput than the busiest remote links, yet still fluctuate
(cv > 0.3); intermittent inactive/low buckets exist.
"""

import numpy as np
from conftest import write_comparison

from repro.core.analysis.bandwidth import (
    bandwidth_series,
    busiest_links,
    link_transfers,
)


def test_fig8_local_bandwidth(benchmark, eightday):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window

    local_links = busiest_links(telemetry.transfers, kind="local", top=6)
    remote_links = busiest_links(telemetry.transfers, kind="remote", top=6)
    assert len(local_links) >= 3

    def build_local():
        return [
            bandwidth_series(
                link_transfers(telemetry.transfers, s, s),
                t0, t1, bucket_seconds=900.0, label=s,
            )
            for (s, _), _ in local_links
        ]

    local_series = benchmark(build_local)
    remote_series = [
        bandwidth_series(link_transfers(telemetry.transfers, a, b),
                         t0, t1, 900.0, f"{a}->{b}")
        for (a, b), _ in remote_links
    ]

    local_peak = max(s.peak_mbps for s in local_series)
    remote_peak = max((s.peak_mbps for s in remote_series), default=0.0)

    # "local throughput is generally higher": compare the *per-transfer*
    # achieved rates (aggregate bucket peaks also depend on concurrency).
    local_rates = [t.throughput for t in telemetry.transfers
                   if t.is_local and t.duration > 0]
    remote_rates = [t.throughput for t in telemetry.transfers
                    if not t.is_local and not t.has_unknown_site and t.duration > 0]
    assert np.median(local_rates) > np.median(remote_rates), (
        "per-transfer local throughput should top remote")
    assert any(s.fluctuation > 0.3 for s in local_series), "local links still fluctuate"

    # Intermittent drops: active buckets interleaved with idle ones.
    drop_sites = []
    for s in local_series:
        mbps = s.mbps
        active = mbps > 0
        if active.any() and (~active[np.argmax(active):]).any():
            drop_sites.append(s.label)

    write_comparison(
        "fig8_local_bandwidth",
        paper={
            "sites": "six local sites",
            "finding": "higher but fluctuating throughput; 430 MBps spikes vs "
                       "<60 MBps lulls; intermittent drops",
        },
        measured={
            "sites": [
                {
                    "site": s.label,
                    "peak_mbps": round(s.peak_mbps, 1),
                    "mean_mbps": round(s.mean_mbps, 2),
                    "fluctuation_cv": round(s.fluctuation, 2),
                }
                for s in local_series
            ],
            "local_peak_mbps": round(local_peak, 1),
            "remote_peak_mbps": round(remote_peak, 1),
            "median_local_transfer_mbps": round(float(np.median(local_rates)) / 1e6, 2),
            "median_remote_transfer_mbps": round(float(np.median(remote_rates)) / 1e6, 2),
            "sites_with_intermittent_drops": drop_sites,
        },
    )
