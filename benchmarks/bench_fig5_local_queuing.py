"""Fig 5 — top-40 local-transfer jobs with >=10% of queue time in transfer.

Paper: all-local matched jobs ranked by queuing time; failed jobs are
over-represented among high transfer-time-percentage cases; no
significant correlation between transferred volume and queuing time;
the worst job exceeded 10,000 s of absolute transfer time (83% share).

Reproduced claims: a non-empty top list exists; failure rate within the
list exceeds the overall matched-job failure rate, and size/queue
correlation stays weak.
"""

from conftest import write_comparison

from repro.core.analysis.queuing import (
    correlation_size_vs_time,
    timing_table,
    timings_for_result,
    top_jobs_breakdown,
)


def test_fig5_local_queuing_breakdown(benchmark, eightday_report, frame):
    result = eightday_report["exact"]
    timings = timings_for_result(result, frame=frame)

    if frame == "columnar":
        top = benchmark(timing_table(result).top_jobs, "local", 10.0, 40)
    else:
        top = benchmark(top_jobs_breakdown, timings, "local", 10.0, 40)

    assert top, "expected local jobs with >=10% transfer-time share"
    assert all(t.transfer_pct >= 10.0 for t in top)
    assert [t.queuing_time for t in top] == sorted(
        (t.queuing_time for t in top), reverse=True)

    overall_failed = sum(1 for t in timings if t.status == "failed") / len(timings)
    top_failed = sum(1 for t in top if t.status == "failed") / len(top)
    corr = correlation_size_vs_time(top)

    assert abs(corr) < 0.8, "volume must not explain queuing time"

    write_comparison(
        "fig5_local_queuing",
        paper={
            "selection": "top 40 all-local jobs, transfer >=10% of queue",
            "finding": "failed jobs over-represented; no size/queue correlation",
            "worst_transfer_seconds": ">10,000",
        },
        measured={
            "n_selected": len(top),
            "overall_failure_rate": round(overall_failed, 3),
            "top_failure_rate": round(top_failed, 3),
            "failure_enriched": bool(top_failed >= overall_failed),
            "size_queue_correlation": round(corr, 3),
            "worst": {
                "pandaid": top[0].pandaid,
                "queuing_s": round(top[0].queuing_time, 1),
                "transfer_s": round(top[0].transfer_time, 1),
                "transfer_pct": round(top[0].transfer_pct, 1),
                "label": top[0].label,
            },
            "rows": [
                {
                    "pandaid": t.pandaid,
                    "label": t.label,
                    "queuing_s": round(t.queuing_time, 1),
                    "transfer_pct": round(t.transfer_pct, 1),
                    "bytes": t.transfer_bytes,
                }
                for t in top[:10]
            ],
        },
    )
