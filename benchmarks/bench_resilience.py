"""Resilience study (§3.2's motivation).

"While each system achieves its separate design goals, these transfer
patterns expose system vulnerability and increase the likelihood of
errors at network and storage hot spots."  The paper motivates the
whole analysis with resilience; this benchmark quantifies it on the
simulator: inject a compute incident at the busiest Tier-1 and a
network incident at Tier-0, then compare the affected sites' outcomes
against the incident-free twin run.

Reproduced claim (directional): hot-spot incidents measurably degrade
the affected site's failure rate and queuing while the rest of the grid
absorbs the load — the vulnerability concentration the paper warns
about.
"""

import numpy as np
from conftest import write_comparison

from repro.grid.incidents import Incident, IncidentInjector
from repro.grid.presets import build_mini
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.workload.generator import WorkloadConfig

TARGET = "BNL-ATLAS"


def _run(with_incidents: bool) -> dict:
    h = SimulationHarness(
        HarnessConfig(
            seed=23,
            workload=WorkloadConfig(
                duration=24 * 3600.0,
                analysis_tasks_per_hour=8.0,
                production_tasks_per_hour=0.5,
                background_transfers_per_hour=20.0,
            ),
            drain=36 * 3600.0,
        ),
        topology=build_mini(seed=23),
    )
    if with_incidents:
        inj = IncidentInjector(h.engine, h.topology)
        inj.schedule(Incident(TARGET, 6 * 3600.0, 30 * 3600.0, "compute", 0.25))
        inj.schedule(Incident("CERN-PROD", 6 * 3600.0, 30 * 3600.0, "network", 0.15))
    h.run()

    jobs = h.collector.completed_jobs
    target_jobs = [j for j in jobs if j.computing_site == TARGET]
    other_jobs = [j for j in jobs if j.computing_site != TARGET]

    def stats(js):
        if not js:
            return {"n": 0, "failure_rate": 0.0, "p95_queue_s": 0.0}
        qs = np.array([j.queuing_time for j in js if j.queuing_time is not None])
        return {
            "n": len(js),
            "failure_rate": round(sum(1 for j in js if not j.succeeded) / len(js), 3),
            "p95_queue_s": round(float(np.percentile(qs, 95)), 1) if len(qs) else 0.0,
        }

    return {"target_site": stats(target_jobs), "other_sites": stats(other_jobs)}


def test_resilience_under_incidents(benchmark):
    baseline = _run(with_incidents=False)

    degraded = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)

    # The hot-spot site degrades measurably...
    assert (degraded["target_site"]["failure_rate"]
            > baseline["target_site"]["failure_rate"])
    # ...while the grid at large stays comparatively healthy.
    assert (degraded["other_sites"]["failure_rate"]
            < degraded["target_site"]["failure_rate"])

    write_comparison(
        "resilience_incidents",
        paper={
            "claim": "§3.2: imbalance concentrates vulnerability; errors rise "
                     "at network and storage hot spots",
        },
        measured={"baseline": baseline, "with_incidents": degraded},
        notes="Compute incident at the busiest T1 + network incident at T0, "
              "24h window, vs the incident-free twin run.",
    )
