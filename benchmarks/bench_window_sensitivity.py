"""Window-sizing sensitivity (§4.2's pre-selection rule).

"The selected period should be no shorter than the end-to-end lifetime
of the jobs of interest, typically spanning days or more, since the
query module only reports jobs that are completed before the end of the
interval."

Reproduced claims: matched-job coverage grows monotonically with the
query window and a half-length window loses coverage; tiling the range
with short disjoint windows recovers fewer matches than one full-length
query (boundary pairs are lost).
"""

from conftest import write_comparison

from repro.core.matching.pipeline import MatchingPipeline
from repro.core.matching.windows import (
    growing_window_curve,
    saturation_ratio,
    sliding_window_curve,
)


def test_window_sensitivity(benchmark, eightday, executor):
    pipeline = MatchingPipeline(
        eightday.source, known_sites=eightday.harness.known_site_names())
    t0, t1 = eightday.harness.window

    # The sweep runs through the --workers executor: plans fan across
    # processes, and each window's artifacts are materialized once.
    curve = benchmark.pedantic(
        growing_window_curve, args=(pipeline, t0, t1),
        kwargs={"n_points": 6, "executor": executor},
        rounds=1, iterations=1)

    matched = [p.n_matched_jobs for p in curve]
    assert matched == sorted(matched), "coverage must grow with the window"
    sat = saturation_ratio(curve)
    assert sat <= 1.0

    tiles = sliding_window_curve(
        pipeline, t0, t1, (t1 - t0) / 4, executor=executor)
    tiled_total = sum(p.n_matched_jobs for p in tiles)
    full_total = curve[-1].n_matched_jobs
    assert tiled_total <= full_total

    write_comparison(
        "window_sensitivity",
        paper={
            "rule": "§4.2: window >= end-to-end job lifetime (days or more)",
        },
        measured={
            "growing_window": [
                {"days": round(p.length / 86400.0, 2),
                 "jobs": p.n_jobs, "matched": p.n_matched_jobs}
                for p in curve
            ],
            "half_window_saturation": round(sat, 3),
            "tiled_quarters_matched": tiled_total,
            "full_window_matched": full_total,
            "boundary_loss": full_total - tiled_total,
        },
    )
