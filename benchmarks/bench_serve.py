"""Serving-layer saturation benchmark (``repro.serve``) — the CI gate.

Drives the multi-tenant match service through the open-loop Poisson
ladder (:func:`repro.serve.bench.run_serve_bench`): eight tenants,
three offered-load levels with the top rung far past the admission
envelope, a generation-bumping ``ingest_batch`` landing mid-run at the
first level.  Three properties gate the build:

* **latency** — p99 at the fixed sub-saturation level stays under a
  generous ceiling (the service must not queue unboundedly below the
  knee);
* **memoization** — a hot full-window query is at least 5x faster than
  its cold compute (the cross-tenant memo actually carries dashboard
  traffic);
* **bit identity** — the in-bench verification sample (every Nth
  response recomputed directly) shows zero violations.

The committed ``serve_latency.json`` artifact is this run's full
saturation curve.
"""

from conftest import write_comparison

from repro.serve.bench import BenchConfig, format_report, run_serve_bench

#: Sub-saturation p99 ceiling, seconds.  Measured p99 at the low rung
#: is ~5-10 ms on a laptop; the ceiling is ~25x that so only a real
#: regression (lost concurrency, lock convoy, queue runaway) trips it.
P99_CEILING_S = 0.25

#: Required hot/cold memoization advantage.
MIN_MEMO_SPEEDUP = 5.0


def test_serve_saturation_ladder(benchmark):
    config = BenchConfig(
        days=1.0,
        seed=2025,
        tenants=8,
        rates=(40.0, 160.0, 2400.0),
        duration=1.2,
        verify_every=23,
    )

    results = benchmark.pedantic(
        run_serve_bench, args=(config,), rounds=1, iterations=1
    )
    print(format_report(results))

    levels = results["levels"]
    assert len(levels) >= 3
    assert results["config"]["tenants"] == 8
    for level in levels:
        assert level["completed"] > 0
        assert level["errors"] == 0

    # Gate (a): bounded tail latency below the saturation knee.
    sub_saturation = levels[0]
    assert sub_saturation["shed_rate"] == 0.0
    assert sub_saturation["latency_s"]["p99"] < P99_CEILING_S

    # The ladder's top rung sits past saturation: admission sheds.
    past_saturation = levels[-1]
    assert past_saturation["shed_rate"] > 0.0
    assert sum(past_saturation["shed_reasons"].values()) > 0

    # The mid-run ingest really bumped the generation under load.
    assert any(level["ingest_mid_run"] for level in levels)

    # Gate (b): hot queries ride the cross-tenant memo.
    memo = results["memo_speedup"]
    assert memo["speedup"] >= MIN_MEMO_SPEEDUP, memo

    # Gate (c): every sampled served response was bit-identical to the
    # direct batch recompute.
    verify = results["verify"]
    assert verify["samples"] > 0
    assert verify["violations"] == 0

    write_comparison(
        "serve_latency",
        paper={
            "note": "operations view of §4: many monitoring tenants share "
                    "one metastore; no serving numbers in the paper",
            "expectation": "latency flat below the admission envelope, "
                           "explicit shedding past it; memoized dashboard "
                           "queries amortize matching across tenants",
        },
        measured=results,
        notes="open-loop Poisson ladder; top rung past saturation by "
              "construction; verify_every recomputes responses directly "
              "and must find zero bit-identity violations",
    )
