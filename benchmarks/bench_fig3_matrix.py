"""Fig 3 — site-to-site transfer volume matrix (§3.2).

Paper (92 days, 111 sites): 957.98 PB total, 737.85 PB local (77%),
average pair volume 77.75 TB vs geometric mean 1.11 TB (~70x imbalance),
multi-PB diagonal outliers at Tier-0/1 sites, and a large CERN→UNKNOWN
cell from mislabelled endpoints.

We regenerate the matrix from a (scaled) campaign and check the
structural claims: local dominance, heavy-tailed pair distribution,
UNKNOWN mass, and diagonal outliers at big sites.
"""

from conftest import write_comparison

from repro.core.analysis.matrix import build_transfer_matrix
from repro.core.anomaly.imbalance import assess_imbalance
from repro.units import TB, bytes_to_human


def test_fig3_transfer_matrix(benchmark, threemonth):
    telemetry = threemonth.telemetry
    names = threemonth.site_names()

    matrix = benchmark(build_transfer_matrix, telemetry.transfers, names)

    stats = assess_imbalance(matrix)

    # Fig 3 structure.
    assert matrix.local_fraction > 0.5, "local transfers must dominate by volume"
    assert matrix.imbalance_ratio() > 2.0, "pair volumes must be heavy-tailed"
    assert matrix.unknown_volume() > 0, "mislabelled endpoints populate UNKNOWN"
    assert stats.gini > 0.5

    # The largest diagonal cells sit at high-capacity sites (the paper's
    # BNL / CERN / NDGF outliers).
    diag_outliers = [
        (src, vol) for src, dst, vol in matrix.outliers(matrix.mean_pair_volume() * 5)
        if src == dst
    ]
    assert diag_outliers, "diagonal outliers expected"

    write_comparison(
        "fig3_matrix",
        paper={
            "total_volume": "957.98 PB",
            "local_volume": "737.85 PB (77%)",
            "mean_pair": "77.75 TB",
            "geomean_pair": "1.11 TB",
            "mean_to_geomean": "~70x",
            "unknown_example": "42.4 PB CERN->UNKNOWN",
        },
        measured={
            "total_volume": bytes_to_human(matrix.total_volume),
            "local_fraction": round(matrix.local_fraction, 3),
            "mean_pair_TB": round(matrix.mean_pair_volume() / TB, 4),
            "geomean_pair_TB": round(matrix.geometric_mean_pair_volume() / TB, 4),
            "mean_to_geomean": round(matrix.imbalance_ratio(), 1),
            "gini": round(stats.gini, 3),
            "unknown_volume": bytes_to_human(matrix.unknown_volume()),
            "n_sites_with_traffic": matrix.sites_with_traffic(),
            "top_diagonal_outliers": [
                (s, bytes_to_human(v)) for s, v in diag_outliers[:5]
            ],
        },
        notes="Volume is laptop-scale; the paper's claims are about shape "
              "(local dominance, heavy tail, UNKNOWN mass), which transfer.",
    )
