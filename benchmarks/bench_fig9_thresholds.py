"""Fig 9 — job counts of four status combinations vs transfer-time-% threshold.

Paper: of 7,907 exactly matched jobs, 6,365 (80.5%) succeeded; counts
accumulate rapidly at low thresholds (913 below 1%, +525 in 1-2%); at
T=75% a stubborn tail of 72 jobs remains, and "most of these extreme
cases correspond to failed jobs" — failures concentrate in the
high-transfer-time tail.

Reproduced claims: success fraction near 80%; cumulative curves
monotone; the >75% tail exists and is failure-enriched relative to the
overall failure rate.
"""

from conftest import write_comparison

from repro.core.analysis.thresholds import StatusCombo, threshold_sweep_result


def test_fig9_threshold_sweep(benchmark, eightday_report, frame):
    sweep = benchmark(threshold_sweep_result, eightday_report["exact"], frame=frame)
    assert sweep.n_jobs

    success = sweep.success_fraction()
    assert 0.6 < success < 0.95

    for combo in StatusCombo:
        series = sweep.cumulative[combo]
        assert series == sorted(series), "cumulative counts must be monotone"

    tail = sweep.tail_total(75)
    enrichment = sweep.failure_enrichment(75) if tail else 0.0
    assert tail >= 1, "a >75% transfer-time tail must exist (stuck transfers)"
    if tail >= 3:
        assert enrichment > 1.0, "failures must concentrate in the tail"

    write_comparison(
        "fig9_thresholds",
        paper={
            "matched_jobs": 7907,
            "success_fraction": 0.805,
            "below_1pct_job_ok_task_ok": 913,
            "tail_above_75pct": 72,
            "finding": "tail dominated by failed jobs",
        },
        measured={
            "matched_jobs": sweep.n_jobs,
            "success_fraction": round(success, 3),
            "thresholds": sweep.thresholds,
            "cumulative": {c.value: sweep.cumulative[c] for c in StatusCombo},
            "tail_above_75pct": tail,
            "tail_failure_enrichment": round(enrichment, 2),
        },
    )
