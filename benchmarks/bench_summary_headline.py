"""§5.1 headline — exact-matching coverage and transfer-time statistics.

Paper: 966,453 user jobs and 6,784,936 transfers collected; 1,585,229
transfers carry a jeditaskid; exact matching links 30,380 transfers
(1.92%) and 7,907 jobs (0.82%); for matched jobs the mean transfer
time share of queuing time is 8.43% (geometric mean 1.942%).

Reproduced claims: coverage in the low single digits for both jobs and
transfers; the taskid-carrying fraction is a minority of all transfers;
mean transfer-time share is ~10% with a much smaller geometric mean.
"""

from conftest import write_comparison

from repro.core.analysis.summary import headline_stats


def test_headline_summary(benchmark, eightday, eightday_report):
    stats = benchmark(headline_stats, eightday_report)

    taskid_fraction = (
        eightday_report.n_transfers_with_taskid / eightday_report.n_transfers
    )

    assert 0.0 < stats.transfer_match_pct < 15.0
    assert 0.0 < stats.job_match_pct < 15.0
    assert taskid_fraction < 0.8
    assert stats.mean_transfer_pct > stats.geomean_transfer_pct

    write_comparison(
        "summary_headline",
        paper={
            "jobs": 966453,
            "transfers": 6784936,
            "transfers_with_taskid": 1585229,
            "matched_transfers": 30380,
            "transfer_match_pct": 1.92,
            "matched_jobs": 7907,
            "job_match_pct": 0.82,
            "mean_transfer_time_pct": 8.43,
            "geomean_transfer_time_pct": 1.942,
        },
        measured={
            "jobs": stats.n_jobs,
            "transfers": stats.n_transfers,
            "transfers_with_taskid": stats.n_transfers_with_taskid,
            "matched_transfers": stats.n_matched_transfers,
            "transfer_match_pct": round(stats.transfer_match_pct, 2),
            "matched_jobs": stats.n_matched_jobs,
            "job_match_pct": round(stats.job_match_pct, 2),
            "mean_transfer_time_pct": round(stats.mean_transfer_pct, 2),
            "geomean_transfer_time_pct": round(stats.geomean_transfer_pct, 3),
        },
        notes="Counts are laptop-scale; percentages are the comparable shape.",
    )
