"""Fig 2 — cumulative ATLAS volume managed by Rucio (2009-2024).

Paper: the curve approaches 1 EB by mid-2024, "more than a doubling of
the data volume since 2018".  We regenerate the series from the growth
model and check both shapes.
"""

from conftest import write_comparison

from repro.scenarios.growth import GrowthModel
from repro.units import EB


def test_fig2_growth_curve(benchmark):
    model = GrowthModel()

    series = benchmark(model.series)

    cumulative = {p.year: p.cumulative for p in series}
    ratio = cumulative[2024] / cumulative[2018]

    # Shape checks mirroring the paper's reading of Fig 2.
    assert 0.5 * EB < cumulative[2024] < 2.5 * EB
    assert ratio > 2.0
    assert all(b > a for a, b in zip(
        [p.cumulative for p in series], [p.cumulative for p in series][1:]))

    write_comparison(
        "fig2_growth",
        paper={"volume_2024_EB": 1.0, "ratio_2018_to_2024": ">2.0"},
        measured={
            "volume_2024_EB": round(cumulative[2024] / EB, 3),
            "ratio_2018_to_2024": round(ratio, 2),
            "series_EB": {y: round(v / EB, 4) for y, v in cumulative.items()},
        },
        notes="Birth-death archive model calibrated to the LHC run schedule.",
    )
