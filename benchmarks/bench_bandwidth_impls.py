"""Implementation benchmark: reference vs sweep-based bandwidth series.

§5.5 calls for "systematic and scalable analysis designs".  The Fig 7/8
aggregation has two implementations — a per-transfer bucket walk and an
event-sweep (`bandwidth_series_fast`) that is O(n log n + buckets)
regardless of transfer durations.  Both are differentially tested for
equality (tests/test_properties_more.py); this file tracks their
relative performance on the full campaign so the fast path's advantage
is visible and regressions are caught.
"""

import numpy as np

from repro.core.analysis.bandwidth import bandwidth_series, bandwidth_series_fast


def test_reference_bandwidth_impl(benchmark, eightday):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window

    series = benchmark(bandwidth_series, telemetry.transfers, t0, t1, 900.0)
    assert series.bytes_per_bucket.sum() > 0


def test_sweep_bandwidth_impl(benchmark, eightday):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window

    series = benchmark(bandwidth_series_fast, telemetry.transfers, t0, t1, 900.0)
    assert series.bytes_per_bucket.sum() > 0


def test_impls_agree_on_campaign(benchmark, eightday):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window

    def both():
        ref = bandwidth_series(telemetry.transfers, t0, t1, 900.0)
        fast = bandwidth_series_fast(telemetry.transfers, t0, t1, 900.0)
        return ref, fast

    ref, fast = benchmark.pedantic(both, rounds=1, iterations=1)
    np.testing.assert_allclose(
        fast.bytes_per_bucket, ref.bytes_per_bucket, rtol=1e-6, atol=1.0)
