"""Ablation (related work §6) — Data Carousel delivery strategies.

The iDDS paper the related-work section cites "ensures fine-grained,
pre-staged data availability and reduces 'long tails' in ATLAS
production".  This benchmark runs the same tape-heavy production
campaign under (a) a fixed staging lead and (b) iDDS-style
release-on-data-ready delivery, and compares task makespans.

Reproduced claim (directional): fine-grained delivery does not lengthen
task makespans and removes the fixed-lead floor for tasks whose data
was already on disk.
"""

import numpy as np
from conftest import write_comparison

from repro.grid.presets import build_mini
from repro.panda.job import JobKind
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.workload.generator import WorkloadConfig


def _run(use_idds: bool) -> dict:
    cfg = HarnessConfig(
        seed=31,
        workload=WorkloadConfig(
            duration=12 * 3600.0,
            analysis_tasks_per_hour=1.0,
            production_tasks_per_hour=2.0,
            background_transfers_per_hour=5.0,
            production_tape_fraction=0.7,
            use_idds=use_idds,
        ),
        drain=72 * 3600.0,
    )
    harness = SimulationHarness(cfg, topology=build_mini(seed=31))
    harness.run()
    spans = []
    for task in harness.panda.tasks.values():
        if task.kind is not JobKind.PRODUCTION or not task.jobs:
            continue
        ends = [j.end_time for j in task.jobs if j.end_time is not None]
        if ends:
            spans.append(max(ends) - task.created_at)
    spans_arr = np.array(spans)
    prod_jobs = [j for j in harness.collector.completed_jobs
                 if j.kind is JobKind.PRODUCTION]
    return {
        "n_tasks": len(spans),
        "n_jobs": len(prod_jobs),
        "mean_makespan_h": round(float(spans_arr.mean()) / 3600.0, 2),
        "p95_makespan_h": round(float(np.percentile(spans_arr, 95)) / 3600.0, 2),
        "tape_recalls": harness.tape.completed if harness.tape else 0,
    }


def test_ablation_carousel_delivery(benchmark):
    fixed = _run(use_idds=False)

    idds = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)

    assert idds["n_tasks"] > 0 and fixed["n_tasks"] > 0
    assert idds["tape_recalls"] > 0, "carousel recalls must occur"
    # Fine-grained delivery must not lengthen the mean makespan.
    assert idds["mean_makespan_h"] <= fixed["mean_makespan_h"] * 1.05

    write_comparison(
        "ablation_idds",
        paper={
            "note": "related work §6: iDDS reduces production long tails",
        },
        measured={"fixed_lead": fixed, "idds_delivery": idds},
        notes="Same seeded tape-heavy campaign under both delivery strategies.",
    )
