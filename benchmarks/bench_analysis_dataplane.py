"""Analysis dataplane — phase timings and the MatchFrame speedup gate.

The §5 workflow decomposes into four phases: *simulate* (discrete-event
campaign), *ingest* (degrade + load into the query layer), *match*
(Algorithm 1 over a growing-window sweep), and *analyze* (the full
batch of Table-1/2 and Fig-5..9 analyses per window).  Simulate and
ingest are shared by both dataplanes; match and analyze each have a
row reference path and a columnar fast path producing bit-identical
results.

Gates enforced here, beyond recording the timings:

* the columnar match+analyze path is at least 1.5x the row path;
* ``analyze`` alone is not slower columnar than row (the per-frame
  comparison CI smoke-checks on every push);
* the analysis fan-out re-uses one persistent pool — a single worker
  initialization across interleaved sweeps, analysis batches, and maps.
"""

import time

import pytest
from conftest import write_comparison

from repro.exec import (
    ParallelExecutor,
    SerialExecutor,
    analyze_report,
    growing_plans,
    run_analyses,
)
from repro.scenarios.eightday import EightDayConfig, EightDayStudy

DAYS = 2.0
N_PLANS = 4
REPS = 3


def _time_mode(source, plans, known, mode):
    """Best-of-REPS (match, analyze) seconds for one dataplane.

    Each rep uses a fresh executor/cache so the window materialization
    (the mode's own lowering) is always inside the measured match phase.
    """
    best = None
    for _ in range(REPS):
        ex = SerialExecutor(engine=mode)
        t0 = time.perf_counter()
        reports = ex.execute(source, plans, known_sites=known)
        t_match = time.perf_counter() - t0
        artifacts = [ex.cache.get(plan) for plan in plans]
        t0 = time.perf_counter()
        batches = [
            analyze_report(report, art, frame=mode)
            for report, art in zip(reports, artifacts)
        ]
        t_analyze = time.perf_counter() - t0
        if best is None or t_match + t_analyze < best[0] + best[1]:
            best = (t_match, t_analyze, reports, batches)
    return best


@pytest.fixture(scope="module")
def phases():
    cfg = EightDayConfig(seed=2025, days=DAYS)
    study = EightDayStudy(cfg)

    t0 = time.perf_counter()
    study.run()
    t_simulate = time.perf_counter() - t0

    t0 = time.perf_counter()
    source = study.source
    t_ingest = time.perf_counter() - t0

    w0, w1 = study.harness.window
    plans = growing_plans(w0, w1, n_points=N_PLANS)
    known = study.harness.known_site_names()

    modes = {}
    for mode in ("row", "columnar"):
        t_match, t_analyze, reports, batches = _time_mode(source, plans, known, mode)
        modes[mode] = {
            "match_s": t_match,
            "analyze_s": t_analyze,
            "reports": reports,
            "batches": batches,
        }
    return {
        "simulate_s": t_simulate,
        "ingest_s": t_ingest,
        "modes": modes,
        "study": study,
        "source": source,
        "plans": plans,
        "known": known,
    }


def test_dataplane_speedup(phases):
    """The tentpole gate: columnar match+analyze >= 1.5x row, recorded."""
    row, col = phases["modes"]["row"], phases["modes"]["columnar"]
    t_row = row["match_s"] + row["analyze_s"]
    t_col = col["match_s"] + col["analyze_s"]
    speedup = t_row / t_col

    write_comparison(
        "analysis_dataplane",
        paper={
            "setting": "§4-5 workflow phases over the degraded window",
            "expectation": "columnar dataplane >= 1.5x on match+analyze",
        },
        measured={
            "days": DAYS,
            "n_windows": N_PLANS,
            "simulate_s": round(phases["simulate_s"], 3),
            "ingest_s": round(phases["ingest_s"], 3),
            "row": {
                "match_s": round(row["match_s"], 4),
                "analyze_s": round(row["analyze_s"], 4),
            },
            "columnar": {
                "match_s": round(col["match_s"], 4),
                "analyze_s": round(col["analyze_s"], 4),
            },
            "match_analyze_speedup": round(speedup, 2),
        },
        notes="simulate/ingest are dataplane-independent and excluded "
              "from the speedup; best-of-%d timings" % REPS,
    )
    assert speedup >= 1.5, (
        f"columnar dataplane speedup {speedup:.2f}x < 1.5x "
        f"(row {t_row:.3f}s vs columnar {t_col:.3f}s)"
    )


def test_frame_comparison(phases):
    """The analyze phase alone must not be slower columnar than row."""
    row, col = phases["modes"]["row"], phases["modes"]["columnar"]
    assert col["analyze_s"] <= row["analyze_s"] * 1.10, (
        f"columnar analyze {col['analyze_s']:.4f}s slower than "
        f"row {row['analyze_s']:.4f}s"
    )


def test_frame_parity_across_windows(phases):
    """Both dataplanes report the same numbers for every window."""
    row, col = phases["modes"]["row"], phases["modes"]["columnar"]
    for b_row, b_col in zip(row["batches"], col["batches"]):
        assert b_col["headline"] == b_row["headline"]
        assert b_col["table1"] == b_row["table1"]
        assert b_col["table2_transfers"] == b_row["table2_transfers"]
        assert b_col["table2_jobs"] == b_row["table2_jobs"]
        assert b_col["top_local"] == b_row["top_local"]
        assert b_col["top_remote"] == b_row["top_remote"]
        assert b_col["thresholds"].cumulative == b_row["thresholds"].cumulative


def test_persistent_pool_single_init(phases):
    """Interleaved sweep + analysis batch + map: one pool initialization."""
    source, plans, known = phases["source"], phases["plans"], phases["known"]
    with ParallelExecutor(workers=2) as ex:
        ex.execute(source, plans, known_sites=known)
        batch = run_analyses(source, plans[-1], known_sites=known, executor=ex)
        assert ex.map(abs, [-1]) == [1]
        ex.execute(source, plans[:1], known_sites=known)
        assert ex.pool_inits == 1
    serial = phases["modes"]["columnar"]["batches"][-1]
    assert batch["headline"] == serial["headline"]
