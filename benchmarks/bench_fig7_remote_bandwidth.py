"""Fig 7 — bandwidth usage variation at six remote site-to-site links.

Paper: remote link usage fluctuates strongly within short intervals
(mostly <10 MBps with spikes >60 MBps on one link) and is asymmetric
between the two directions of the same pair (up to 130 MBps one way).

Reproduced claims: the six busiest remote links all show non-trivial
fluctuation (coefficient of variation > 0.3 over active buckets), peaks
well above means, and at least one pair moves asymmetric volume.
"""

from conftest import write_comparison

from repro.core.analysis.bandwidth import (
    bandwidth_series,
    busiest_links,
    link_transfers,
)


def test_fig7_remote_bandwidth(benchmark, eightday):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window

    links = busiest_links(telemetry.transfers, kind="remote", top=6)
    assert len(links) >= 3, "need several active remote links"

    def build_all():
        return [
            bandwidth_series(
                link_transfers(telemetry.transfers, src, dst),
                t0, t1, bucket_seconds=900.0, label=f"{src}->{dst}",
            )
            for (src, dst), _ in links
        ]

    series = benchmark(build_all)

    fluctuating = [s for s in series if s.fluctuation > 0.3]
    assert len(fluctuating) >= len(series) // 2, "remote links must fluctuate"
    assert all(s.peak_mbps > s.mean_mbps for s in series if s.peak_mbps > 0)

    # Directional asymmetry: compare each pair with its reverse.
    asymmetries = []
    for (src, dst), _ in links:
        fwd = sum(t.file_size for t in link_transfers(telemetry.transfers, src, dst))
        rev = sum(t.file_size for t in link_transfers(telemetry.transfers, dst, src))
        if fwd and rev:
            asymmetries.append(max(fwd, rev) / min(fwd, rev))
    # volume asymmetric on at least one bidirectional pair (when any exist)
    if asymmetries:
        assert max(asymmetries) > 1.2

    write_comparison(
        "fig7_remote_bandwidth",
        paper={
            "links": "six remote connections",
            "finding": "short-interval fluctuation (<10 to >60 MBps); "
                       "directional asymmetry up to 130 MBps",
        },
        measured={
            "links": [
                {
                    "link": s.label,
                    "peak_mbps": round(s.peak_mbps, 2),
                    "mean_mbps": round(s.mean_mbps, 3),
                    "fluctuation_cv": round(s.fluctuation, 2),
                }
                for s in series
            ],
            "max_direction_volume_ratio": round(max(asymmetries), 2) if asymmetries else None,
        },
    )
