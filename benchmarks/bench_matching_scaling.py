"""Algorithm throughput — the scalability §5.5 calls for.

The paper processes ~1M jobs and ~7M transfers; §5.5 notes that
"the volume of metadata imposes the need for efficient computing for
scalability".  This benchmark measures the matching pipeline's
throughput (candidate-join construction plus all three matchers) so
regressions in the hash-join implementation are caught, and compares
the plan/execute dataplane (cached window artifacts + sweep executor,
``--workers N``) against the pre-refactor per-run-rebuild architecture.
"""

import time

from conftest import write_comparison

from repro.core.matching.base import CandidateIndex
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.pipeline import MatchingPipeline
from repro.exec import (
    WindowArtifacts,
    WindowPlan,
    build_report,
    default_matchers,
    growing_plans,
)


def test_candidate_index_build_throughput(benchmark, eightday):
    telemetry = eightday.telemetry

    index = benchmark(CandidateIndex, telemetry.files, telemetry.transfers)
    assert index is not None


def test_exact_matcher_throughput(benchmark, eightday):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window
    jobs = eightday.source.user_jobs_completed_in(t0, t1)
    index = CandidateIndex(telemetry.files, telemetry.transfers)
    matcher = ExactMatcher(eightday.harness.known_site_names())

    result = benchmark(matcher.run, jobs, index, len(telemetry.transfers))

    assert result.n_jobs_considered == len(jobs)

    # An explicit timed run: pytest-benchmark's stats are unavailable
    # under ``--benchmark-disable`` (how CI runs this file), and the
    # artifact must always carry throughput numbers.
    start = time.perf_counter()
    matcher.run(jobs, index, len(telemetry.transfers))
    wall = time.perf_counter() - start

    write_comparison(
        "matching_scaling",
        paper={"note": "paper reports no timings; §5.5 demands scalability"},
        measured={
            "jobs_considered": result.n_jobs_considered,
            "transfers_in_store": len(eightday.telemetry.transfers),
            "files_in_store": len(eightday.telemetry.files),
            "wall_seconds": round(wall, 4),
            "jobs_per_sec": round(len(jobs) / wall, 1) if wall else 0.0,
        },
        notes="wall_seconds/jobs_per_sec are a single in-process Exact "
              "run; the pytest-benchmark table has the distribution.",
    )


def test_full_pipeline_throughput(benchmark, eightday):
    pipeline = MatchingPipeline(
        eightday.source, known_sites=eightday.harness.known_site_names())
    t0, t1 = eightday.harness.window

    report = benchmark(pipeline.run, t0, t1)
    assert report["exact"].n_matched_jobs >= 0


def test_sweep_executor_vs_rebuild(eightday, executor, workers, results_dir):
    """The dataplane's win: a methods × windows sweep, old vs new.

    Old architecture: every (window, method) run re-ran the
    pre-selection and rebuilt the candidate join.  New: each window is
    materialized once into cached artifacts shared by all methods, and
    the sweep fans across ``--workers`` processes.  Results must be
    identical; wall-clock must improve.  Pinned to the row engine —
    the build counter it asserts on belongs to ``CandidateIndex``, and
    the caching win must hold without the columnar kernels' help (see
    ``test_engine_comparison`` for the row-vs-columnar gate).
    """
    source = eightday.source
    known = eightday.harness.known_site_names()
    t0, t1 = eightday.harness.window
    plans = growing_plans(t0, t1, n_points=6)
    matchers = default_matchers(known)

    builds_before = CandidateIndex.build_count
    start = time.perf_counter()
    naive = []
    for plan in plans:  # the pre-refactor shape: rebuild per (window, method)
        results = {}
        for matcher in matchers:
            artifacts = WindowArtifacts.materialize(source, plan, engine="row")
            results[matcher.name] = build_report(artifacts, [matcher])[matcher.name]
        naive.append(results)
    t_naive = time.perf_counter() - start
    naive_builds = CandidateIndex.build_count - builds_before

    pipeline = MatchingPipeline(source, known_sites=known, engine="row")
    builds_before = CandidateIndex.build_count
    start = time.perf_counter()
    swept = pipeline.sweep(plans, matchers=matchers, executor=executor)
    t_exec = time.perf_counter() - start
    cached_builds = CandidateIndex.build_count - builds_before

    for old, new in zip(naive, swept):
        for m in matchers:
            assert old[m.name].matched_pairs() == new[m.name].matched_pairs()
    # Parent-side builds: one per window when serial, zero when the
    # sweep ran in worker processes (their counters are per-process).
    assert cached_builds <= len(plans) < naive_builds
    speedup = t_naive / t_exec if t_exec > 0 else float("inf")
    # The architectural win (shared artifacts vs rebuild-per-run) is a
    # hard floor in-process.  With workers > 1 the wall-clock depends on
    # how many cores the host actually has — process spawn + source
    # pickling can swamp this small workload on a 1-core box — so the
    # multi-worker runs assert identical output above and record timing.
    # Floor: the FieldIndex refreeze fix made each materialization much
    # cheaper, which shrank the naive side (3x more materializations)
    # disproportionately; the structural guarantee is the build-count
    # assertion above, the wall-clock floor just catches gross
    # regressions.
    if workers == 1:
        assert speedup >= 1.2, (
            f"sweep executor must beat per-run rebuilds: {speedup:.2f}x "
            f"(naive {t_naive:.2f}s, executor {t_exec:.2f}s)")

    write_comparison(
        "matching_sweep_executor",
        paper={"note": "paper reports no timings; §5.5 demands scalability"},
        measured={
            "windows": len(plans),
            "methods": [m.name for m in matchers],
            "workers": workers,
            "rebuild_seconds": round(t_naive, 3),
            "executor_seconds": round(t_exec, 3),
            "speedup": round(speedup, 2),
            "index_builds_rebuild": naive_builds,
            "index_builds_executor_parent": cached_builds,
        },
        notes="Plan/execute dataplane vs per-(window,method) rebuild; "
              "outputs verified identical.",
    )


def test_engine_comparison(eightday, results_dir):
    """Row vs columnar over the largest seeded window — the CI gate.

    Both engines materialize the full 8-day window from scratch and run
    the Exact/RM1/RM2 ladder; ``matched_pairs()`` must be identical per
    method, and the columnar kernels must not be slower than the row
    join (locally they are >2x faster; the gate only demands parity-or-
    better so shared CI runners can't flake it).
    """
    source = eightday.source
    known = eightday.harness.known_site_names()
    t0, t1 = eightday.harness.window
    plan = WindowPlan(t0, t1)
    matchers = default_matchers(known)
    source.column_packs()  # ingest-time lowering, amortized across windows

    def best_of(engine, repeats=3):
        best, report = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            artifacts = WindowArtifacts.materialize(source, plan, engine=engine)
            report = build_report(artifacts, matchers, engine=engine)
            best = min(best, time.perf_counter() - start)
        return best, report

    t_row, row_report = best_of("row")
    t_col, col_report = best_of("columnar")

    for m in row_report.methods:
        assert col_report[m].matched_pairs() == row_report[m].matched_pairs()

    speedup = t_row / t_col if t_col > 0 else float("inf")
    assert speedup >= 1.0, (
        f"columnar engine regressed below the row engine: {speedup:.2f}x "
        f"(row {t_row * 1e3:.1f} ms, columnar {t_col * 1e3:.1f} ms)")

    write_comparison(
        "matching_engine_comparison",
        paper={"note": "paper reports no timings; §5.5 demands scalability"},
        measured={
            "window_days": round((t1 - t0) / 86400.0, 2),
            "jobs": row_report.n_jobs,
            "transfers": row_report.n_transfers,
            "row_ms": round(t_row * 1e3, 2),
            "columnar_ms": round(t_col * 1e3, 2),
            "speedup": round(speedup, 2),
        },
        notes="Full-window Exact/RM1/RM2 ladder, best of 3, "
              "matched_pairs() verified identical per method.",
    )
