"""Algorithm throughput — the scalability §5.5 calls for.

The paper processes ~1M jobs and ~7M transfers; §5.5 notes that
"the volume of metadata imposes the need for efficient computing for
scalability".  This benchmark measures the matching pipeline's
throughput (candidate-join construction plus all three matchers) so
regressions in the hash-join implementation are caught.
"""

from conftest import write_comparison

from repro.core.matching.base import CandidateIndex
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.pipeline import MatchingPipeline


def test_candidate_index_build_throughput(benchmark, eightday):
    telemetry = eightday.telemetry

    index = benchmark(CandidateIndex, telemetry.files, telemetry.transfers)
    assert index is not None


def test_exact_matcher_throughput(benchmark, eightday):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window
    jobs = eightday.source.user_jobs_completed_in(t0, t1)
    index = CandidateIndex(telemetry.files, telemetry.transfers)
    matcher = ExactMatcher(eightday.harness.known_site_names())

    result = benchmark(matcher.run, jobs, index, len(telemetry.transfers))

    assert result.n_jobs_considered == len(jobs)

    write_comparison(
        "matching_scaling",
        paper={"note": "paper reports no timings; §5.5 demands scalability"},
        measured={
            "jobs_considered": result.n_jobs_considered,
            "transfers_in_store": len(eightday.telemetry.transfers),
            "files_in_store": len(eightday.telemetry.files),
        },
        notes="Timing lives in the pytest-benchmark table for this file.",
    )


def test_full_pipeline_throughput(benchmark, eightday):
    pipeline = MatchingPipeline(
        eightday.source, known_sites=eightday.harness.known_site_names())
    t0, t1 = eightday.harness.window

    report = benchmark(pipeline.run, t0, t1)
    assert report["exact"].n_matched_jobs >= 0
