"""Fig 10 — case study: a successful job whose queue was dominated by
sequential local transfers.

Paper (pandaid 6583770648): 83% of queuing time spent in three local
transfers (2.1/4.4/4.5 GB) totalling 328 s; throughput differed 17.7x
between transfers; the transfers ran sequentially, evidencing
bandwidth under-utilization where sites lack parallel stage-in.

Reproduced claims: such a job exists in the campaign; its staging
fraction is high; its transfers are sequential and/or show a large
throughput spread.
"""

from conftest import write_comparison

from repro.core.analysis.timeline import (
    find_high_staging_success,
    find_sequential_underutilized,
)
from repro.units import bytes_to_human


def test_fig10_sequential_case(benchmark, eightday_report):
    matches = eightday_report["rm2"].matched_jobs()

    cases = benchmark(find_high_staging_success, matches, 0.4)

    assert cases, "expected a success case with staging-dominated queue"
    case = cases[0]
    frac = case.queue_transfer_fraction()
    assert frac >= 0.4
    assert case.status == "finished"

    sequential = find_sequential_underutilized(matches, min_spread=2.0)

    write_comparison(
        "fig10_case_sequential",
        paper={
            "pandaid": 6583770648,
            "queue_transfer_fraction": 0.83,
            "transfer_seconds": 328,
            "files": ["2.1 GB", "4.4 GB", "4.5 GB"],
            "throughput_spread": 17.7,
            "sequential": True,
        },
        measured={
            "pandaid": case.pandaid,
            "queue_transfer_fraction": round(frac, 2),
            "queuing_s": round(case.queuing_time, 1),
            "n_transfers": len(case.transfers),
            "files": [bytes_to_human(t.file_size) for t in case.transfers],
            "throughput_spread": round(case.throughput_spread(), 1),
            "sequential": case.transfers_are_sequential(),
            "n_sequential_underutilized_jobs": len(sequential),
            "max_observed_spread": round(
                max((c.throughput_spread() for c in sequential), default=1.0), 1),
        },
    )
