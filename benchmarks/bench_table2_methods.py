"""Table 2 — matched transfers and jobs by matching method.

Paper (a) transfers: Exact 28,579 local + 1,801 remote = 30,380 (1.92%);
RM1 36,882 (2.33%); RM2 60,593 (3.82%) with the gain almost entirely
remote (+24,273).  (b) jobs: Exact 7,907 (0.82%); RM1 9,023 (0.93%);
RM2 16,501 (1.71%), where RM2's additions are mostly all-remote jobs and
a mixed class appears.

Reproduced claims: strict nesting Exact ⊆ RM1 ⊆ RM2; exact matches
dominated by local transfers; RM2's gain concentrated in the remote
column; mixed-class jobs appearing only at RM2.
"""

from conftest import write_comparison

from repro.core.analysis.summary import method_comparison_jobs, method_comparison_transfers
from repro.core.matching.pipeline import MatchingPipeline


def test_table2_method_comparison(benchmark, eightday):
    pipeline = MatchingPipeline(
        eightday.source, known_sites=eightday.harness.known_site_names())
    t0, t1 = eightday.harness.window

    report = benchmark.pedantic(pipeline.run, args=(t0, t1), rounds=1, iterations=1)

    transfer_rows = method_comparison_transfers(report)
    job_rows = method_comparison_jobs(report)
    tr = {r.method: r for r in transfer_rows}
    jr = {r.method: r for r in job_rows}

    # Nesting in both tables.
    assert tr["exact"].total <= tr["rm1"].total <= tr["rm2"].total
    assert jr["exact"].total <= jr["rm1"].total <= jr["rm2"].total
    # Exact is local-dominated (94% in the paper).
    assert tr["exact"].local > tr["exact"].remote
    # RM2's gain is remote.
    assert tr["rm2"].remote > tr["rm1"].remote
    assert tr["rm2"].local == tr["rm1"].local
    # RM2 adds all-remote jobs and introduces the mixed class.
    assert jr["rm2"].all_remote > jr["rm1"].all_remote
    assert jr["rm2"].mixed >= jr["rm1"].mixed

    write_comparison(
        "table2_methods",
        paper={
            "transfers": {"exact": [28579, 1801], "rm1": [35065, 1817],
                          "rm2": [36320, 24273]},
            "jobs": {"exact": [7649, 258, 0], "rm1": [8763, 260, 0],
                     "rm2": [8727, 7662, 112]},
            "matched_pct_transfers": {"exact": 1.92, "rm1": 2.33, "rm2": 3.82},
            "matched_pct_jobs": {"exact": 0.82, "rm1": 0.93, "rm2": 1.71},
        },
        measured={
            "transfers": {r.method: [r.local, r.remote] for r in transfer_rows},
            "jobs": {r.method: [r.all_local, r.all_remote, r.mixed] for r in job_rows},
            "matched_pct_transfers": {
                r.method: round(100 * r.total / report.n_transfers_with_taskid, 2)
                for r in transfer_rows
            },
            "matched_pct_jobs": {
                r.method: round(100 * r.total / report.n_jobs, 2) for r in job_rows
            },
            "n_jobs": report.n_jobs,
            "n_transfers_with_taskid": report.n_transfers_with_taskid,
        },
        notes="Paper values are [local, remote] / [all_local, all_remote, mixed].",
    )
