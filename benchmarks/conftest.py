"""Benchmark fixtures.

One full 8-day study (the §5 configuration) is simulated once per
session and shared by every table/figure benchmark; each benchmark then
times the *analysis* it reproduces and writes a paper-vs-measured
comparison artifact under ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.exec.executor import Executor, make_executor
from repro.reporting.export import to_json_file
from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.scenarios.threemonth import ThreeMonthConfig, ThreeMonthStudy

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--workers", type=int, default=1, metavar="N",
        help="processes for executor-driven benchmarks (1 = serial; "
             "matching output is identical either way)")
    from repro.exec import DEFAULT_ENGINE, DEFAULT_FRAME, ENGINES, FRAMES

    parser.addoption(
        "--engine", choices=ENGINES, default=DEFAULT_ENGINE,
        help="matching join engine for executor-driven benchmarks "
             "(output is identical either way; default %(default)s)")
    parser.addoption(
        "--frame", choices=FRAMES, default=DEFAULT_FRAME,
        help="analysis dataplane: MatchFrame kernels or the reference "
             "per-record loops (output is identical either way; "
             "default %(default)s)")


@pytest.fixture(scope="session")
def workers(request) -> int:
    return request.config.getoption("--workers")


@pytest.fixture(scope="session")
def engine(request) -> str:
    return request.config.getoption("--engine")


@pytest.fixture(scope="session")
def frame(request) -> str:
    return request.config.getoption("--frame")


@pytest.fixture(scope="session")
def executor(workers, engine) -> Executor:
    """The scheduling policy selected by ``--workers`` / ``--engine``."""
    ex = make_executor(workers, engine=engine)
    yield ex
    ex.close()  # the parallel pool persists across benchmarks until here


@pytest.fixture(scope="session")
def eightday(engine, frame) -> EightDayStudy:
    """The §5 campaign at laptop scale (8 simulated days)."""
    cfg = EightDayConfig(seed=2025, days=8.0)
    return EightDayStudy(cfg, engine=engine, frame=frame).run()


@pytest.fixture(scope="session")
def eightday_report(eightday):
    return eightday.matching_report()


@pytest.fixture(scope="session")
def threemonth() -> ThreeMonthStudy:
    """The Fig 3 campaign (scaled window; see DESIGN.md)."""
    return ThreeMonthStudy(ThreeMonthConfig()).run()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_comparison(name: str, paper: dict, measured: dict, notes: str = "") -> None:
    """Persist one experiment's paper-vs-measured record."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    to_json_file(RESULTS_DIR / f"{name}.json", {
        "experiment": name,
        "paper": paper,
        "measured": measured,
        "notes": notes,
    })
