"""Streaming dataplane — ingest throughput and the incremental-match gate.

A continuous deployment cannot afford to re-run Algorithm 1 over the
whole accumulated window every time a micro-batch lands.  The naive
baseline here does exactly that: append the batch to the store, then a
fresh :class:`MatchingPipeline` full re-match of everything so far.
The streaming dataplane instead closes each job's window once it falls
behind the watermark and matches only the delta (``repro.stream``).

Both paths pay the identical per-record ``ingest_batch`` cost (that is
the store's indexing work, not a matching strategy), so the speedup
gate isolates what the two strategies actually differ on: the time
spent keeping the match state current.  End-to-end latencies are
recorded alongside for the ops-facing view.

Gates enforced here, beyond recording the numbers:

* incremental match maintenance is at least 5x faster than re-running
  the batch matcher per micro-batch over the replayed campaign;
* both paths end bit-identical to the one-shot batch report, so the
  speedup is not bought with a weaker answer.
"""

import time

from conftest import write_comparison

from repro.core.matching.pipeline import MatchingPipeline
from repro.metastore.opensearch import OpenSearchLike
from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.stream import EventKind, EventLog, StreamProcessor

DAYS = 2.0
BATCH_SECONDS = 1800.0


def _run_incremental(study, batches):
    """The streaming path: one processor, per-batch wall latencies."""
    t0, t1 = study.harness.window
    proc = StreamProcessor(t0, t1, known_sites=study.harness.known_site_names())
    latencies = []
    for batch in batches:
        start = time.perf_counter()
        proc.process(batch)
        latencies.append(time.perf_counter() - start)
    start = time.perf_counter()
    proc.finish()
    latencies.append(time.perf_counter() - start)
    return proc, latencies


def _run_naive(study, batches):
    """The baseline: append each batch, then re-run the batch matcher
    over the accumulated store — what 'keep the dashboard current'
    costs without incremental state."""
    t0, t1 = study.harness.window
    known = study.harness.known_site_names()
    source = OpenSearchLike()
    report = None
    latencies = []
    ingest_s = rematch_s = 0.0
    for batch in batches:
        start = time.perf_counter()
        source.ingest_batch(
            jobs=[e.record for e in batch if e.kind is EventKind.JOB],
            files=[f for e in batch if e.kind is EventKind.JOB for f in e.files],
            transfers=[e.record for e in batch if e.kind is EventKind.TRANSFER],
        )
        mid = time.perf_counter()
        report = MatchingPipeline(source, known_sites=known).run(t0, t1)
        end = time.perf_counter()
        ingest_s += mid - start
        rematch_s += end - mid
        latencies.append(end - start)
    return report, latencies, ingest_s, rematch_s


def _stats(lat):
    lat = sorted(lat)
    return {
        "total_s": round(sum(lat), 4),
        "mean_ms": round(1000.0 * sum(lat) / len(lat), 3),
        "p95_ms": round(1000.0 * lat[int(0.95 * (len(lat) - 1))], 3),
        "max_ms": round(1000.0 * lat[-1], 3),
    }


def test_streaming_speedup(results_dir):
    """The tentpole gate: incremental match >= 5x re-match-per-batch."""
    study = EightDayStudy(EightDayConfig(seed=2025, days=DAYS)).run()
    t0, t1 = study.harness.window
    log = EventLog.from_telemetry(study.telemetry, t0, t1)
    batches = [list(b) for b in log.micro_batches(batch_seconds=BATCH_SECONDS)]
    batch_report = study.matching_report()

    proc, stream_lat = _run_incremental(study, batches)
    naive_report, naive_lat, naive_ingest, naive_rematch = _run_naive(study, batches)

    # neither path may trade correctness for speed
    assert proc.report() == batch_report
    assert naive_report == batch_report

    metrics = proc.metrics()
    t_inc = metrics.match_s + metrics.fold_s
    speedup = naive_rematch / t_inc
    end_to_end = sum(naive_lat) / sum(stream_lat)

    write_comparison(
        "streaming",
        paper={
            "setting": "continuous telemetry feed vs Fig-4 batch retrieval",
            "expectation": "incremental match maintenance >= 5x naive "
                           "re-match per micro-batch, bit-identical report",
        },
        measured={
            "days": DAYS,
            "batch_seconds": BATCH_SECONDS,
            "n_batches": len(batches),
            "n_events": metrics.n_events,
            "events_per_sec": round(metrics.events_per_sec, 1),
            "incremental": {
                "ingest_s": round(metrics.ingest_s, 4),
                "match_fold_s": round(t_inc, 4),
                "latency": _stats(stream_lat),
            },
            "naive": {
                "ingest_s": round(naive_ingest, 4),
                "rematch_s": round(naive_rematch, 4),
                "latency": _stats(naive_lat),
            },
            "match_speedup": round(speedup, 2),
            "end_to_end_speedup": round(end_to_end, 2),
        },
        notes="ingest_batch (per-record store indexing) is strategy-"
              "independent and recorded per path; the speedup gate "
              "compares match-state maintenance; the final watermark "
              "flush counts as one incremental batch",
    )
    assert speedup >= 5.0, (
        f"incremental match speedup {speedup:.2f}x < 5x "
        f"(naive re-match {naive_rematch:.3f}s vs incremental {t_inc:.3f}s)"
    )
