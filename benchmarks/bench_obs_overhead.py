"""Observability overhead gate.

The contract of ``repro.obs`` is that leaving the instrumentation in
the hot paths is free enough to never think about: a fully traced run
(ambient bundle enabled, every metastore/artifact/kernel/executor span
and counter firing) must stay within 5% of the uninstrumented wall
time over the §5 matching + analysis workload, and — because the
instrumentation reads no RNG and mutates no observed state — its
outputs must be **bit-identical** to the uninstrumented run's.

Both properties are asserted here and the measured ratio is recorded
to ``benchmarks/results/obs_overhead.json``.
"""

import time

import pytest
from conftest import write_comparison

from repro.core.matching.pipeline import MatchingPipeline
from repro.exec import growing_plans, run_analyses
from repro.metastore.opensearch import OpenSearchLike
from repro.obs import Obs, use_obs

N_PLANS = 4
REPS = 3
MAX_OVERHEAD = 1.05


def _run_once(telemetry, known, window, obs):
    """One full query→match→analyze pass; returns (seconds, outputs).

    Everything downstream of the simulation is rebuilt from scratch —
    ingest, artifact cache, candidate join — so the instrumented run
    pays the observability cost at every layer, not just on cache hits.
    """
    w0, w1 = window
    t0 = time.perf_counter()
    with use_obs(obs):
        source = OpenSearchLike.from_telemetry(telemetry)
        pipeline = MatchingPipeline(source, known_sites=known)
        plans = growing_plans(w0, w1, n_points=N_PLANS)
        reports = pipeline.sweep(plans)
        batch = run_analyses(source, plans[-1], known_sites=known)
    elapsed = time.perf_counter() - t0
    pairs = {
        method: report[method].matched_pairs()
        for report in reports
        for method in report.methods
    }
    return elapsed, (pairs, reports, batch["headline"])


@pytest.fixture(scope="module")
def overhead(eightday):
    telemetry = eightday.telemetry
    known = eightday.harness.known_site_names()
    window = eightday.harness.window

    base_t, base_out = min(
        (_run_once(telemetry, known, window, obs=None) for _ in range(REPS)),
        key=lambda r: r[0],
    )
    bundles = [Obs.collecting() for _ in range(REPS)]
    (inst_t, inst_out), obs = min(
        ((_run_once(telemetry, known, window, obs=b), b) for b in bundles),
        key=lambda r: r[0][0],
    )
    return {
        "base_t": base_t,
        "inst_t": inst_t,
        "base_out": base_out,
        "inst_out": inst_out,
        "obs": obs,
    }


def test_overhead_within_gate(overhead):
    ratio = overhead["inst_t"] / overhead["base_t"]
    write_comparison(
        "obs_overhead",
        paper={
            "setting": "fully traced §5 matching + analysis workload",
            "expectation": f"instrumented wall time <= {MAX_OVERHEAD:.2f}x "
                           "uninstrumented, outputs bit-identical",
        },
        measured={
            "n_windows": N_PLANS,
            "uninstrumented_s": round(overhead["base_t"], 4),
            "instrumented_s": round(overhead["inst_t"], 4),
            "overhead_ratio": round(ratio, 4),
            "n_spans": len(overhead["obs"].tracer),
            "n_instruments": len(overhead["obs"].metrics),
            "span_cats": overhead["obs"].tracer.cats(),
        },
        notes="best-of-%d; fresh ingest + cache per rep so every layer's "
              "instrumentation is on the measured path" % REPS,
    )
    assert ratio <= MAX_OVERHEAD, (
        f"observability overhead {ratio:.3f}x exceeds {MAX_OVERHEAD:.2f}x "
        f"({overhead['inst_t']:.3f}s vs {overhead['base_t']:.3f}s)"
    )


def test_instrumented_outputs_bit_identical(overhead):
    base_pairs, base_reports, base_headline = overhead["base_out"]
    inst_pairs, inst_reports, inst_headline = overhead["inst_out"]
    assert inst_pairs == base_pairs
    assert inst_headline == base_headline
    for b, i in zip(base_reports, inst_reports):
        for method in b.methods:
            assert i[method] == b[method]


def test_spans_cover_every_stage(overhead):
    cats = set(overhead["obs"].tracer.cats())
    assert {"metastore", "artifact", "kernel", "executor"} <= cats
