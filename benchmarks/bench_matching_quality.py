"""Beyond the paper — matcher precision/recall against ground truth.

The paper cannot validate its matching (production telemetry has no
truth labels); the simulator can.  This benchmark scores Exact/RM1/RM2
on the 8-day campaign: exact matching should be (near-)perfectly
precise, and relaxation should trade precision for recall
monotonically.
"""

from conftest import write_comparison

from repro.core.matching.evaluation import evaluate_against_truth
from repro.core.matching.subset import SubsetMatcher


def test_matching_quality_vs_truth(benchmark, eightday, eightday_report):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window
    jobs = eightday.source.user_jobs_completed_in(t0, t1)
    transfers = eightday.source.transfers_started_in(t0, t1)

    # Also score the subset-sum refinement the paper calls NP-hard and
    # skips (§4.2) — feasible at real candidate-set sizes.  Running it
    # through the study's shared pipeline reuses the window artifacts
    # already materialized for the Exact/RM1/RM2 report.
    known = eightday.harness.known_site_names()
    subset_report = eightday.pipeline.run(t0, t1, matchers=[SubsetMatcher(known)])

    def evaluate_all():
        out = {
            m: evaluate_against_truth(
                eightday_report[m], telemetry.ground_truth, jobs, transfers)
            for m in eightday_report.methods
        }
        out["subset"] = evaluate_against_truth(
            subset_report["subset"], telemetry.ground_truth, jobs, transfers)
        return out

    evals = benchmark(evaluate_all)

    assert evals["exact"].pair_precision >= 0.95
    assert (evals["exact"].pair_recall
            <= evals["rm1"].pair_recall
            <= evals["rm2"].pair_recall)
    assert evals["rm2"].pair_recall < 1.0  # degradation caps recall
    # the subset refinement dominates plain exact matching
    assert evals["subset"].pair_recall >= evals["exact"].pair_recall
    assert evals["subset"].pair_precision >= 0.9

    write_comparison(
        "matching_quality",
        paper={"note": "no ground truth available to the paper"},
        measured={
            m: {
                "pair_precision": round(e.pair_precision, 3),
                "pair_recall": round(e.pair_recall, 3),
                "job_precision": round(e.job_precision, 3),
                "job_recall": round(e.job_recall, 3),
                "asserted_pairs": e.n_asserted_pairs,
                "visible_true_pairs": e.n_true_pairs_visible,
            }
            for m, e in evals.items()
        },
        notes="Extension: scoring Algorithm 1 and RM1/RM2 against the "
              "simulator's known job-transfer linkage.",
    )
