"""Beyond the paper — matcher precision/recall against ground truth.

The paper cannot validate its matching (production telemetry has no
truth labels); the simulator can.  This benchmark scores Exact/RM1/RM2
on the 8-day campaign: exact matching should be (near-)perfectly
precise, and relaxation should trade precision for recall
monotonically.

It also grades the scored RM3 matcher (DESIGN.md §14) on a
*degradation-severity ladder*: the same campaign's raw telemetry is
re-degraded at several severities and every matcher is re-run against
each, producing the precision/recall curves committed in
``benchmarks/results/matching_quality.json``.  The CI gate lives here:
RM3 at its committed default threshold must dominate RM2 on pair F1 at
one or more severities, and its recall must be non-increasing along
the threshold curve.
"""

import numpy as np
from conftest import write_comparison

from repro.core.matching import (
    DEFAULT_RM3_THRESHOLD,
    ExactMatcher,
    RM1Matcher,
    RM2Matcher,
    RM3Matcher,
    evaluate_against_truth,
    recover_unknown_sites,
)
from repro.core.matching.pipeline import MatchingPipeline
from repro.core.matching.subset import SubsetMatcher
from repro.metastore.opensearch import OpenSearchLike

#: Degradation multipliers for the precision/recall ladder: half,
#: nominal (§4.3 as configured), and double severity.
SEVERITIES = [0.5, 1.0, 2.0]

#: RM3 decision thresholds traced per severity (the committed default
#: must be in the curve so the gate and the curve grade one matcher).
RM3_THRESHOLDS = [0.1, 0.2, DEFAULT_RM3_THRESHOLD, 0.5, 0.65, 0.8]


def _pair_metrics(ev) -> dict:
    return {
        "pair_precision": round(ev.pair_precision, 3),
        "pair_recall": round(ev.pair_recall, 3),
        "pair_f1": round(ev.pair_f1, 3),
        "asserted_pairs": ev.n_asserted_pairs,
        "visible_true_pairs": ev.n_true_pairs_visible,
    }


def test_matching_quality_vs_truth(benchmark, eightday, eightday_report):
    telemetry = eightday.telemetry
    t0, t1 = eightday.harness.window
    jobs = eightday.source.user_jobs_completed_in(t0, t1)
    transfers = eightday.source.transfers_started_in(t0, t1)

    # Also score the subset-sum refinement the paper calls NP-hard and
    # skips (§4.2) — feasible at real candidate-set sizes — and RM3 at
    # its committed default threshold.  Running them through the
    # study's shared pipeline reuses the window artifacts already
    # materialized for the Exact/RM1/RM2 report.
    known = eightday.harness.known_site_names()
    extra_report = eightday.pipeline.run(
        t0, t1, matchers=[SubsetMatcher(known), RM3Matcher(known)])

    def evaluate_all():
        out = {
            m: evaluate_against_truth(
                eightday_report[m], telemetry.ground_truth, jobs, transfers)
            for m in eightday_report.methods
        }
        for m in extra_report.methods:
            out[m] = evaluate_against_truth(
                extra_report[m], telemetry.ground_truth, jobs, transfers)
        return out

    evals = benchmark(evaluate_all)

    assert evals["exact"].pair_precision >= 0.95
    assert (evals["exact"].pair_recall
            <= evals["rm1"].pair_recall
            <= evals["rm2"].pair_recall)
    assert evals["rm2"].pair_recall < 1.0  # degradation caps recall
    # the subset refinement dominates plain exact matching
    assert evals["subset"].pair_recall >= evals["exact"].pair_recall
    assert evals["subset"].pair_precision >= 0.9
    # the scored matcher recovers join-level losses the ladder cannot
    assert evals["rm3"].pair_recall >= evals["rm2"].pair_recall
    assert evals["rm3"].pair_precision >= 0.9

    write_comparison(
        "matching_quality",
        paper={"note": "no ground truth available to the paper"},
        measured={
            "default_window": {
                m: _pair_metrics(e) for m, e in evals.items()
            },
            "severity_ladder": _severity_ladder(eightday),
            "rm3_default_threshold": DEFAULT_RM3_THRESHOLD,
        },
        notes="Extension: scoring Algorithm 1, RM1/RM2, subset-sum, and "
              "the scored RM3 matcher against the simulator's known "
              "job-transfer linkage, across degradation severities.",
    )


def _severity_ladder(eightday) -> dict:
    """Re-degrade the campaign at each severity and grade all matchers.

    Uses a severity-independent rng stream (seed+17) so each rung
    differs only in the configured defect rates, not in the draw
    sequence seeded elsewhere in the study.
    """
    from repro.telemetry.degradation import MetadataDegrader

    harness = eightday.harness
    known = harness.known_site_names()
    t0, t1 = harness.window

    ladder = {}
    for severity in SEVERITIES:
        degrader = MetadataDegrader(
            harness.config.degradation.scaled(severity),
            np.random.default_rng(harness.config.seed + 17),
        )
        tele = degrader.degrade(harness.collector, harness.panda.tasks)
        source = OpenSearchLike.from_telemetry(tele)
        jobs = source.user_jobs_completed_in(t0, t1)
        transfers = source.transfers_started_in(t0, t1)

        matchers = [ExactMatcher(known), RM1Matcher(known), RM2Matcher(known)]
        for th in RM3_THRESHOLDS:
            m = RM3Matcher(known, threshold=th)
            m.name = f"rm3@{th}"
            matchers.append(m)
        report = MatchingPipeline(source, known_sites=known).run(
            t0, t1, matchers=matchers)

        rung = {"methods": {}, "rm3_curve": [], "site_recovery": {}}
        for name in report.methods:
            ev = evaluate_against_truth(
                report[name], tele.ground_truth, jobs, transfers)
            rung["methods"][name] = _pair_metrics(ev)
            if name.startswith("rm3@"):
                rung["rm3_curve"].append({
                    "threshold": float(name.split("@", 1)[1]),
                    **_pair_metrics(ev),
                })
        for name in ("rm2", f"rm3@{DEFAULT_RM3_THRESHOLD}"):
            rec = recover_unknown_sites(report[name], tele.ground_truth)
            rung["site_recovery"][name] = {
                "n_recoverable": rec.n_recoverable,
                "n_correct": rec.n_correct,
                "accuracy": round(rec.accuracy, 3),
            }
        ladder[str(severity)] = rung

    _assert_ladder_gates(ladder)
    return ladder


def _assert_ladder_gates(ladder: dict) -> None:
    """The committed RM3 contract, enforced on every run."""
    default_name = f"rm3@{DEFAULT_RM3_THRESHOLD}"
    wins = 0
    for severity, rung in ladder.items():
        rm2 = rung["methods"]["rm2"]
        rm3 = rung["methods"][default_name]
        if rm3["pair_f1"] > rm2["pair_f1"]:
            wins += 1
        # recall is non-increasing as the decision threshold rises
        curve = sorted(rung["rm3_curve"], key=lambda p: p["threshold"])
        recalls = [p["pair_recall"] for p in curve]
        assert recalls == sorted(recalls, reverse=True), (
            f"severity {severity}: RM3 recall not monotone in threshold")
    assert wins >= 1, (
        "RM3 at its default threshold must beat RM2 on pair F1 at one "
        "or more degradation severities")
