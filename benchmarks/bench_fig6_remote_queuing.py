"""Fig 6 — top-40 remote-transfer jobs with >=10% of queue time in transfer.

Paper: compared with the local list (Fig 5), jobs with only remote
transfers show more stable transfer-time percentages, and the extreme
*local* cases have much longer queuing times than their remote
counterparts — evidence that some sites suffered server queuing delays
despite local data.

Reproduced claims: the remote list exists; the maximum queuing time in
the local list exceeds the remote list's maximum; the spread
(std/mean) of transfer-time percentages is lower or comparable for
remote jobs.
"""

import numpy as np
from conftest import write_comparison

from repro.core.analysis.queuing import timing_table, timings_for_result, top_jobs_breakdown


def test_fig6_remote_queuing_breakdown(benchmark, eightday_report, frame):
    # Remote population is thin under exact matching; RM2 is the
    # natural source for the remote figure (the paper's remote jobs
    # likewise surface through relaxed matching).
    result = eightday_report["rm2"]
    timings = timings_for_result(result, frame=frame)

    if frame == "columnar":
        table = timing_table(result)
        top_remote = benchmark(table.top_jobs, "remote", 10.0, 40)
        top_local = table.top_jobs("local", 10.0, 40)
    else:
        top_remote = benchmark(top_jobs_breakdown, timings, "remote", 10.0, 40)
        top_local = top_jobs_breakdown(timings, "local", 10.0, 40)

    assert top_remote, "expected remote jobs with >=10% transfer share"

    def spread(rows):
        pcts = np.array([t.transfer_pct for t in rows])
        return float(pcts.std() / pcts.mean()) if len(pcts) > 1 and pcts.mean() else 0.0

    local_max_queue = max((t.queuing_time for t in top_local), default=0.0)
    remote_max_queue = max(t.queuing_time for t in top_remote)

    write_comparison(
        "fig6_remote_queuing",
        paper={
            "selection": "top 40 all-remote jobs, transfer >=10% of queue",
            "finding": "remote transfer-time % more stable; extreme local "
                       "cases queue far longer than remote counterparts",
        },
        measured={
            "n_remote_selected": len(top_remote),
            "n_local_selected": len(top_local),
            "remote_pct_spread": round(spread(top_remote), 3),
            "local_pct_spread": round(spread(top_local), 3),
            "local_max_queue_s": round(local_max_queue, 1),
            "remote_max_queue_s": round(remote_max_queue, 1),
            "local_queues_longer": bool(local_max_queue >= remote_max_queue),
            "rows": [
                {
                    "pandaid": t.pandaid,
                    "label": t.label,
                    "queuing_s": round(t.queuing_time, 1),
                    "transfer_pct": round(t.transfer_pct, 1),
                }
                for t in top_remote[:10]
            ],
        },
    )
