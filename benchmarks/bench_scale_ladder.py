"""Scale-ladder smoke gates — the §5.5 scalability floor, pinned in CI.

Two gates at the 36k rung (10% of paper scale, small enough for a CI
runner, big enough that per-record Python costs would dominate if they
crept back in):

* the full synthesize → match → analyze rung must hold a throughput
  floor and a peak-RSS ceiling, with its analytic ground truth intact;
* seeding parallel workers from the zero-copy pack archive must beat
  the pre-refactor baseline — re-pickling the record-based source into
  every worker — by >=1.5x, with bit-identical matched pairs.

Both paths in the seeding gate use the *spawn* start method: under the
Linux default (fork) the pickled source would ride along in the
copy-on-write image for free, and the gate would measure nothing.
"""

import multiprocessing as mp
import time

from conftest import write_comparison

from repro.exec.executor import ParallelExecutor
from repro.exec.plan import WindowPlan
from repro.metastore.opensearch import OpenSearchLike
from repro.scenarios.scale import run_rung
from repro.workload.scale import ScaleConfig, synthesize

RUNG = 36_000
#: ~1/4 of the serial columnar throughput on a 1-core dev box; a rung
#: that falls below this has lost an order of magnitude somewhere.
JOBS_PER_SEC_FLOOR = 15_000.0
#: Process-lifetime ceiling: the rung itself peaks well under 200 MiB;
#: blowing past this means something rematerialized the window as
#: per-record Python objects.
PEAK_RSS_MB_CEILING = 2_048.0
SEEDING_SPEEDUP_FLOOR = 1.5


def test_36k_rung_throughput_and_memory(results_dir):
    row = run_rung(ScaleConfig(n_jobs=RUNG))

    assert row["matched_jobs"] == row["expected_matches"]
    assert row["match_jobs_per_sec"] >= JOBS_PER_SEC_FLOOR, (
        f"36k rung fell below the throughput floor: "
        f"{row['match_jobs_per_sec']:,.0f} jobs/s < {JOBS_PER_SEC_FLOOR:,.0f}")
    assert row["peak_rss_mb"] <= PEAK_RSS_MB_CEILING, (
        f"36k rung exceeded the memory ceiling: "
        f"{row['peak_rss_mb']:.0f} MiB > {PEAK_RSS_MB_CEILING:.0f} MiB")

    write_comparison(
        "scale_smoke",
        paper={"note": "§5.5: ~1M jobs / ~6.8M transfers in 8 days; "
                       "this gate pins 10% of that scale in CI"},
        measured={
            "n_jobs": row["n_jobs"],
            "n_transfers": row["n_transfers"],
            "match_seconds": row["match_seconds"],
            "match_jobs_per_sec": row["match_jobs_per_sec"],
            "peak_rss_mb": row["peak_rss_mb"],
            "shards": row["shards"],
            "floor_jobs_per_sec": JOBS_PER_SEC_FLOOR,
            "ceiling_peak_rss_mb": PEAK_RSS_MB_CEILING,
        },
        notes="Full synthesize->match->analyze rung; matched counts "
              "verified against the generator's analytic ground truth.",
    )


def _timed_execute(source, ds, plan, ctx, shared_memory):
    ex = ParallelExecutor(workers=2, mp_context=ctx, engine="columnar",
                          shared_memory=shared_memory)
    start = time.perf_counter()
    with ex:
        report = ex.execute(source, [plan], known_sites=ds.known_sites)[0]
    return time.perf_counter() - start, ex.seed_mode, report


def test_shm_seeding_beats_repickling(results_dir):
    ds = synthesize(ScaleConfig(n_jobs=RUNG))
    plan = WindowPlan(*ds.window)

    # The pre-refactor baseline: the same window as a record-based
    # store, pickled whole into each worker's initializer.
    src = ds.source
    ref = OpenSearchLike()
    ref.ingest_batch(
        jobs=[src.job_record(i) for i in range(ds.n_jobs)],
        files=[src.file_record(i) for i in range(ds.n_files)],
        transfers=[src.transfer_record(i) for i in range(ds.n_transfers)],
    )

    ctx = mp.get_context("spawn")
    t_shm, shm_mode, shm_report = _timed_execute(src, ds, plan, ctx, True)
    t_pkl, pkl_mode, pkl_report = _timed_execute(ref, ds, plan, ctx, False)

    assert shm_mode == "shm"
    assert pkl_mode == "pickle"
    for m in shm_report.methods:
        assert shm_report[m].matched_pairs() == pkl_report[m].matched_pairs()

    speedup = t_pkl / t_shm if t_shm > 0 else float("inf")
    assert speedup >= SEEDING_SPEEDUP_FLOOR, (
        f"zero-copy seeding must beat re-pickling by >="
        f"{SEEDING_SPEEDUP_FLOOR}x: {speedup:.2f}x "
        f"(shm {t_shm:.2f}s, pickle {t_pkl:.2f}s)")

    write_comparison(
        "scale_shm_seeding",
        paper={"note": "paper reports no timings; §5.5 demands scalability"},
        measured={
            "n_jobs": ds.n_jobs,
            "n_transfers": ds.n_transfers,
            "workers": 2,
            "start_method": "spawn",
            "shm_seconds": round(t_shm, 3),
            "pickle_seconds": round(t_pkl, 3),
            "speedup": round(speedup, 2),
            "floor": SEEDING_SPEEDUP_FLOOR,
        },
        notes="Pool init + full-window Exact/RM1/RM2 at the 36k rung, "
              "spawn context for both paths, matched_pairs() verified "
              "identical per method.",
    )
