#!/usr/bin/env python
"""Anomaly hunt: reproduce the paper's case studies automatically.

Runs a campaign, RM2-matches jobs to transfers, then hunts for the
§5.4 anomaly classes — sequential/under-utilized staging (Fig 10),
failed jobs with queue+wall-spanning transfers (Fig 11), redundant
transfer sets with UNKNOWN-site reconstruction (Fig 12 / Table 3) —
prints ASCII timelines for the best exemplar of each, and ends with
prioritised mitigation advice.

Usage::

    python examples/anomaly_hunt.py [--days 3] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro.core.analysis.timeline import (
    find_failed_with_overlap,
    find_high_staging_success,
    find_sequential_underutilized,
)
from repro.core.anomaly.inference import inference_accuracy
from repro.core.anomaly.report import build_anomaly_report
from repro.coopt.policies import advise
from repro.reporting.figures import render_timeline
from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.units import bytes_to_human


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Simulating {args.days:g} days (seed {args.seed}) ...")
    study = EightDayStudy(EightDayConfig(seed=args.seed, days=args.days)).run()
    telemetry = study.telemetry
    matches = study.matching_report()["rm2"].matched_jobs()
    print(f"  RM2-matched jobs: {len(matches)}")

    print("\n== Fig 10 analogue: staging-dominated successful job ==")
    fig10 = find_high_staging_success(matches, min_fraction=0.4)
    if fig10:
        print(render_timeline(fig10[0]))
        seq = find_sequential_underutilized(matches, min_spread=2.0)
        print(f"\n  sequential under-utilized jobs in campaign: {len(seq)}")
        if seq:
            print(f"  worst throughput spread: {seq[0].throughput_spread():.1f}x")
    else:
        print("  (none found at this scale — increase --days)")

    print("\n== Fig 11 analogue: failed job with spanning transfer ==")
    fig11 = find_failed_with_overlap(matches)
    if fig11:
        print(render_timeline(fig11[0]))
    else:
        print("  (none found at this scale — increase --days)")

    print("\n== Full anomaly report ==")
    report = build_anomaly_report(
        matches, telemetry.transfers,
        site_names=study.harness.topology.site_names())
    print(report)

    if report.redundant:
        g = report.redundant[0]
        print(f"\n  Fig 12 analogue: {g.lfn} copied {g.n_copies}x to "
              f"{g.destination} (wasted {bytes_to_human(g.wasted_bytes)})")
    if report.inferences:
        acc = inference_accuracy(report.inferences, telemetry.ground_truth.true_sites)
        print(f"  UNKNOWN-site inferences: {len(report.inferences)} "
              f"(accuracy vs ground truth: {acc:.0%})")
        for inf in report.inferences[:3]:
            print(f"    {inf}")

    print("\n== Mitigation advice (§7 directions, actionable) ==")
    for advice in advise(report):
        print(f"  {advice}")


if __name__ == "__main__":
    main()
