#!/usr/bin/env python
"""Matching quality vs metadata quality — an experiment the paper could
not run.

§5.5 concludes that better analysis will mostly come from better
metadata.  Because the simulator keeps ground truth, we can quantify
that: sweep the degradation intensity (site-label loss, size
imprecision, identifier loss) from pristine to worse-than-production
and measure each matcher's precision/recall at every level.

Usage::

    python examples/matching_quality_sweep.py [--days 1.5] [--seed 3] [--workers 4]
"""

from __future__ import annotations

import argparse

from repro.core.matching import RM3Matcher
from repro.core.matching.evaluation import evaluate_against_truth
from repro.core.matching.pipeline import MatchingPipeline
from repro.exec.executor import make_executor
from repro.metastore.opensearch import OpenSearchLike
from repro.reporting.tables import render_table
from repro.rucio.activities import TransferActivity
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.telemetry.degradation import DegradationConfig, MetadataDegrader
from repro.workload.generator import WorkloadConfig


def scaled_config(intensity: float) -> DegradationConfig:
    """Scale every defect probability of the default config."""
    base = DegradationConfig()

    def scale(d):
        return {k: min(1.0, v * intensity) for k, v in d.items()}

    return DegradationConfig(
        p_drop_transfer=min(1.0, base.p_drop_transfer * intensity),
        p_drop_file=min(1.0, base.p_drop_file * intensity),
        p_drop_jeditaskid=scale(base.p_drop_jeditaskid),
        p_unknown_destination=scale(base.p_unknown_destination),
        p_unknown_source=scale(base.p_unknown_source),
        p_size_imprecise=scale(base.p_size_imprecise),
        p_drop_jeditaskid_default=min(1.0, base.p_drop_jeditaskid_default * intensity),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for the matching executor")
    args = parser.parse_args()
    executor = make_executor(args.workers)

    print(f"Simulating {args.days:g} days once (seed {args.seed}) ...")
    harness = SimulationHarness(HarnessConfig(
        seed=args.seed,
        workload=WorkloadConfig(
            duration=args.days * 86400.0,
            analysis_tasks_per_hour=10.0,
            production_tasks_per_hour=1.0,
            background_transfers_per_hour=60.0,
        ),
    ))
    harness.run()
    t0, t1 = harness.window
    known = harness.known_site_names()

    rows = []
    for intensity in (0.0, 0.5, 1.0, 2.0, 4.0):
        degrader = MetadataDegrader(
            scaled_config(intensity), harness.rngs.get(f"sweep-{intensity}"))
        telemetry = degrader.degrade(harness.collector, harness.panda.tasks)
        source = OpenSearchLike.from_telemetry(telemetry)
        pipeline = MatchingPipeline(source, known_sites=known)
        report = pipeline.run(t0, t1, executor=executor)
        rm3_report = pipeline.run(
            t0, t1, matchers=[RM3Matcher(known)], executor=executor)
        jobs = source.user_jobs_completed_in(t0, t1)
        transfers = source.transfers_started_in(t0, t1)
        for rep in (report, rm3_report):
            for method in rep.methods:
                ev = evaluate_against_truth(
                    rep[method], telemetry.ground_truth, jobs, transfers)
                rows.append([
                    f"{intensity:g}x", method,
                    rep[method].n_matched_jobs,
                    f"{ev.pair_precision:.3f}",
                    f"{ev.pair_recall:.3f}",
                    f"{ev.pair_f1:.3f}",
                ])

    print("\n== matcher quality vs degradation intensity ==")
    print(render_table(
        ["degradation", "method", "matched jobs", "precision", "recall", "f1"],
        rows))
    print(
        "\nReading: at 0x (pristine metadata) exact matching recovers nearly\n"
        "all linkage; production-grade degradation (1x) collapses recall to\n"
        "a few tens of percent while precision stays high — supporting the\n"
        "paper's §5.5 position that metadata quality, not algorithmics, is\n"
        "the binding constraint.  The scored rm3 matcher claws much of that\n"
        "recall back by joining without byte-exact sizes and thresholding a\n"
        "per-candidate likelihood instead (DESIGN.md §14)."
    )


if __name__ == "__main__":
    main()
