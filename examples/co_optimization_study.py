#!/usr/bin/env python
"""Co-optimization study: locality-only vs shared-awareness brokerage.

§3.1 of the paper observes that PanDA's "send the job to its data"
heuristic can overload compute at data-rich sites, and §7 calls for
adaptive strategies where PanDA and Rucio share performance awareness.
This example runs the same seeded campaign under both brokers and
reports the trade: queuing delay, success rate, load balance across
sites, and remote movement volume.

Usage::

    python examples/co_optimization_study.py [--days 1.5] [--seed 11]
"""

from __future__ import annotations

import argparse

from repro.reporting.tables import render_table
from repro.scenarios.ablation import AblationConfig, run_ablation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--tasks-per-hour", type=float, default=8.0)
    args = parser.parse_args()

    cfg = AblationConfig(
        seed=args.seed, days=args.days,
        analysis_tasks_per_hour=args.tasks_per_hour,
    )
    print(f"Running the same {args.days:g}-day campaign under both brokers ...")
    result = run_ablation(cfg)

    rows = []
    for m in (result.locality, result.coopt):
        rows.append([
            m.broker,
            m.n_jobs,
            f"{m.success_rate:.1%}",
            f"{m.mean_queuing:.0f}s",
            f"{m.p95_queuing:.0f}s",
            f"{m.remote_bytes / 1e12:.2f} TB",
            f"{m.load_imbalance:.4f}",
        ])
    print(render_table(
        ["broker", "jobs", "success", "mean queue", "p95 queue",
         "remote volume", "load imbalance"],
        rows,
    ))

    print(f"\nqueue speedup (locality/coopt) : {result.queue_speedup:.2f}x")
    print(f"load-balance gain              : {result.balance_gain:+.0%}")
    print(
        "\nReading: co-optimization trades extra remote movement for\n"
        "smoother site loads — exactly the §3.1 tension ('minimizing input\n"
        "data movement reduces network traffic but can overload compute\n"
        "resources at a single site')."
    )


if __name__ == "__main__":
    main()
