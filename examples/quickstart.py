#!/usr/bin/env python
"""Quickstart: simulate a campaign, match jobs to transfers, print the
paper's headline tables.

Runs a 2-day (default) PanDA/Rucio campaign on the 111-site WLCG-like
grid, degrades the telemetry the way production metadata is degraded,
runs Exact/RM1/RM2 matching, and prints Table 1, Table 2, and the §5.1
headline statistics.

Usage::

    python examples/quickstart.py [--days 2] [--seed 2025]
"""

from __future__ import annotations

import argparse

from repro.core.analysis.summary import (
    activity_breakdown,
    headline_stats,
    method_comparison_jobs,
    method_comparison_transfers,
)
from repro.reporting.tables import render_activity_table, render_method_tables
from repro.scenarios.eightday import EightDayConfig, EightDayStudy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=2.0, help="campaign length")
    parser.add_argument("--seed", type=int, default=2025)
    args = parser.parse_args()

    print(f"Simulating a {args.days:g}-day campaign (seed {args.seed}) ...")
    study = EightDayStudy(EightDayConfig(seed=args.seed, days=args.days)).run()

    harness = study.harness
    print(f"  sites            : {harness.topology.n_sites}")
    print(f"  jobs completed   : {harness.collector.n_jobs}")
    print(f"  transfer events  : {harness.collector.n_transfers}")

    telemetry = study.telemetry
    print(f"  degraded records : {len(telemetry.transfers)} transfers "
          f"({telemetry.n_transfers_with_taskid} with jeditaskid), "
          f"{len(telemetry.files)} file rows, {len(telemetry.jobs)} job rows")

    report = study.matching_report()
    stats = headline_stats(report)
    print("\n== §5.1 headline (exact matching) ==")
    print(f"  matched transfers : {stats.n_matched_transfers} "
          f"({stats.transfer_match_pct:.2f}% of transfers with jeditaskid)")
    print(f"  matched jobs      : {stats.n_matched_jobs} "
          f"({stats.job_match_pct:.2f}% of user jobs)")
    print(f"  transfer share of queue time: mean {stats.mean_transfer_pct:.2f}%, "
          f"geomean {stats.geomean_transfer_pct:.3f}%")

    print("\n== Table 1: matched transfers by activity ==")
    print(render_activity_table(activity_breakdown(report["exact"], telemetry.transfers)))

    print("\n== Table 2: matching methods compared ==")
    print(render_method_tables(
        method_comparison_transfers(report),
        method_comparison_jobs(report),
        report.n_transfers_with_taskid,
        report.n_jobs,
    ))


if __name__ == "__main__":
    main()
