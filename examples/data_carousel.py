#!/usr/bin/env python
"""Data Carousel: tape-resident production with and without iDDS.

Production inputs at Tier-0/1 often live on tape; processing them means
recalling files through a limited pool of tape drives before any
wide-area transfer can move them to the processing site (the WLCG
"Data Carousel").  The paper's related work (§6) credits iDDS with
reducing the resulting long tails by releasing work as data lands
instead of after a fixed staging lead.

This example runs a tape-heavy campaign twice — fixed-lead vs
iDDS-style delivery — and prints the recall statistics and task
makespans side by side.

Usage::

    python examples/data_carousel.py [--hours 12] [--seed 31]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.grid.presets import build_mini
from repro.panda.job import JobKind
from repro.reporting.tables import render_table
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.workload.generator import WorkloadConfig


def run(use_idds: bool, hours: float, seed: int):
    cfg = HarnessConfig(
        seed=seed,
        workload=WorkloadConfig(
            duration=hours * 3600.0,
            analysis_tasks_per_hour=1.0,
            production_tasks_per_hour=2.0,
            background_transfers_per_hour=5.0,
            production_tape_fraction=0.8,
            use_idds=use_idds,
        ),
        drain=72 * 3600.0,
    )
    harness = SimulationHarness(cfg, topology=build_mini(seed=seed))
    harness.run()
    spans = []
    for task in harness.panda.tasks.values():
        if task.kind is not JobKind.PRODUCTION or not task.jobs:
            continue
        ends = [j.end_time for j in task.jobs if j.end_time is not None]
        if ends:
            spans.append(max(ends) - task.created_at)
    spans_arr = np.array(spans) if spans else np.array([0.0])
    prod = [j for j in harness.collector.completed_jobs if j.kind is JobKind.PRODUCTION]
    return {
        "mode": "iDDS delivery" if use_idds else "fixed 4h lead",
        "tasks": len(spans),
        "jobs": len(prod),
        "recalls": harness.tape.completed if harness.tape else 0,
        "recall_failures": harness.tape.failed if harness.tape else 0,
        "mean_makespan_h": float(spans_arr.mean()) / 3600.0,
        "p95_makespan_h": float(np.percentile(spans_arr, 95)) / 3600.0,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=31)
    args = parser.parse_args()

    print("Running the same tape-heavy campaign under both delivery modes ...")
    rows = []
    results = [run(False, args.hours, args.seed), run(True, args.hours, args.seed)]
    for r in results:
        rows.append([
            r["mode"], r["tasks"], r["jobs"], r["recalls"],
            f"{r['mean_makespan_h']:.1f}h", f"{r['p95_makespan_h']:.1f}h",
        ])
    print(render_table(
        ["delivery", "tasks", "jobs", "tape recalls", "mean makespan", "p95 makespan"],
        rows,
    ))

    fixed, idds = results
    gain = 1.0 - idds["mean_makespan_h"] / max(fixed["mean_makespan_h"], 1e-9)
    print(f"\niDDS mean-makespan gain: {gain:+.0%}")
    print(
        "\nReading: with a fixed lead every job waits out the full lead even\n"
        "when its chunk is already on disk; release-on-ready starts work the\n"
        "moment recalls land — the §6 'long tail' reduction."
    )


if __name__ == "__main__":
    main()
