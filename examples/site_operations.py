#!/usr/bin/env python
"""Site operations view: dashboards, live monitoring, incident response.

Runs a campaign with a mid-window incident at a busy site, then shows
what an operator would see: per-site dashboards (failure rates, queue
percentiles, data flows), the streaming anomaly monitor's alert feed,
and the provenance view of which storage fed the failed work.

Usage::

    python examples/site_operations.py [--days 1.5] [--seed 23]
"""

from __future__ import annotations

import argparse

from repro.core.analysis.provenance import build_provenance_graph, site_feed_stats, summarize
from repro.core.analysis.sites import build_dashboards, hottest_sites, importers_and_exporters
from repro.core.anomaly.monitor import StreamingAnomalyMonitor
from repro.grid.incidents import Incident, IncidentInjector
from repro.reporting.tables import render_table
from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.units import bytes_to_human


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--incident-site", default="BNL-ATLAS")
    args = parser.parse_args()

    print(f"Simulating {args.days:g} days with an incident at {args.incident_site} ...")
    study = EightDayStudy(EightDayConfig(seed=args.seed, days=args.days))
    injector = IncidentInjector(study.harness.engine, study.harness.topology)
    injector.schedule(Incident(
        args.incident_site,
        start=args.days * 86400.0 * 0.25,
        end=args.days * 86400.0 * 0.75,
        kind="compute",
        severity=0.25,
    ))
    study.run()
    telemetry = study.telemetry

    print("\n== Site dashboards (hottest by failure rate) ==")
    boards = build_dashboards(telemetry.jobs, telemetry.transfers)
    rows = []
    for b in hottest_sites(boards, by="failure_rate", top=8):
        rows.append([
            b.site, b.n_jobs, f"{b.failure_rate:.0%}",
            f"{b.mean_queue:.0f}s", f"{b.p95_queue:.0f}s",
            bytes_to_human(b.bytes_in), bytes_to_human(b.bytes_out),
            b.dominant_error_family.value,
        ])
    print(render_table(
        ["site", "jobs", "fail", "mean q", "p95 q", "in", "out", "errors"], rows))

    importers, exporters = importers_and_exporters(boards, top=3)
    print("\n  top importers:", ", ".join(
        f"{b.site} ({bytes_to_human(b.net_flow)})" for b in importers))
    print("  top exporters:", ", ".join(
        f"{b.site} ({bytes_to_human(-b.net_flow)})" for b in exporters))

    print("\n== Streaming monitor (alerts as matched jobs arrive) ==")
    monitor = StreamingAnomalyMonitor()
    matches = study.matching_report()["rm2"].matched_jobs()
    for m in matches:
        monitor.observe_match(m)
    for t in telemetry.transfers:
        monitor.observe_transfer(t)
    print(monitor.summary())
    for alert in monitor.alerts[:5]:
        print(f"  {alert}")

    print("\n== Provenance of matched work ==")
    graph = build_provenance_graph(matches)
    s = summarize(graph)
    print(f"  {s.n_jobs} jobs fed by {s.n_source_sites} source sites; "
          f"top source carries {s.top_source_share:.0%} of served bytes "
          f"(mean {s.mean_sources_per_job:.1f} sources/job)")
    stats = site_feed_stats(graph)
    for site, (jobs, volume) in sorted(stats.items(), key=lambda kv: -kv[1][1])[:5]:
        print(f"    {site:<16s} fed {jobs:3d} jobs, {bytes_to_human(volume)}")

    if injector.applied:
        inc = injector.applied[0]
        b = boards.get(inc.site)
        if b is not None:
            print(f"\n== Incident recap: {inc.site} lost "
                  f"{1 - inc.severity:.0%} capacity for "
                  f"{inc.duration / 3600.0:.1f}h ==")
            print(f"  site failure rate {b.failure_rate:.0%} vs grid "
                  f"{sum(x.n_failed for x in boards.values()) / max(1, sum(x.n_jobs for x in boards.values())):.0%}")


if __name__ == "__main__":
    main()
