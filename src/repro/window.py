"""The analysis-window convention, stated once: half-open ``[t0, t1)``.

Every window cut in the repo follows the same rule:

* a record timestamped **exactly t0 is inside** the window;
* a record timestamped **exactly t1 is outside** it (it belongs to the
  next window).

Jobs are selected on ``endtime``, transfers on ``starttime``.  The
convention matters because the same window is cut by several
independent implementations that must agree record-for-record:

* the collector's sort-once + bisect pre-selection
  (:meth:`repro.telemetry.collector.TelemetryCollector.transfers_in_window`);
* the metastore's ``Range(gte=t0, lt=t1)`` queries and their
  sorted-index fast path (``FieldIndex.range_ids``), sharded or not;
* the pack source's per-slice cuts
  (:class:`repro.metastore.packsource.PackSource`);
* the streaming ingest filter and event-log trim (``repro.stream``).

Half-open windows tile: sliding windows with step == length partition
the timeline with every event counted exactly once.  The ``searchsorted``
lowering is ``side="left"`` at *both* bounds — ``side="left"`` at ``t0``
admits values equal to ``t0``, and ``side="left"`` at ``t1`` excludes
values equal to ``t1``.  Predicate-loop call sites use
:func:`in_window`; array call sites keep the searchsorted form and are
pinned against it by ``tests/test_window_boundaries.py``.
"""

from __future__ import annotations


def in_window(t: float, t0: float, t1: float) -> bool:
    """Membership in the half-open window ``[t0, t1)``."""
    return t0 <= t < t1
