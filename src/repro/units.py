"""Unit helpers for data sizes, rates, and durations.

All simulator-internal quantities use SI base units: bytes for sizes,
seconds for durations, bytes/second for rates.  These helpers exist so
that scenario definitions and reports can speak the paper's language
(terabytes, petabytes, MBps, days) without magic constants scattered
through the code.
"""

from __future__ import annotations

# -- size constants (decimal, matching the storage industry and the paper) --
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12
PB = 10**15
EB = 10**18

# -- time constants -----------------------------------------------------------
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY
YEAR = 365.25 * DAY


def bytes_to_human(n: float) -> str:
    """Render a byte count with the most natural decimal prefix.

    >>> bytes_to_human(1_500_000_000_000)
    '1.50 TB'
    """
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, name in ((EB, "EB"), (PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= unit:
            return f"{sign}{n / unit:.2f} {name}"
    return f"{sign}{n:.0f} B"


def rate_to_mbps(bytes_per_second: float) -> float:
    """Convert bytes/second to the paper's MBps (megabytes per second)."""
    return bytes_per_second / MB


def mbps(megabytes_per_second: float) -> float:
    """Convert the paper's MBps into simulator bytes/second."""
    return megabytes_per_second * MB


def seconds_to_human(t: float) -> str:
    """Render a duration compactly: ``3d 04:05:06`` / ``04:05:06`` / ``42s``.

    >>> seconds_to_human(93784)
    '1d 02:03:04'
    """
    t = float(t)
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t < MINUTE:
        return f"{sign}{t:.0f}s"
    days, rem = divmod(int(round(t)), int(DAY))
    hours, rem = divmod(rem, int(HOUR))
    minutes, secs = divmod(rem, int(MINUTE))
    clock = f"{hours:02d}:{minutes:02d}:{secs:02d}"
    return f"{sign}{days}d {clock}" if days else f"{sign}{clock}"


def ratio_pct(part: float, whole: float) -> float:
    """Percentage ``part / whole * 100`` that is 0.0 for an empty whole."""
    return 100.0 * part / whole if whole else 0.0
