"""Seeded randomness utilities.

All stochastic behaviour in the simulator flows through
:class:`numpy.random.Generator` instances derived from a single root
seed via :func:`numpy.random.SeedSequence.spawn`, so that independent
subsystems (workload arrivals, network congestion, failure draws,
telemetry degradation) consume statistically independent streams while
the whole run stays reproducible from one integer.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Hands out named, independent random generators from one root seed.

    >>> r = RngRegistry(42)
    >>> a = r.get("network")
    >>> b = r.get("workload")
    >>> a is r.get("network")   # cached per name
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The child seed depends only on the root seed and the name, not on
        creation order, so adding a new consumer never perturbs existing
        streams.
        """
        if name not in self._streams:
            # Derive a stable child seed from the name so ordering of
            # get() calls cannot change any stream.
            name_digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=tuple(int(b) for b in name_digest)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]


def lognormal_with_mean(rng: np.random.Generator, mean: float, sigma: float, size=None):
    """Draw lognormal samples with a *target arithmetic mean*.

    numpy's ``lognormal(mean, sigma)`` parameterises the underlying
    normal; here we solve for ``mu`` so that ``E[X] = mean`` given the
    shape parameter ``sigma``. Useful for heavy-tailed durations and
    file sizes whose average must hit a configured value.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    mu = np.log(mean) - 0.5 * sigma * sigma
    return rng.lognormal(mu, sigma, size=size)


def bounded(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into ``[lo, hi]``."""
    return max(lo, min(hi, value))
