"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the scalar half of the observability
layer: where spans record *when* something ran, metrics record *how
often* and *how big* — metastore query counts per collection, artifact
cache hits/misses/evictions, kernel rows processed, watermark lag.

Instruments are keyed by ``(name, labels)`` so one registry holds e.g.
``metastore.queries{collection=jobs}`` and
``metastore.queries{collection=transfers}`` side by side.  A disabled
registry hands out shared no-op instruments, so call sites need no
conditionals.  ``snapshot()`` freezes everything into a deterministic,
JSON-ready dict (sorted by name then labels).

The registry and every instrument are thread-safe: the serving layer
(:mod:`repro.serve`) updates tenant counters and latency histograms
from a pool of worker threads, and a lost ``+=`` under contention would
silently corrupt shed-rate and hit-rate accounting.  Counters and
gauges share one registry-wide lock with instrument creation;
histograms take it around their three-field update so ``counts``,
``count``, and ``sum`` can never be observed torn.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

#: Default latency bucket edges, in seconds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0
)

#: Default result-size bucket edges (hit counts, row counts).
SIZE_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-edge histogram with count and sum.

    ``edges`` are upper bounds: an observation ``v`` lands in the first
    bucket whose edge satisfies ``v <= edge`` (``bisect_left``, so a
    value exactly on an edge counts *in* that edge's bucket); values
    above the last edge land in the overflow bucket.
    """

    __slots__ = ("edges", "counts", "count", "sum", "_lock")

    def __init__(self, edges: Sequence[float]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and sorted")
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)  # +1: overflow
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.edges, value)] += 1
            self.count += 1
            self.sum += value

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        the ``q``-th observation falls in; ``inf`` for the overflow)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total, counts = self.count, list(self.counts)
        if total == 0:
            return float("nan")
        rank = q * (total - 1)
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen > rank:
                return self.edges[i] if i < len(self.edges) else float("inf")
        return float("inf")


class _NoopInstrument:
    """Shared sink for disabled registries — accepts every call."""

    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NOOP_INSTRUMENT = _NoopInstrument()

_LabelKey = Tuple[Tuple[str, str], ...]


class MetricsRegistry:
    """Labelled instruments, created on first use."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> Tuple[str, _LabelKey]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels):
        if not self.enabled:
            return NOOP_INSTRUMENT
        key = self._key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(key, Counter())
        return inst

    def gauge(self, name: str, **labels):
        if not self.enabled:
            return NOOP_INSTRUMENT
        key = self._key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(key, Gauge())
        return inst

    def histogram(self, name: str, edges: Optional[Sequence[float]] = None, **labels):
        if not self.enabled:
            return NOOP_INSTRUMENT
        key = self._key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(
                    key, Histogram(edges if edges is not None else LATENCY_BUCKETS)
                )
        return inst

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything observed so far, as a flat JSON-ready dict."""

        def rows(table, render):
            return [
                {"name": name, "labels": dict(labels), **render(inst)}
                for (name, labels), inst in sorted(table.items())
            ]

        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": rows(counters, lambda c: {"value": c.value}),
            "gauges": rows(gauges, lambda g: {"value": g.value}),
            "histograms": rows(
                histograms,
                lambda h: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                },
            ),
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
