"""Unified observability: span tracing + metrics for the whole stack.

The paper's method is introspection of a distributed system from its
telemetry; this package gives the reproduction the same property about
*itself*.  Every layer of the dataplane — metastore queries, artifact
materializations, columnar kernels, executor scheduling, the streaming
processor — emits spans into a :class:`Tracer` and scalars into a
:class:`MetricsRegistry`, both reached through the ambient
:func:`get_obs` context (disabled, and effectively free, by default).

* :mod:`repro.obs.tracer` — :class:`Span` / :class:`Tracer`
  (context-manager + decorator API, injectable clock,
  :class:`TickClock` for deterministic traces);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket histograms;
* :mod:`repro.obs.context` — the :class:`Obs` bundle, the ambient
  :func:`get_obs` / :func:`use_obs` scope, and the
  :func:`instrument_kernel` decorator.

Exporters (Chrome ``trace_event`` JSON, flat metrics JSON, per-stage
summaries) live in :mod:`repro.reporting.obs`; ``python -m repro
profile`` drives the whole thing end to end.  See DESIGN.md §10.
"""

from repro.obs.context import Obs, get_obs, instrument_kernel, set_obs, use_obs
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_INSTRUMENT,
)
from repro.obs.tracer import NOOP_SPAN, Span, TickClock, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NOOP_INSTRUMENT",
    "NOOP_SPAN",
    "Obs",
    "SIZE_BUCKETS",
    "Span",
    "TickClock",
    "Tracer",
    "get_obs",
    "instrument_kernel",
    "set_obs",
    "use_obs",
]
