"""The ambient observability context.

Instrumented code throughout the dataplane reads one process-global
:class:`Obs` bundle (tracer + metrics registry) through
:func:`get_obs`.  The default bundle is *disabled*: ``span()`` returns
the shared no-op singleton and metric lookups return the shared no-op
instrument, so the instrumentation's steady-state cost is one global
read and one attribute check per call site.

Enablement is scoped, not flag-flipped: :func:`use_obs` installs a
bundle for the duration of a ``with`` block and restores the previous
one after — the pattern behind ``EightDayStudy(obs=...)``, the CLI's
``--obs`` flag, and the tests.  Worker processes spawned by
:class:`~repro.exec.executor.ParallelExecutor` inherit the disabled
default (the bundle is deliberately never pickled); parent-side spans
still bracket every pool operation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class Obs:
    """One observability bundle: a tracer and a metrics registry."""

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else Tracer(enabled=enabled)
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=enabled)

    @classmethod
    def disabled(cls) -> "Obs":
        return cls(enabled=False)

    @classmethod
    def collecting(cls, clock: Optional[Callable[[], float]] = None) -> "Obs":
        """An enabled bundle; pass a clock for deterministic spans."""
        return cls(tracer=Tracer(clock=clock), metrics=MetricsRegistry())


_AMBIENT: Obs = Obs.disabled()


def get_obs() -> Obs:
    """The currently installed bundle (disabled unless someone enabled it)."""
    return _AMBIENT


def set_obs(obs: Obs) -> Obs:
    """Install ``obs`` as the ambient bundle; returns the previous one."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = obs
    return previous


@contextmanager
def use_obs(obs: Optional[Obs]):
    """Scoped installation; ``use_obs(None)`` leaves the ambient as-is.

    The ``None`` passthrough lets components with an optional ``obs``
    attribute write ``with use_obs(self.obs):`` unconditionally.
    """
    if obs is None:
        yield get_obs()
        return
    previous = set_obs(obs)
    try:
        yield obs
    finally:
        set_obs(previous)


def instrument_kernel(name: str, rows: Optional[Callable[..., int]] = None) -> Callable:
    """Decorator: per-call span + rows-processed counters for one kernel.

    ``rows(*args, **kwargs)`` computes the element count the kernel
    touches (for the ``kernel.rows`` counter and the span's ``rows``
    attribute).  When the ambient bundle is disabled the wrapper is a
    single global read and boolean check — no span, no counters.
    """

    def deco(fn: Callable) -> Callable:
        import functools

        span_name = f"kernel.{name}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            obs = get_obs()
            if not obs.enabled:
                return fn(*args, **kwargs)
            n = int(rows(*args, **kwargs)) if rows is not None else 0
            with obs.tracer.span(span_name, cat="kernel") as sp:
                sp.set("rows", n)
                out = fn(*args, **kwargs)
            obs.metrics.counter("kernel.calls", kernel=name).inc()
            obs.metrics.counter("kernel.rows", kernel=name).inc(n)
            return out

        return wrapper

    return deco
