"""Span tracing with an injectable clock.

A :class:`Tracer` records wall-clock (or injected-clock) spans of the
dataplane's stages — metastore queries, artifact materializations,
kernel runs, executor tasks, stream micro-batches — as a flat list of
finished :class:`Span` records that the exporters in
:mod:`repro.reporting.obs` turn into a Chrome ``trace_event`` file.

Two properties matter more than features:

* **Zero cost when disabled.**  ``tracer.span(...)`` on a disabled
  tracer returns one shared no-op singleton — no allocation, no clock
  read — so hot paths can stay instrumented unconditionally.
* **Determinism on demand.**  The clock is injected
  (``Tracer(clock=...)``); with a :class:`TickClock` every span gets
  deterministic integer timestamps, so a traced sim run produces a
  byte-identical trace file across repetitions.  Nothing in this
  module reads ``time.monotonic`` behind the caller's back, and
  instrumentation never draws from the simulation's RNG streams or
  mutates observed state — which is why traced runs stay bit-identical
  to untraced ones.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, List, Optional


class TickClock:
    """A deterministic clock: each read advances by ``step``.

    Inject into a :class:`Tracer` to make span timestamps a pure
    function of the call sequence — reproducible trace artifacts for
    tests and committed examples.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0) -> None:
        self.step = float(step)
        self._now = float(start)

    def __call__(self) -> float:
        now = self._now
        self._now = now + self.step
        return now


class Span:
    """One traced operation: name, category, [start, end), attributes.

    Used as a context manager handed out by :meth:`Tracer.span`; the
    parent/depth fields are assigned on ``__enter__`` from the tracer's
    active-span stack, so nesting is recorded without any caller
    plumbing.
    """

    __slots__ = ("tracer", "span_id", "name", "cat", "start", "end",
                 "parent_id", "depth", "attrs")

    def __init__(self, tracer: "Tracer", name: str, cat: str) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.span_id = -1
        self.start = float("nan")
        self.end = float("nan")
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.attrs: dict = {}

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (rendered into the trace's ``args``)."""
        self.attrs[key] = value
        return self

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, *exc) -> bool:
        self.tracer._exit(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, cat={self.cat!r}, "
                f"start={self.start}, end={self.end}, depth={self.depth})")


class _NoopSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self


#: Singleton returned by every ``span()`` call on a disabled tracer —
#: hot paths allocate nothing when tracing is off.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans; context-manager and decorator API.

    ``clock`` is any zero-argument callable returning a float; it
    defaults to ``time.perf_counter`` for real profiling and accepts a
    :class:`TickClock` for deterministic runs.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.clock = clock if clock is not None else time.perf_counter
        #: finished spans, in completion order
        self.spans: List[Span] = []
        # Nesting is a property of one thread of execution: the serving
        # layer records spans from several worker threads at once, and a
        # shared stack would thread their parent/depth chains together.
        # Each thread gets its own stack; the finished list and the id
        # counter stay shared behind one lock.
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's active-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, cat: str = "misc"):
        """A new span (or the no-op singleton when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, cat)

    def wrap(self, name: str, cat: str = "misc") -> Callable:
        """Decorator form: trace every call of the wrapped function."""

        def deco(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(name, cat):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    # -- span lifecycle (called by Span.__enter__/__exit__) --------------------

    def _enter(self, span: Span) -> None:
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        stack = self._stack
        if stack:
            span.parent_id = stack[-1].span_id
        span.depth = len(stack)
        stack.append(span)
        span.start = self.clock()

    def _exit(self, span: Span) -> None:
        span.end = self.clock()
        # Tolerate exception-driven unwinding of several levels at once.
        stack = self._stack
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            self.spans.append(span)

    # -- inspection ------------------------------------------------------------

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def by_cat(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def cats(self) -> dict:
        """Histogram of finished-span categories."""
        out: dict = {}
        for s in self.spans:
            out[s.cat] = out.get(s.cat, 0) + 1
        return out

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self._stack.clear()
            self._next_id = 0

    def __len__(self) -> int:
        return len(self.spans)
