"""Telemetry record schemas.

Field names mirror the attributes Algorithm 1 joins on: jobs expose
``pandaid``, ``jeditaskid``, ``computingsite``, ``ninputfilebytes``,
``noutputfilebytes`` and lifecycle timestamps; file records expose
``pandaid``, ``jeditaskid``, ``lfn``, ``dataset``, ``proddblock``,
``scope``, ``file_size``; transfer records expose the file attributes
plus sites, activity, direction flags, and timestamps — but **no job
identifier**, which is the entire reason the matching problem exists.

All three record types are ``slots=True`` dataclasses: at
millions-of-rows scale the per-record ``__dict__`` dominates both the
resident size of a window and the cost of pickling record batches to
executor workers, and slot access is what the row engine's per-candidate
loops and the columnar engine's lowering spend most of their time on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Sentinel used in degraded records when a site label was lost.
UNKNOWN_SITE = "UNKNOWN"


@dataclass(slots=True)
class JobRecord:
    """One row of PanDA job metadata (as queried from the job archive)."""

    pandaid: int
    jeditaskid: int
    computingsite: str
    prodsourcelabel: str  # "user" for analysis, "managed" for production
    status: str  # "finished" | "failed"
    taskstatus: str  # "finished" | "failed" | "running"
    creationtime: float
    starttime: Optional[float]
    endtime: Optional[float]
    ninputfilebytes: int
    noutputfilebytes: int
    error_code: int = 0
    error_message: str = ""

    @property
    def queuing_time(self) -> Optional[float]:
        if self.starttime is None:
            return None
        return self.starttime - self.creationtime

    @property
    def wall_time(self) -> Optional[float]:
        if self.starttime is None or self.endtime is None:
            return None
        return self.endtime - self.starttime

    @property
    def succeeded(self) -> bool:
        return self.status == "finished"


@dataclass(slots=True)
class FileRecord:
    """One row of PanDA's file table: a file a job consumed or produced."""

    pandaid: int
    jeditaskid: int
    lfn: str
    dataset: str
    proddblock: str
    scope: str
    file_size: int
    ftype: str  # "input" | "output"


@dataclass(slots=True)
class TransferRecord:
    """One Rucio transfer event, as recorded (possibly degraded).

    ``row_id`` is an opaque storage row identifier (never a join key for
    the matching algorithms; it exists so evaluation code can look up
    the ground truth).  ``jeditaskid`` is 0 when the record lost or
    never had task identity.
    """

    row_id: int
    lfn: str
    scope: str
    dataset: str
    proddblock: str
    file_size: int
    source_site: str
    destination_site: str
    activity: str
    is_download: bool
    is_upload: bool
    starttime: float
    endtime: float
    success: bool = True
    jeditaskid: int = 0

    @property
    def has_jeditaskid(self) -> bool:
        return self.jeditaskid > 0

    @property
    def duration(self) -> float:
        return self.endtime - self.starttime

    @property
    def throughput(self) -> float:
        d = self.duration
        return self.file_size / d if d > 0 else 0.0

    @property
    def is_local(self) -> bool:
        """Local = same recorded source and destination site.

        Records with an UNKNOWN endpoint are *not* local — this is what
        pushes RM2's extra matches into the remote column of Table 2a.
        """
        return (
            self.source_site == self.destination_site
            and self.source_site != UNKNOWN_SITE
            and bool(self.source_site)
        )

    @property
    def has_unknown_site(self) -> bool:
        return (
            self.source_site == UNKNOWN_SITE
            or self.destination_site == UNKNOWN_SITE
            or not self.source_site
            or not self.destination_site
        )
