"""Ground truth: the true job ↔ transfer linkage.

Kept entirely separate from the degraded records so no matching code
can accidentally consult it; only the evaluation module
(:mod:`repro.core.matching.evaluation`) reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple


@dataclass
class GroundTruth:
    """Bidirectional truth maps, keyed by transfer ``row_id`` / ``pandaid``."""

    #: transfer row_id -> true pandaid (0 = not job-driven)
    transfer_to_job: Dict[int, int] = field(default_factory=dict)
    #: pandaid -> true transfer row_ids
    job_to_transfers: Dict[int, Set[int]] = field(default_factory=dict)
    #: transfer row_id -> (true source site, true destination site)
    true_sites: Dict[int, Tuple[str, str]] = field(default_factory=dict)

    def link(
        self,
        transfer_row_id: int,
        pandaid: int,
        source_site: str = "",
        destination_site: str = "",
    ) -> None:
        if transfer_row_id in self.transfer_to_job:
            raise ValueError(f"transfer {transfer_row_id} already linked")
        self.transfer_to_job[transfer_row_id] = pandaid
        if pandaid:
            self.job_to_transfers.setdefault(pandaid, set()).add(transfer_row_id)
        if source_site or destination_site:
            self.true_sites[transfer_row_id] = (source_site, destination_site)

    def true_job_of(self, transfer_row_id: int) -> int:
        """True pandaid for a transfer (0 when background/task-driven)."""
        return self.transfer_to_job.get(transfer_row_id, 0)

    def true_transfers_of(self, pandaid: int) -> FrozenSet[int]:
        return frozenset(self.job_to_transfers.get(pandaid, frozenset()))

    @property
    def n_job_driven_transfers(self) -> int:
        return sum(1 for v in self.transfer_to_job.values() if v)

    @property
    def n_jobs_with_transfers(self) -> int:
        return len(self.job_to_transfers)
