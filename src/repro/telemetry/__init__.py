"""Telemetry: ground truth collection and metadata degradation.

The simulator knows exactly which job caused which transfer.  Production
ATLAS telemetry does not — transfer records carry no ``pandaid``, sites
get mislabelled ``UNKNOWN``, sizes are recorded imprecisely, identifiers
go missing (challenges 1-3 in the paper's introduction).  This package
collects the ground truth and then *deliberately erases it* the way
production metadata erases it, producing the degraded record sets the
matching algorithms operate on, while keeping the truth aside so the
matchers can additionally be scored (precision/recall — an evaluation
the paper itself could not perform).
"""

from repro.telemetry.records import JobRecord, FileRecord, TransferRecord
from repro.telemetry.groundtruth import GroundTruth
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.degradation import DegradationConfig, MetadataDegrader, DegradedTelemetry

__all__ = [
    "JobRecord",
    "FileRecord",
    "TransferRecord",
    "GroundTruth",
    "TelemetryCollector",
    "DegradationConfig",
    "MetadataDegrader",
    "DegradedTelemetry",
]
