"""Metadata quality assessment.

§7: "Future efforts should focus on … improving metadata completeness
and consistency."  Improvement starts with measurement: this module
scores a degraded record set on the defect axes the paper documents and
produces a quality report an operator (or the degradation-calibration
tests) can track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.telemetry.records import FileRecord, JobRecord, TransferRecord, UNKNOWN_SITE
from repro.units import ratio_pct


@dataclass(frozen=True)
class QualityReport:
    """Metadata-quality metrics over one record set."""

    n_jobs: int
    n_files: int
    n_transfers: int
    pct_transfers_with_taskid: float
    pct_unknown_source: float
    pct_unknown_destination: float
    pct_zero_duration: float
    pct_failed_transfers: float
    n_jobs_without_files: int
    n_dangling_file_jobs: int
    issues: List[str]

    @property
    def clean(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        lines = [
            f"jobs {self.n_jobs}, file rows {self.n_files}, transfers {self.n_transfers}",
            f"  taskid coverage      : {self.pct_transfers_with_taskid:.1f}%",
            f"  unknown source/dest  : {self.pct_unknown_source:.1f}% / "
            f"{self.pct_unknown_destination:.1f}%",
            f"  zero-duration rows   : {self.pct_zero_duration:.1f}%",
            f"  failed transfers     : {self.pct_failed_transfers:.1f}%",
            f"  jobs without file rows: {self.n_jobs_without_files}",
        ]
        lines.extend(f"  ISSUE: {i}" for i in self.issues)
        return "\n".join(lines)


def assess_quality(
    jobs: Sequence[JobRecord],
    files: Sequence[FileRecord],
    transfers: Sequence[TransferRecord],
) -> QualityReport:
    """Score one telemetry snapshot; collects hard consistency issues."""
    issues: List[str] = []

    # transfer-side metrics
    n_t = len(transfers)
    with_taskid = sum(1 for t in transfers if t.has_jeditaskid)
    unk_src = sum(1 for t in transfers if t.source_site in ("", UNKNOWN_SITE))
    unk_dst = sum(1 for t in transfers if t.destination_site in ("", UNKNOWN_SITE))
    zero_dur = sum(1 for t in transfers if t.duration <= 0)
    failed = sum(1 for t in transfers if not t.success)

    row_ids = [t.row_id for t in transfers]
    if len(row_ids) != len(set(row_ids)):
        issues.append("duplicate transfer row_ids")
    for t in transfers:
        if t.endtime < t.starttime:
            issues.append(f"transfer {t.row_id}: negative duration")
            break
        if t.file_size < 0:
            issues.append(f"transfer {t.row_id}: negative size")
            break

    # job-side metrics
    job_ids = {j.pandaid for j in jobs}
    if len(job_ids) != len(jobs):
        issues.append("duplicate pandaids")
    for j in jobs:
        if j.starttime is not None and j.starttime < j.creationtime:
            issues.append(f"job {j.pandaid}: started before creation")
            break
        if j.endtime is not None and j.starttime is not None and j.endtime < j.starttime:
            issues.append(f"job {j.pandaid}: ended before start")
            break

    # cross-collection consistency
    file_jobs: Dict[int, int] = {}
    for f in files:
        file_jobs[f.pandaid] = file_jobs.get(f.pandaid, 0) + 1
    jobs_without_files = sum(
        1 for j in jobs if j.ninputfilebytes > 0 and j.pandaid not in file_jobs
    )
    dangling = sum(1 for pid in file_jobs if pid not in job_ids)

    return QualityReport(
        n_jobs=len(jobs),
        n_files=len(files),
        n_transfers=n_t,
        pct_transfers_with_taskid=ratio_pct(with_taskid, n_t),
        pct_unknown_source=ratio_pct(unk_src, n_t),
        pct_unknown_destination=ratio_pct(unk_dst, n_t),
        pct_zero_duration=ratio_pct(zero_dur, n_t),
        pct_failed_transfers=ratio_pct(failed, n_t),
        n_jobs_without_files=jobs_without_files,
        n_dangling_file_jobs=dangling,
        issues=issues,
    )
