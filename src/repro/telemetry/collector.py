"""Telemetry collector.

Subscribes to the transfer service (every ground-truth
:class:`TransferEvent`) and the PanDA server (every terminal job), and
accumulates the raw material the degradation layer later projects into
query-able records.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.panda.job import Job, JobKind
from repro.panda.task import JediTask, TaskStatus
from repro.rucio.catalog import DidCatalog
from repro.rucio.transfer import TransferEvent


class TelemetryCollector:
    """Accumulates ground-truth events during a simulation run."""

    def __init__(self, catalog: DidCatalog) -> None:
        self.catalog = catalog
        self.transfer_events: List[TransferEvent] = []
        self.completed_jobs: List[Job] = []
        self._jobs_by_id: Dict[int, Job] = {}

    # -- sinks (wired into FTS and PanDA) ------------------------------------

    def on_transfer(self, event: TransferEvent) -> None:
        self.transfer_events.append(event)

    def on_job_done(self, job: Job) -> None:
        if job.pandaid in self._jobs_by_id:
            raise ValueError(f"job {job.pandaid} reported done twice")
        self._jobs_by_id[job.pandaid] = job
        self.completed_jobs.append(job)

    # -- accessors ---------------------------------------------------------------

    def job(self, pandaid: int) -> Optional[Job]:
        return self._jobs_by_id.get(pandaid)

    @property
    def n_transfers(self) -> int:
        return len(self.transfer_events)

    @property
    def n_jobs(self) -> int:
        return len(self.completed_jobs)

    def task_status_label(self, task: Optional[JediTask]) -> str:
        if task is None:
            return "finished"
        return task.status().value

    def jobs_of_kind(self, kind: JobKind) -> List[Job]:
        return [j for j in self.completed_jobs if j.kind is kind]

    def transfers_in_window(self, t0: float, t1: float) -> List[TransferEvent]:
        """Transfers whose start falls in [t0, t1)."""
        return [e for e in self.transfer_events if t0 <= e.starttime < t1]

    def jobs_completed_in_window(self, t0: float, t1: float) -> List[Job]:
        """Jobs whose end falls in [t0, t1) — the query module only
        reports jobs completed before the end of the interval (§4.2)."""
        return [
            j
            for j in self.completed_jobs
            if j.end_time is not None and t0 <= j.end_time < t1
        ]
