"""Telemetry collector.

Subscribes to the transfer service (every ground-truth
:class:`TransferEvent`) and the PanDA server (every terminal job), and
accumulates the raw material the degradation layer later projects into
query-able records.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.panda.job import Job, JobKind
from repro.panda.task import JediTask, TaskStatus
from repro.rucio.catalog import DidCatalog
from repro.rucio.transfer import TransferEvent
from repro.window import in_window


class TelemetryCollector:
    """Accumulates ground-truth events during a simulation run."""

    def __init__(self, catalog: DidCatalog) -> None:
        self.catalog = catalog
        self.transfer_events: List[TransferEvent] = []
        self.completed_jobs: List[Job] = []
        self._jobs_by_id: Dict[int, Job] = {}
        # Start-time order over transfer_events, built lazily on the
        # first window query and invalidated by appends, so repeated
        # window queries are O(log n + k) instead of full scans.
        self._start_order: Optional[np.ndarray] = None
        self._sorted_starts: Optional[np.ndarray] = None

    # -- sinks (wired into FTS and PanDA) ------------------------------------

    def on_transfer(self, event: TransferEvent) -> None:
        self.transfer_events.append(event)
        self._start_order = None

    def on_job_done(self, job: Job) -> None:
        if job.pandaid in self._jobs_by_id:
            raise ValueError(f"job {job.pandaid} reported done twice")
        self._jobs_by_id[job.pandaid] = job
        self.completed_jobs.append(job)

    # -- accessors ---------------------------------------------------------------

    def job(self, pandaid: int) -> Optional[Job]:
        return self._jobs_by_id.get(pandaid)

    @property
    def n_transfers(self) -> int:
        return len(self.transfer_events)

    @property
    def n_jobs(self) -> int:
        return len(self.completed_jobs)

    def task_status_label(self, task: Optional[JediTask]) -> str:
        if task is None:
            return "finished"
        return task.status().value

    def jobs_of_kind(self, kind: JobKind) -> List[Job]:
        return [j for j in self.completed_jobs if j.kind is kind]

    def transfers_in_window(self, t0: float, t1: float) -> List[TransferEvent]:
        """Transfers whose start falls in [t0, t1), in arrival order.

        Sort-once + bisect: the start-time order is built on the first
        query after an append, then every query is two binary searches
        plus one sort of the k hits' positions (which restores the
        arrival order the old linear scan produced).  Both searches use
        ``side="left"`` — the searchsorted lowering of the repo-wide
        half-open convention (:mod:`repro.window`).
        """
        if not self.transfer_events:
            return []
        if self._start_order is None:
            starts = np.array(
                [e.starttime for e in self.transfer_events], dtype=np.float64
            )
            self._start_order = np.argsort(starts, kind="stable")
            self._sorted_starts = starts[self._start_order]
        lo = int(np.searchsorted(self._sorted_starts, t0, side="left"))
        hi = int(np.searchsorted(self._sorted_starts, t1, side="left"))
        positions = np.sort(self._start_order[lo:hi])
        return [self.transfer_events[i] for i in positions.tolist()]

    def jobs_completed_in_window(self, t0: float, t1: float) -> List[Job]:
        """Jobs whose end falls in [t0, t1) — the query module only
        reports jobs completed before the end of the interval (§4.2)."""
        return [
            j
            for j in self.completed_jobs
            if j.end_time is not None and in_window(j.end_time, t0, t1)
        ]
