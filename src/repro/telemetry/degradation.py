"""Metadata degradation.

Projects the collector's ground truth into the record sets a real
analysis would retrieve from OpenSearch, injecting each defect the
paper documents:

* **no job identifier on transfers** — always (that's the schema);
* **missing ``jeditaskid``** — a per-activity fraction of job/task
  driven transfer records loses it; Rucio-autonomous background
  movement never had one;
* **``UNKNOWN`` site labels** — "either the source site or destination
  site is recorded as unknown or with an invalid name" (§4.3); the RM2
  population;
* **imprecise file sizes** — "file sizes are not recorded precisely
  down to the byte level" (§4.3); Direct-IO streams additionally record
  partial-read byte counts;
* **block-granularity mismatch on production records** — production
  transfer rows report the task-level dataset as their block while
  PanDA file rows carry sub-block names, so the attribute join never
  succeeds — reproducing Table 1's 0% production match;
* **lost rows** — a small fraction of transfer and file rows simply
  never made it into the store.

Every defect probability is a knob; the defaults are calibrated so the
8-day scenario lands in the paper's reported bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional

import numpy as np

from repro.panda.job import Job, JobKind
from repro.panda.task import JediTask
from repro.rucio.activities import TransferActivity
from repro.rucio.transfer import TransferEvent
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.groundtruth import GroundTruth
from repro.telemetry.records import UNKNOWN_SITE, FileRecord, JobRecord, TransferRecord


@dataclass
class DegradationConfig:
    """Defect injection probabilities."""

    #: transfer rows silently lost
    p_drop_transfer: float = 0.02
    #: file rows silently lost (kills exact matching for the job)
    p_drop_file: float = 0.01
    #: per-activity probability a transfer row loses its jeditaskid
    p_drop_jeditaskid: Dict[TransferActivity, float] = field(
        default_factory=lambda: {
            TransferActivity.ANALYSIS_DOWNLOAD: 0.02,
            TransferActivity.ANALYSIS_UPLOAD: 0.01,
            TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO: 0.05,
            TransferActivity.PRODUCTION_DOWNLOAD: 0.02,
            TransferActivity.PRODUCTION_UPLOAD: 0.02,
        }
    )
    #: per-activity probability the destination site is recorded UNKNOWN
    p_unknown_destination: Dict[TransferActivity, float] = field(
        default_factory=lambda: {
            TransferActivity.ANALYSIS_DOWNLOAD: 0.35,
            TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO: 0.40,
            TransferActivity.ANALYSIS_UPLOAD: 0.01,
            TransferActivity.PRODUCTION_DOWNLOAD: 0.05,
            TransferActivity.PRODUCTION_UPLOAD: 0.05,
        }
    )
    #: per-activity probability the source site is recorded UNKNOWN
    p_unknown_source: Dict[TransferActivity, float] = field(
        default_factory=lambda: {
            TransferActivity.ANALYSIS_DOWNLOAD: 0.04,
            TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO: 0.05,
            TransferActivity.ANALYSIS_UPLOAD: 0.01,
        }
    )
    #: per-activity probability the recorded size deviates from truth
    p_size_imprecise: Dict[TransferActivity, float] = field(
        default_factory=lambda: {
            TransferActivity.ANALYSIS_DOWNLOAD: 0.55,
            TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO: 0.92,
            TransferActivity.ANALYSIS_UPLOAD: 0.01,
            TransferActivity.PRODUCTION_DOWNLOAD: 0.10,
            TransferActivity.PRODUCTION_UPLOAD: 0.10,
        }
    )
    #: rewrite production transfer blocks to task granularity
    production_block_granularity: bool = True
    #: round transfer timestamps to whole seconds
    round_timestamps: bool = True
    #: default drop-jeditaskid probability for unlisted activities
    p_drop_jeditaskid_default: float = 0.05

    def drop_taskid_p(self, activity: TransferActivity) -> float:
        return self.p_drop_jeditaskid.get(activity, self.p_drop_jeditaskid_default)

    def scaled(self, severity: float) -> "DegradationConfig":
        """Scale every defect *probability* by ``severity`` (clamped).

        ``severity=1`` is this config unchanged, ``0`` drops the
        stochastic defects entirely (structural defects — block
        granularity, timestamp rounding — are kept: they are schema
        properties, not noise), and values above 1 degrade harder.
        Used by the co-optimization sweep to measure how much awareness
        quality the control loop needs (:mod:`repro.scenarios.coopt`).
        """
        if severity < 0:
            raise ValueError(f"severity must be non-negative, got {severity}")

        def s(p: float) -> float:
            return min(0.95, p * severity)

        return DegradationConfig(
            p_drop_transfer=s(self.p_drop_transfer),
            p_drop_file=s(self.p_drop_file),
            p_drop_jeditaskid={k: s(v) for k, v in self.p_drop_jeditaskid.items()},
            p_unknown_destination={
                k: s(v) for k, v in self.p_unknown_destination.items()
            },
            p_unknown_source={k: s(v) for k, v in self.p_unknown_source.items()},
            p_size_imprecise={k: s(v) for k, v in self.p_size_imprecise.items()},
            production_block_granularity=self.production_block_granularity,
            round_timestamps=self.round_timestamps,
            p_drop_jeditaskid_default=s(self.p_drop_jeditaskid_default),
        )

    @classmethod
    def lossless(cls) -> "DegradationConfig":
        """A config that injects no defects at all.

        Used by the live streaming tap (:mod:`repro.stream.log`), where
        the per-record projection must be a pure schema mapping: every
        drop probability zero, no site/size corruption, no block
        rewriting, no timestamp rounding.
        """
        return cls(
            p_drop_transfer=0.0,
            p_drop_file=0.0,
            p_drop_jeditaskid={},
            p_unknown_destination={},
            p_unknown_source={},
            p_size_imprecise={},
            production_block_granularity=False,
            round_timestamps=False,
            p_drop_jeditaskid_default=0.0,
        )


@dataclass
class DegradedTelemetry:
    """What the analysis actually gets to see — plus the hidden truth."""

    jobs: List[JobRecord]
    files: List[FileRecord]
    transfers: List[TransferRecord]
    ground_truth: GroundTruth

    @cached_property
    def n_transfers_with_taskid(self) -> int:
        """Transfers that kept a task id (computed once; the CLI and
        reports read this repeatedly over a list that never mutates)."""
        return sum(1 for t in self.transfers if t.has_jeditaskid)


class MetadataDegrader:
    """Applies a :class:`DegradationConfig` to collected ground truth."""

    def __init__(self, config: Optional[DegradationConfig], rng: np.random.Generator) -> None:
        self.config = config or DegradationConfig()
        self.rng = rng

    # -- top level ---------------------------------------------------------------

    def degrade(
        self,
        collector: TelemetryCollector,
        tasks: Dict[int, JediTask],
    ) -> DegradedTelemetry:
        gt = GroundTruth()
        events_by_job: Dict[int, List[TransferEvent]] = {}
        for ev in collector.transfer_events:
            if ev.pandaid:
                events_by_job.setdefault(ev.pandaid, []).append(ev)

        transfers: List[TransferRecord] = []
        for ev in collector.transfer_events:
            rec = self.degrade_transfer(ev)
            if rec is None:
                continue
            gt.link(rec.row_id, ev.pandaid, ev.source_site, ev.destination_site)
            transfers.append(rec)

        jobs = [self.job_record(j, tasks.get(j.jeditaskid)) for j in collector.completed_jobs]

        files: List[FileRecord] = []
        for j in collector.completed_jobs:
            files.extend(self.file_records(j, collector, events_by_job.get(j.pandaid, [])))

        return DegradedTelemetry(jobs=jobs, files=files, transfers=transfers, ground_truth=gt)

    # -- per-record projections ------------------------------------------------------

    def job_record(self, job: Job, task: Optional[JediTask]) -> JobRecord:
        """Jobs come from the PanDA archive and are reliable."""
        return JobRecord(
            pandaid=job.pandaid,
            jeditaskid=job.jeditaskid,
            computingsite=job.computing_site,
            prodsourcelabel="user" if job.kind is JobKind.ANALYSIS else "managed",
            status="finished" if job.succeeded else "failed",
            taskstatus=task.status().value if task is not None else "finished",
            creationtime=job.creation_time,
            starttime=job.start_time,
            endtime=job.end_time,
            ninputfilebytes=job.ninputfilebytes,
            noutputfilebytes=job.noutputfilebytes,
            error_code=job.error_code,
            error_message=job.error_message,
        )

    def file_records(
        self,
        job: Job,
        collector: TelemetryCollector,
        job_events: List[TransferEvent],
    ) -> List[FileRecord]:
        """PanDA file-table rows for one job (inputs + produced outputs)."""
        out: List[FileRecord] = []
        if job.input_file_dids:
            input_files = [collector.catalog.file(fd) for fd in job.input_file_dids]
        elif job.input_dataset is not None:
            input_files = collector.catalog.resolve_files(job.input_dataset)
        else:
            input_files = []
        if input_files:
            for f in input_files:
                if self.rng.random() < self.config.p_drop_file:
                    continue
                out.append(
                    FileRecord(
                        pandaid=job.pandaid,
                        jeditaskid=job.jeditaskid,
                        lfn=f.lfn,
                        dataset=f.dataset_name,
                        proddblock=f.proddblock,
                        scope=f.scope,
                        file_size=f.size,
                        ftype="input",
                    )
                )
        for ev in job_events:
            if not ev.activity.is_upload:
                continue
            if self.rng.random() < self.config.p_drop_file:
                continue
            out.append(
                FileRecord(
                    pandaid=job.pandaid,
                    jeditaskid=job.jeditaskid,
                    lfn=ev.lfn,
                    dataset=ev.dataset,
                    proddblock=ev.proddblock,
                    scope=ev.scope,
                    file_size=ev.file_size,
                    ftype="output",
                )
            )
        return out

    def degrade_transfer(self, ev: TransferEvent) -> Optional[TransferRecord]:
        """One transfer event -> one (possibly defective) record, or None."""
        cfg = self.config
        if self.rng.random() < cfg.p_drop_transfer:
            return None
        act = ev.activity

        jeditaskid = ev.jeditaskid
        if jeditaskid and self.rng.random() < cfg.drop_taskid_p(act):
            jeditaskid = 0

        # Destination and source corruption are independent defects:
        # §4.3 allows "either ... or" including both at once, and a
        # conditional draw would deflate the effective source-unknown
        # rate by (1 - p_destination).
        src, dst = ev.source_site, ev.destination_site
        if self.rng.random() < cfg.p_unknown_destination.get(act, 0.0):
            dst = UNKNOWN_SITE
        if self.rng.random() < cfg.p_unknown_source.get(act, 0.0):
            src = UNKNOWN_SITE

        size = ev.file_size
        if self.rng.random() < cfg.p_size_imprecise.get(act, 0.0):
            if act is TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO:
                # Streaming reads record bytes actually read.
                size = max(1, int(size * self.rng.uniform(0.15, 0.98)))
            else:
                # Coarse rounding / accounting drift (always != truth).
                drift = int(self.rng.integers(1, 65537))
                sign = 1 if self.rng.random() < 0.5 else -1
                size = max(1, size + sign * drift)

        proddblock = ev.proddblock
        if cfg.production_block_granularity and act.is_production:
            # Production conveyor reports the task-level container as the
            # block; PanDA file rows keep the _subNNN granularity.
            proddblock = f"{ev.dataset}#task"

        t0, t1 = ev.starttime, ev.endtime
        if cfg.round_timestamps:
            t0, t1 = float(np.floor(t0)), float(np.ceil(t1))

        return TransferRecord(
            row_id=ev.transfer_id,
            lfn=ev.lfn,
            scope=ev.scope,
            dataset=ev.dataset,
            proddblock=proddblock,
            file_size=size,
            source_site=src,
            destination_site=dst,
            activity=act.value,
            is_download=act.is_download,
            is_upload=act.is_upload,
            starttime=t0,
            endtime=t1,
            success=ev.success,
            jeditaskid=jeditaskid,
        )
