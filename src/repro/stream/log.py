"""Append-only event log of sequenced telemetry records.

The streaming counterpart of a :class:`DegradedTelemetry` snapshot: a
single ordered sequence of *record-level* events — one per completed
job (carrying its PanDA file rows) and one per transfer row.  Two
producers feed it:

* **replay** — :meth:`EventLog.from_telemetry` projects a snapshot into
  events ordered by event time (job endtime / transfer starttime), for
  deterministic micro-batch replay of a finished campaign;
* **live** — :class:`StreamingCollector` taps the simulation harness's
  telemetry sinks and appends events as they happen, projecting ground
  truth through a (by default lossless) :class:`MetadataDegrader`.

Every event carries a per-kind sequence number assigned in *snapshot /
arrival* order.  That sequence is the parity anchor: the incremental
matcher keys all of its internal ordering on it, so replaying events in
any delivery order reproduces the batch engine's ingestion-order
semantics exactly (see DESIGN.md §9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.panda.job import Job
from repro.rucio.catalog import DidCatalog
from repro.rucio.transfer import TransferEvent
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.degradation import (
    DegradationConfig,
    DegradedTelemetry,
    MetadataDegrader,
)
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord
from repro.window import in_window


class EventKind(enum.Enum):
    """What a stream event describes."""

    JOB = "job"
    TRANSFER = "transfer"


@dataclass(frozen=True)
class StreamEvent:
    """One sequenced telemetry event.

    ``seq`` counts per kind in snapshot/arrival order; ``time`` is the
    event time the watermark tracks (job endtime / transfer starttime).
    Job events carry the job's PanDA file rows — in the real pipeline
    they land in the file table together with the job's archive row.
    """

    kind: EventKind
    seq: int
    time: float
    record: object  # JobRecord | TransferRecord
    files: Tuple[FileRecord, ...] = ()


class EventLog:
    """Append-only, sequenced event sequence."""

    def __init__(self) -> None:
        self.events: List[StreamEvent] = []
        self._job_seq = 0
        self._transfer_seq = 0

    def append_job(self, record: JobRecord, files: Sequence[FileRecord] = ()) -> StreamEvent:
        ev = StreamEvent(
            kind=EventKind.JOB,
            seq=self._job_seq,
            time=record.endtime if record.endtime is not None else float("-inf"),
            record=record,
            files=tuple(files),
        )
        self._job_seq += 1
        self.events.append(ev)
        return ev

    def append_transfer(self, record: TransferRecord) -> StreamEvent:
        ev = StreamEvent(
            kind=EventKind.TRANSFER,
            seq=self._transfer_seq,
            time=record.starttime,
            record=record,
        )
        self._transfer_seq += 1
        self.events.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self.events)

    @classmethod
    def from_telemetry(
        cls,
        telemetry: DegradedTelemetry,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> "EventLog":
        """Project a snapshot into an event-time-ordered log.

        Sequence numbers are assigned in *snapshot* order before the
        time sort — they are exactly the doc ids a bulk ingest of the
        same snapshot would produce, which is what makes streaming
        replay bit-identical to the batch pipeline.  Jobs without an
        endtime never close a window (and can never match: condition
        (1) needs an endtime), so they are left out of the log; window
        bounds, when given, trim jobs and transfers the batch
        pre-selection would not retrieve either.
        """
        log = cls()
        files_by_pid: dict = {}
        for f in telemetry.files:
            files_by_pid.setdefault(f.pandaid, []).append(f)

        staged: List[Tuple[float, int, StreamEvent]] = []
        for j in telemetry.jobs:
            seq = log._job_seq
            log._job_seq += 1
            if j.endtime is None:
                continue
            if t0 is not None and not in_window(j.endtime, t0, t1):
                continue
            ev = StreamEvent(
                kind=EventKind.JOB,
                seq=seq,
                time=j.endtime,
                record=j,
                files=tuple(files_by_pid.get(j.pandaid, ())),
            )
            staged.append((ev.time, 1, ev))
        for t in telemetry.transfers:
            seq = log._transfer_seq
            log._transfer_seq += 1
            if t0 is not None and not in_window(t.starttime, t0, t1):
                continue
            ev = StreamEvent(
                kind=EventKind.TRANSFER, seq=seq, time=t.starttime, record=t
            )
            staged.append((ev.time, 0, ev))
        # Transfers sort before jobs at equal times (rank 0 vs 1):
        # a job window closing at time T must see every transfer that
        # could still pass `starttime < T`.
        staged.sort(key=lambda s: (s[0], s[1], s[2].seq))
        log.events = [ev for _, _, ev in staged]
        return log

    def micro_batches(
        self,
        batch_seconds: Optional[float] = None,
        batch_events: Optional[int] = None,
    ) -> Iterator[List[StreamEvent]]:
        """Deterministic micro-batches, by event-time span or by count.

        Time-based batching cuts at fixed boundaries from the first
        event's time onward; events are taken in log order, so a late
        (out-of-order) event simply lands in the batch that is open
        when it arrives — exactly the situation the watermark tracker
        exists to absorb.
        """
        if (batch_seconds is None) == (batch_events is None):
            raise ValueError("pass exactly one of batch_seconds / batch_events")
        if not self.events:
            return
        if batch_events is not None:
            if batch_events < 1:
                raise ValueError("batch_events must be >= 1")
            for i in range(0, len(self.events), batch_events):
                yield self.events[i : i + batch_events]
            return
        if batch_seconds <= 0:
            raise ValueError("batch_seconds must be > 0")
        base = self.events[0].time
        boundary = base + batch_seconds
        batch: List[StreamEvent] = []
        for ev in self.events:
            while ev.time >= boundary and batch:
                yield batch
                batch = []
                boundary += batch_seconds
            if ev.time >= boundary:  # empty span(s): just advance
                boundary += batch_seconds * (
                    np.floor((ev.time - boundary) / batch_seconds) + 1
                )
            batch.append(ev)
        if batch:
            yield batch


class StreamingCollector(TelemetryCollector):
    """Live tap: a collector that also feeds an :class:`EventLog`.

    Drop-in for :class:`TelemetryCollector` via the harness's
    ``collector_factory`` hook — the simulation's FTS/PanDA sinks are
    unchanged, but every ground-truth event is additionally projected
    to a record (through ``degrader``, lossless by default) and
    appended to ``log`` at the moment it happens.  Task status is
    recorded as it stands at completion time ("finished" when the task
    is not tracked), matching what a live archive poll would see.
    """

    def __init__(
        self,
        catalog: DidCatalog,
        log: Optional[EventLog] = None,
        degrader: Optional[MetadataDegrader] = None,
    ) -> None:
        super().__init__(catalog)
        self.log = log if log is not None else EventLog()
        self.degrader = degrader or MetadataDegrader(
            DegradationConfig.lossless(), np.random.default_rng(0)
        )
        self._events_by_job: dict = {}

    def on_transfer(self, event: TransferEvent) -> None:
        super().on_transfer(event)
        if event.pandaid:
            self._events_by_job.setdefault(event.pandaid, []).append(event)
        rec = self.degrader.degrade_transfer(event)
        if rec is not None:
            self.log.append_transfer(rec)

    def on_job_done(self, job: Job) -> None:
        super().on_job_done(job)
        rec = self.degrader.job_record(job, None)
        files = self.degrader.file_records(
            job, self, self._events_by_job.get(job.pandaid, [])
        )
        self.log.append_job(rec, files)
