"""Event-time watermark / lateness tracking.

The stream's ordering guarantee is *event time*, not delivery order:
transfer events may arrive late relative to their ``starttime``.  The
tracker maintains the standard low-watermark

    ``watermark = max(observed transfer starttime) - lateness``

and a job's window may close once ``endtime <= watermark``: any
transfer that could still arrive has ``starttime >= watermark >=
endtime`` (given the lateness bound holds), so it would fail Algorithm
1's strict ``starttime < endtime`` time filter anyway — the job's match
set is final.  That inequality is the whole parity argument; see
DESIGN.md §9.

A transfer that violates the bound (``starttime < watermark`` at
arrival) still matches *open* jobs but may have been missed by
already-closed ones; :class:`~repro.stream.metrics.StreamMetrics`
counts these so the violation is observable, never silent.
"""

from __future__ import annotations


class WatermarkTracker:
    """Low-watermark over observed transfer event times."""

    def __init__(self, lateness: float = 0.0) -> None:
        if lateness < 0:
            raise ValueError("lateness must be >= 0")
        self.lateness = float(lateness)
        self._max_event_time = float("-inf")
        self._closed = False

    def observe(self, event_time: float) -> None:
        """Account one transfer's event time (its starttime)."""
        if event_time > self._max_event_time:
            self._max_event_time = event_time

    @property
    def max_event_time(self) -> float:
        return self._max_event_time

    @property
    def watermark(self) -> float:
        """No job with ``endtime <= watermark`` can gain new matches."""
        if self._closed:
            return float("inf")
        return self._max_event_time - self.lateness

    @property
    def lag(self) -> float:
        """How far the watermark trails the newest event (0 when closed).

        Before the first event is observed both terms are ``-inf`` and
        the subtraction would be NaN; the pre-event lag is defined as
        ``0.0`` — there is nothing for the watermark to trail yet.
        """
        if self._closed or self._max_event_time == float("-inf"):
            return 0.0
        return self._max_event_time - self.watermark

    @property
    def has_observed(self) -> bool:
        """Has any event time been observed yet?  (Gauges should skip
        the pre-event state rather than report a ``-inf`` watermark.)"""
        return self._max_event_time != float("-inf")

    def is_late(self, event_time: float) -> bool:
        """Does this event time violate the lateness bound?"""
        return event_time < self.watermark

    def can_close(self, endtime: float) -> bool:
        return endtime <= self.watermark

    def close(self) -> None:
        """End of stream: every pending window may flush."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed
