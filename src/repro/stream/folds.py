"""Online analysis folds over match deltas.

Each fold consumes :class:`~repro.stream.incremental.MatchDelta`\\ s and
keeps a running accumulator whose ``snapshot()`` is **bit-identical**
to the corresponding batch analysis over the accumulated matches:

* :class:`SummaryFold` — §5.1 headline numbers
  (:func:`repro.core.analysis.summary.headline_stats`, row frame);
* :class:`QueuingFold` — Table 2's per-method tallies
  (``jobs_by_class`` / ``local_remote_split``);
* :class:`ThresholdFold` — the Fig 9 cumulative sweep
  (:func:`repro.core.analysis.thresholds.threshold_sweep`);
* :class:`SiteAwarenessFold` / :class:`LinkAwarenessFold` — canonical
  per-site / per-link rows for the co-optimization control loop
  (:mod:`repro.coopt.state`), bit-identical to the batch builders.

The identity argument: counts are integers (order-independent), and
float statistics are computed at snapshot time from timing rows held in
job-sequence order — the exact order the batch analysis iterates — so
``np.mean`` sees identical arrays, not merely equivalent sets.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis.queuing import (
    JobTransferTiming,
    compute_timing,
    geomean_transfer_pct,
    mean_transfer_pct,
)
from repro.core.analysis.summary import HeadlineStats
from repro.core.analysis.thresholds import (
    DEFAULT_THRESHOLDS,
    StatusCombo,
    ThresholdSweep,
)
from repro.core.matching.base import TransferClass


class SummaryFold:
    """Running §5.1 headline statistics for one method."""

    def __init__(self, method: str = "exact") -> None:
        self.method = method
        self.n_matched_jobs = 0
        self._row_ids: set = set()
        #: (job seq, timing) kept sorted by seq — batch match order
        self._timings: List[Tuple[int, JobTransferTiming]] = []

    def update(self, delta) -> None:
        for f in delta.matches.get(self.method, ()):
            self.n_matched_jobs += 1
            for t in f.match.transfers:
                self._row_ids.add(t.row_id)
            timing = compute_timing(f.match)
            if timing is not None:
                insort(self._timings, (f.seq, timing))

    def snapshot(
        self, n_jobs: int, n_transfers: int, n_transfers_with_taskid: int
    ) -> HeadlineStats:
        timings = [t for _, t in self._timings]
        return HeadlineStats(
            n_jobs=n_jobs,
            n_transfers=n_transfers,
            n_transfers_with_taskid=n_transfers_with_taskid,
            n_matched_jobs=self.n_matched_jobs,
            n_matched_transfers=len(self._row_ids),
            mean_transfer_pct=mean_transfer_pct(timings),
            geomean_transfer_pct=geomean_transfer_pct(timings),
        )


class QueuingFold:
    """Running Table-2 tallies (job classes, transfer locality split)."""

    def __init__(self, method: str = "exact") -> None:
        self.method = method
        self._by_class: Dict[TransferClass, int] = {c: 0 for c in TransferClass}
        #: row_id -> (job seq of first claimer, is_local) — replayed in
        #: job-sequence order so duplicate row ids resolve exactly like
        #: the batch ``local_remote_split`` first-occurrence rule.
        self._locality: Dict[int, Tuple[int, bool]] = {}

    def update(self, delta) -> None:
        for f in delta.matches.get(self.method, ()):
            self._by_class[f.match.transfer_class] += 1
            for t in f.match.transfers:
                cur = self._locality.get(t.row_id)
                if cur is None or f.seq < cur[0]:
                    self._locality[t.row_id] = (f.seq, t.is_local)

    def jobs_by_class(self) -> Dict[TransferClass, int]:
        return dict(self._by_class)

    def local_remote_split(self) -> Tuple[int, int]:
        local = sum(1 for _, is_local in self._locality.values() if is_local)
        return local, len(self._locality) - local


class ThresholdFold:
    """Running Fig-9 cumulative counts per status combo."""

    def __init__(
        self,
        method: str = "exact",
        thresholds: Sequence[float] = tuple(DEFAULT_THRESHOLDS),
    ) -> None:
        self.method = method
        self.thresholds = sorted(float(t) for t in thresholds)
        self._cumulative: Dict[StatusCombo, List[int]] = {
            c: [0] * len(self.thresholds) for c in StatusCombo
        }
        self.n_jobs = 0

    def update(self, delta) -> None:
        for f in delta.matches.get(self.method, ()):
            timing = compute_timing(f.match)
            if timing is None:
                continue
            self.n_jobs += 1
            counts = self._cumulative[StatusCombo.of(timing)]
            pct = timing.transfer_pct
            for i, th in enumerate(self.thresholds):
                if pct <= th:
                    counts[i] += 1

    def snapshot(self) -> ThresholdSweep:
        return ThresholdSweep(
            thresholds=list(self.thresholds),
            cumulative={c: list(v) for c, v in self._cumulative.items()},
            n_jobs=self.n_jobs,
        )


class SiteAwarenessFold:
    """Canonical per-site awareness rows, accumulated from deltas.

    Keeps one ``(computingsite, queuing_time, failed)`` row per matched
    job, sorted by job sequence — exactly the row list
    :func:`repro.coopt.state.site_rows_from_matches` derives from the
    accumulated batch :class:`~repro.core.matching.base.MatchResult`,
    under any delivery order or batch size.
    """

    def __init__(self, method: str = "exact") -> None:
        self.method = method
        #: (job seq, site, queuing_time | None, failed) sorted by seq
        self._rows: List[Tuple[int, str, Optional[float], bool]] = []

    def update(self, delta) -> None:
        for f in delta.matches.get(self.method, ()):
            rec = f.match.job
            insort(
                self._rows,
                (f.seq, rec.computingsite, rec.queuing_time, not rec.succeeded),
            )

    def rows(self) -> List[Tuple[str, Optional[float], bool]]:
        return [(site, wait, failed) for _, site, wait, failed in self._rows]


class LinkAwarenessFold:
    """Canonical per-link awareness rows, accumulated from deltas.

    Transfer rows shared between matched jobs resolve to the claim with
    the smallest ``(job seq, position)`` — the batch builder's
    first-occurrence rule — and failed / zero-duration records are
    never claimed, mirroring
    :func:`repro.coopt.state.link_rows_from_matches` exactly.
    """

    def __init__(self, method: str = "exact") -> None:
        self.method = method
        #: row_id -> (job seq, position, (src, dst, throughput))
        self._claims: Dict[int, Tuple[int, int, Tuple[str, str, float]]] = {}

    def update(self, delta) -> None:
        for f in delta.matches.get(self.method, ()):
            for pos, t in enumerate(f.match.transfers):
                if not t.success or t.duration <= 0:
                    continue
                cur = self._claims.get(t.row_id)
                if cur is None or (f.seq, pos) < (cur[0], cur[1]):
                    self._claims[t.row_id] = (
                        f.seq,
                        pos,
                        (t.source_site, t.destination_site, t.throughput),
                    )

    def rows(self) -> List[Tuple[str, str, float]]:
        return [row for _, _, row in sorted(self._claims.values())]


class FoldSet:
    """A named bundle of folds updated together per delta."""

    def __init__(self, folds: Optional[Dict[str, object]] = None) -> None:
        self.folds: Dict[str, object] = dict(folds) if folds else {}

    @classmethod
    def default(cls, method: str = "exact") -> "FoldSet":
        return cls(
            {
                "summary": SummaryFold(method),
                "queuing": QueuingFold(method),
                "thresholds": ThresholdFold(method),
            }
        )

    @classmethod
    def with_awareness(cls, method: str = "exact") -> "FoldSet":
        """The default folds plus the control loop's awareness folds."""
        fs = cls.default(method)
        fs.folds["site_awareness"] = SiteAwarenessFold(method)
        fs.folds["link_awareness"] = LinkAwarenessFold(method)
        return fs

    def update(self, delta) -> None:
        for fold in self.folds.values():
            fold.update(delta)

    def __getitem__(self, name: str):
        return self.folds[name]

    def __contains__(self, name: str) -> bool:
        return name in self.folds
