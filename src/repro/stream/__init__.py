"""Streaming ingest + incremental matching dataplane.

The batch workflow (Fig 4) retrieves an 8-day window and matches it
once; production PanDA/Rucio telemetry is a continuous feed.  This
package keeps matches and headline analyses current as events arrive:

* :mod:`repro.stream.log` — the sequenced, append-only event log
  (:class:`EventLog`), replayed from a telemetry snapshot or fed live
  through :class:`StreamingCollector`;
* :mod:`repro.stream.watermark` — :class:`WatermarkTracker`, closing
  job windows only once the transfer watermark passes their endtime;
* :mod:`repro.stream.incremental` — :class:`IncrementalMatcher` /
  :class:`StreamProcessor`, per-strategy incremental state over the
  columnar kernels, emitting a :class:`MatchDelta` per micro-batch;
* :mod:`repro.stream.folds` — online summary/queuing/threshold
  accumulators over deltas;
* :mod:`repro.stream.metrics` — the :class:`StreamMetrics` snapshot.

The accumulated final state is bit-identical to the batch pipeline's
:class:`~repro.core.matching.base.MatchingReport` for Exact/RM1/RM2
(property-tested in ``tests/test_stream.py``; see DESIGN.md §9).
"""

from repro.stream.folds import (
    FoldSet,
    LinkAwarenessFold,
    QueuingFold,
    SiteAwarenessFold,
    SummaryFold,
    ThresholdFold,
)
from repro.stream.incremental import (
    Finalized,
    IncrementalMatcher,
    MatchDelta,
    StreamProcessor,
    replay_window,
)
from repro.stream.log import EventKind, EventLog, StreamEvent, StreamingCollector
from repro.stream.metrics import StreamMetrics
from repro.stream.watermark import WatermarkTracker

__all__ = [
    "EventKind",
    "EventLog",
    "Finalized",
    "FoldSet",
    "IncrementalMatcher",
    "LinkAwarenessFold",
    "MatchDelta",
    "SiteAwarenessFold",
    "QueuingFold",
    "StreamEvent",
    "StreamMetrics",
    "StreamProcessor",
    "StreamingCollector",
    "SummaryFold",
    "ThresholdFold",
    "WatermarkTracker",
    "replay_window",
]
