"""Incremental Algorithm-1 matching over an event stream.

:class:`IncrementalMatcher` maintains per-strategy match state while
events arrive in micro-batches, and :class:`StreamProcessor` drives it
together with the watermark tracker, the analysis folds, and the
metrics accumulator.  The contract is **bit-identical accumulation**:
after the stream is exhausted, :meth:`StreamProcessor.report` equals
the batch pipeline's :class:`MatchingReport` for the same window —
``==`` on the dataclasses, not approximate — for every matcher whose
filters the columnar kernels lower (Exact, RM1, RM2).

How parity survives arbitrary delivery orders and batch sizes:

* records are appended to an :class:`OpenSearchLike` through
  ``ingest_batch`` (incremental index freeze + pack extension), but all
  *matching* order is keyed on each event's source sequence number,
  never on arrival order;
* a job only closes once the transfer watermark passes its endtime, so
  its candidate set is complete at close time (any transfer observed
  later starts at or after the watermark and would fail the strict
  ``starttime < endtime`` filter);
* each close builds a delta :class:`ColumnarIndex` over exactly the
  closed jobs (sequence order), their file rows (per-job snapshot
  order), and the sequence-sorted union of their key-matching
  transfers, cut from the full-table packs — the same kernels as the
  batch engine, over the same per-job candidate enumeration order;
* final results re-assemble each method's accumulated matches in job
  sequence order, which is exactly the batch window's job order.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.engine import ColumnarIndex, supports_columnar
from repro.core.matching.base import BaseMatcher, JobMatch, MatchingReport, MatchResult
from repro.exec.executor import default_matchers
from repro.metastore.opensearch import OpenSearchLike
from repro.obs import get_obs
from repro.stream.folds import FoldSet
from repro.stream.log import EventKind, EventLog, StreamEvent
from repro.stream.metrics import StreamMetrics, _MetricsAccumulator
from repro.stream.watermark import WatermarkTracker
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord
from repro.window import in_window


@dataclass(frozen=True)
class Finalized:
    """One newly finalized job match, tagged with its source sequence."""

    seq: int
    match: JobMatch


@dataclass
class MatchDelta:
    """What one micro-batch changed."""

    batch_id: int
    watermark: float
    n_events: int
    n_jobs_closed: int
    #: method -> newly finalized matches, in job-sequence order
    matches: Dict[str, List[Finalized]]

    def pairs(self, method: str) -> List[Tuple[int, int]]:
        """(pandaid, row_id) pairs finalized by this delta."""
        out: List[Tuple[int, int]] = []
        seen = set()
        for f in self.matches.get(method, ()):
            for t in f.match.transfers:
                pair = (f.match.job.pandaid, t.row_id)
                if pair not in seen:
                    seen.add(pair)
                    out.append(pair)
        return out

    @property
    def sizes(self) -> Dict[str, int]:
        return {m: len(v) for m, v in self.matches.items()}


@dataclass
class _PendingJob:
    """A job whose window has not closed yet."""

    seq: int
    pos: int  # doc position in the stream store's jobs collection
    record: JobRecord
    #: (within-job order, doc position, record) per PanDA file row
    files: List[Tuple[int, int, FileRecord]] = field(default_factory=list)


class IncrementalMatcher:
    """Per-strategy incremental state for one analysis window."""

    def __init__(
        self,
        t0: float,
        t1: float,
        matchers: Optional[Sequence[BaseMatcher]] = None,
        known_sites: Optional[set] = None,
        source: Optional[OpenSearchLike] = None,
        user_jobs_only: bool = True,
    ) -> None:
        self.t0 = float(t0)
        self.t1 = float(t1)
        self.matchers = (
            list(matchers) if matchers is not None else default_matchers(known_sites)
        )
        for m in self.matchers:
            if not supports_columnar(m):
                raise TypeError(
                    f"matcher {m.name!r} cannot run on the columnar kernels; "
                    "the incremental engine has no row fallback"
                )
        self.source = source if source is not None else OpenSearchLike()
        self.user_jobs_only = user_jobs_only
        self._pending: Dict[int, _PendingJob] = {}
        self._heap: List[Tuple[float, int]] = []  # (endtime, job seq)
        #: (jeditaskid, lfn) -> [(transfer seq, doc position)], seq-sorted
        self._tkey: Dict[Tuple[int, str], List[Tuple[int, int]]] = {}
        #: method -> {job seq -> JobMatch}, the accumulated final state
        self._final: Dict[str, Dict[int, JobMatch]] = {m.name: {} for m in self.matchers}
        self.n_jobs = 0
        self.n_transfers = 0
        self.n_transfers_with_taskid = 0

    # -- ingest ----------------------------------------------------------------

    def ingest(self, events: Sequence[StreamEvent]) -> List[float]:
        """Append one micro-batch; returns accepted transfer event times.

        Window/label filtering mirrors the batch pre-selection: jobs
        must end inside [t0, t1) (and carry the user label when
        ``user_jobs_only``), transfers must start inside it.  Accepted
        records append to the store in one ``ingest_batch``; pending
        state records their doc positions for later delta cuts.
        """
        jobs: List[Tuple[int, JobRecord, Tuple[FileRecord, ...]]] = []
        transfers: List[Tuple[int, TransferRecord]] = []
        for e in events:
            if e.kind is EventKind.TRANSFER:
                t = e.record
                if not in_window(t.starttime, self.t0, self.t1):
                    continue
                transfers.append((e.seq, t))
            else:
                j = e.record
                if j.endtime is None or not in_window(j.endtime, self.t0, self.t1):
                    continue
                if self.user_jobs_only and j.prodsourcelabel != "user":
                    continue
                jobs.append((e.seq, j, e.files))

        job_base = len(self.source.jobs)
        file_base = len(self.source.files)
        transfer_base = len(self.source.transfers)
        self.source.ingest_batch(
            jobs=[j for _, j, _ in jobs],
            files=[f for _, _, fs in jobs for f in fs],
            transfers=[t for _, t in transfers],
        )

        fpos = file_base
        for i, (seq, j, fs) in enumerate(jobs):
            entries = []
            for k, f in enumerate(fs):
                entries.append((k, fpos, f))
                fpos += 1
            self._pending[seq] = _PendingJob(
                seq=seq, pos=job_base + i, record=j, files=entries
            )
            heapq.heappush(self._heap, (j.endtime, seq))
        self.n_jobs += len(jobs)

        times: List[float] = []
        for i, (seq, t) in enumerate(transfers):
            if t.jeditaskid:  # truthiness, like the row engine's join
                insort(
                    self._tkey.setdefault((t.jeditaskid, t.lfn), []),
                    (seq, transfer_base + i),
                )
            if t.jeditaskid > 0:  # the reported has_jeditaskid count
                self.n_transfers_with_taskid += 1
            self.n_transfers += 1
            times.append(t.starttime)
        return times

    # -- close ----------------------------------------------------------------

    def close_ready(self, watermark: float) -> Tuple[int, Dict[str, List[Finalized]]]:
        """Finalize every pending job with ``endtime <= watermark``.

        One delta :class:`ColumnarIndex` covers all jobs closing
        together: jobs in sequence order, their files in per-job
        snapshot order, and the seq-sorted union of transfers sharing a
        (jeditaskid, lfn) key with any of their files — a superset cut
        that preserves the batch engine's candidate enumeration order
        exactly, so the kernels produce the batch engine's matches.
        """
        ready: List[int] = []
        while self._heap and self._heap[0][0] <= watermark:
            _, seq = heapq.heappop(self._heap)
            ready.append(seq)
        if not ready:
            return 0, {m.name: [] for m in self.matchers}
        ready.sort()
        closing = [self._pending.pop(seq) for seq in ready]

        # A job with no (jeditaskid, lfn) key hit has no candidates under
        # any method — close it without building kernel input at all.
        # Candidate enumeration is per job (its own file keys), so
        # excluding candidate-less jobs cannot change anyone's matches.
        active: List[_PendingJob] = []
        cand: List[Tuple[int, int]] = []
        seen_tpos: set = set()
        for p in closing:
            taskid = p.record.jeditaskid
            found = False
            for _, _, frec in p.files:
                if frec.jeditaskid != taskid:
                    continue
                for pair in self._tkey.get((taskid, frec.lfn), ()):
                    found = True
                    if pair[1] not in seen_tpos:
                        seen_tpos.add(pair[1])
                        cand.append(pair)
            if found:
                active.append(p)
        if not active:
            return len(closing), {m.name: [] for m in self.matchers}

        job_rows = np.array([p.pos for p in active], dtype=np.int64)
        job_recs = [p.record for p in active]
        file_rows_list: List[int] = []
        file_recs: List[FileRecord] = []
        for p in active:
            for _, fpos, frec in p.files:
                file_rows_list.append(fpos)
                file_recs.append(frec)
        cand.sort()  # transfer sequence order == batch storage order
        file_rows = np.array(file_rows_list, dtype=np.int64)
        transfer_rows = np.array([pos for _, pos in cand], dtype=np.int64)
        transfer_recs = self.source.transfers.take(transfer_rows)

        columns = self.source.column_packs().gather(job_rows, file_rows, transfer_rows)
        index = ColumnarIndex(job_recs, file_recs, transfer_recs, columns=columns)

        seq_of = {id(p.record): p.seq for p in active}
        out: Dict[str, List[Finalized]] = {}
        for matcher in self.matchers:
            res = index.run(matcher, n_transfers_considered=0)
            finalized = [
                Finalized(seq=seq_of[id(jm.job)], match=jm) for jm in res.matches
            ]
            self._final[matcher.name].update(
                (f.seq, f.match) for f in finalized
            )
            out[matcher.name] = finalized
        return len(closing), out

    # -- accumulated results ----------------------------------------------------

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def results(self) -> Dict[str, MatchResult]:
        """Accumulated per-method results, in batch job order."""
        out: Dict[str, MatchResult] = {}
        for m in self.matchers:
            acc = self._final[m.name]
            out[m.name] = MatchResult(
                method=m.name,
                matches=[acc[seq] for seq in sorted(acc)],
                n_jobs_considered=self.n_jobs,
                n_transfers_considered=self.n_transfers_with_taskid,
            )
        return out

    def report(self) -> MatchingReport:
        """The accumulated state as a batch-shaped :class:`MatchingReport`."""
        return MatchingReport(
            window=(self.t0, self.t1),
            n_jobs=self.n_jobs,
            n_transfers=self.n_transfers,
            n_transfers_with_taskid=self.n_transfers_with_taskid,
            results=self.results(),
        )


class StreamProcessor:
    """Micro-batch driver: ingest → watermark → close → fold → metrics."""

    def __init__(
        self,
        t0: float,
        t1: float,
        known_sites: Optional[set] = None,
        matchers: Optional[Sequence[BaseMatcher]] = None,
        lateness: float = 0.0,
        user_jobs_only: bool = True,
        folds: Optional[FoldSet] = None,
        source: Optional[OpenSearchLike] = None,
    ) -> None:
        self.matcher = IncrementalMatcher(
            t0,
            t1,
            matchers=matchers,
            known_sites=known_sites,
            source=source,
            user_jobs_only=user_jobs_only,
        )
        self.tracker = WatermarkTracker(lateness)
        self.folds = folds if folds is not None else FoldSet.default()
        self._acc = _MetricsAccumulator()
        self._acc.total_matched = {m.name: 0 for m in self.matcher.matchers}
        self._batch_id = 0
        self._finished = False

    @property
    def source(self) -> OpenSearchLike:
        return self.matcher.source

    def process(self, events: Sequence[StreamEvent]) -> MatchDelta:
        """One micro-batch through the whole dataplane."""
        if self._finished:
            raise RuntimeError("stream already finished")
        events = list(events)
        obs = get_obs()
        with obs.tracer.span("stream.batch", cat="stream") as sp:
            t_start = perf_counter()
            times = self.matcher.ingest(events)
            late = sum(1 for t in times if self.tracker.is_late(t))
            for t in times:
                self.tracker.observe(t)
            t_ingested = perf_counter()
            n_closed, finalized = self.matcher.close_ready(self.tracker.watermark)
            t_matched = perf_counter()
            delta = self._emit(finalized, n_closed, len(events))
            self.folds.update(delta)
            t_folded = perf_counter()
            sp.set("batch_id", delta.batch_id)
            sp.set("n_events", len(events))
            sp.set("n_closed", n_closed)
            sp.set("n_late", late)

        acc = self._acc
        acc.n_batches += 1
        acc.n_events += len(events)
        acc.n_transfer_events += sum(
            1 for e in events if e.kind is EventKind.TRANSFER
        )
        acc.n_job_events += sum(1 for e in events if e.kind is EventKind.JOB)
        acc.n_late_events += late
        acc.ingest_s += t_ingested - t_start
        acc.match_s += t_matched - t_ingested
        acc.fold_s += t_folded - t_matched
        self._observe_metrics(obs, late, len(events))
        return delta

    def finish(self) -> MatchDelta:
        """End of stream: flush every still-pending job window."""
        if self._finished:
            raise RuntimeError("stream already finished")
        self._finished = True
        obs = get_obs()
        with obs.tracer.span("stream.finish", cat="stream") as sp:
            t_start = perf_counter()
            self.tracker.close()
            n_closed, finalized = self.matcher.close_ready(self.tracker.watermark)
            t_matched = perf_counter()
            delta = self._emit(finalized, n_closed, 0)
            self.folds.update(delta)
            t_folded = perf_counter()
            sp.set("n_closed", n_closed)
        self._acc.n_batches += 1
        self._acc.match_s += t_matched - t_start
        self._acc.fold_s += t_folded - t_matched
        self._observe_metrics(obs, 0, 0)
        return delta

    def _observe_metrics(self, obs, late: int, n_events: int) -> None:
        """Fold the stream's health counters into the obs registry.

        The watermark-lag gauge skips the pre-event state (the tracker
        reports a ``-inf`` watermark until the first transfer arrives;
        see :meth:`WatermarkTracker.lag`).
        """
        if not obs.enabled:
            return
        obs.metrics.counter("stream.events").inc(n_events)
        obs.metrics.counter("stream.late_events").inc(late)
        if self.tracker.has_observed:
            obs.metrics.gauge("stream.watermark_lag").set(self.tracker.lag)
        obs.metrics.gauge("stream.pending_jobs").set(self.matcher.n_pending)

    def _emit(
        self, finalized: Dict[str, List[Finalized]], n_closed: int, n_events: int
    ) -> MatchDelta:
        delta = MatchDelta(
            batch_id=self._batch_id,
            watermark=self.tracker.watermark,
            n_events=n_events,
            n_jobs_closed=n_closed,
            matches=finalized,
        )
        self._batch_id += 1
        acc = self._acc
        acc.n_closed_jobs += n_closed
        acc.last_delta = delta.sizes
        for m, v in finalized.items():
            acc.total_matched[m] = acc.total_matched.get(m, 0) + len(v)
        return delta

    def run(self, batches) -> "StreamProcessor":
        """Drain an iterable of micro-batches, then flush."""
        for batch in batches:
            self.process(batch)
        self.finish()
        return self

    # -- outputs ----------------------------------------------------------------

    def report(self) -> MatchingReport:
        return self.matcher.report()

    def results(self) -> Dict[str, MatchResult]:
        return self.matcher.results()

    def headline(self):
        """The summary fold's current §5.1 headline snapshot."""
        if "summary" not in self.folds:
            raise KeyError("fold set has no 'summary' fold")
        m = self.matcher
        return self.folds["summary"].snapshot(
            n_jobs=m.n_jobs,
            n_transfers=m.n_transfers,
            n_transfers_with_taskid=m.n_transfers_with_taskid,
        )

    def metrics(self) -> StreamMetrics:
        return self._acc.snapshot(
            n_pending_jobs=self.matcher.n_pending,
            watermark=self.tracker.watermark,
            max_event_time=self.tracker.max_event_time,
            lag=self.tracker.lag,
        )


def replay_window(
    telemetry,
    t0: float,
    t1: float,
    known_sites: Optional[set] = None,
    matchers: Optional[Sequence[BaseMatcher]] = None,
    batch_seconds: Optional[float] = None,
    batch_events: Optional[int] = None,
    lateness: float = 0.0,
    folds: Optional[FoldSet] = None,
) -> StreamProcessor:
    """Replay a telemetry snapshot through the streaming dataplane.

    Deterministic micro-batch replay of one analysis window: builds the
    event-time-ordered log, batches it (six-hour spans by default),
    and drains it through a fresh :class:`StreamProcessor`.  The
    returned processor's :meth:`~StreamProcessor.report` is
    bit-identical to the batch pipeline over the same window;
    ``matchers`` (default Exact/RM1/RM2) must all lower to the columnar
    kernels — RM3's per-close delta scoring qualifies.
    """
    if batch_seconds is None and batch_events is None:
        batch_seconds = 6 * 3600.0
    log = EventLog.from_telemetry(telemetry, t0, t1)
    processor = StreamProcessor(
        t0, t1, known_sites=known_sites, matchers=matchers,
        lateness=lateness, folds=folds,
    )
    return processor.run(
        log.micro_batches(batch_seconds=batch_seconds, batch_events=batch_events)
    )
