"""Per-stage streaming metrics.

The processor keeps cheap running counters and timers; ``snapshot()``
freezes them into an immutable :class:`StreamMetrics` — the monitoring
surface a live deployment would scrape (events/sec, watermark lag,
pending-set size, delta sizes, per-stage seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class StreamMetrics:
    """One frozen view of a stream processor's health."""

    n_batches: int
    n_events: int
    n_job_events: int
    n_transfer_events: int
    #: transfers that violated the lateness bound at arrival
    n_late_events: int
    n_pending_jobs: int
    n_closed_jobs: int
    watermark: float
    max_event_time: float
    watermark_lag: float
    #: matches finalized in the most recent delta, per method
    last_delta: Dict[str, int]
    #: matches finalized so far, per method
    total_matched: Dict[str, int]
    ingest_s: float
    match_s: float
    fold_s: float

    @property
    def elapsed_s(self) -> float:
        return self.ingest_s + self.match_s + self.fold_s

    @property
    def events_per_sec(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.n_events / self.elapsed_s


@dataclass
class _MetricsAccumulator:
    """Mutable counters behind :class:`StreamMetrics` snapshots."""

    n_batches: int = 0
    n_events: int = 0
    n_job_events: int = 0
    n_transfer_events: int = 0
    n_late_events: int = 0
    n_closed_jobs: int = 0
    last_delta: Dict[str, int] = field(default_factory=dict)
    total_matched: Dict[str, int] = field(default_factory=dict)
    ingest_s: float = 0.0
    match_s: float = 0.0
    fold_s: float = 0.0

    def snapshot(
        self, n_pending_jobs: int, watermark: float, max_event_time: float, lag: float
    ) -> StreamMetrics:
        return StreamMetrics(
            n_batches=self.n_batches,
            n_events=self.n_events,
            n_job_events=self.n_job_events,
            n_transfer_events=self.n_transfer_events,
            n_late_events=self.n_late_events,
            n_pending_jobs=n_pending_jobs,
            n_closed_jobs=self.n_closed_jobs,
            watermark=watermark,
            max_event_time=max_event_time,
            watermark_lag=lag,
            last_delta=dict(self.last_delta),
            total_matched=dict(self.total_matched),
            ingest_s=self.ingest_s,
            match_s=self.match_s,
            fold_s=self.fold_s,
        )
