"""Identifier generators for the simulated PanDA/Rucio ecosystem.

Production PanDA job identifiers (``pandaid``) and JEDI task identifiers
(``jeditaskid``) are monotonically increasing integers drawn from global
sequences; Rucio scopes and logical file names (LFNs) follow ATLAS naming
conventions.  This module provides deterministic, restartable sequence
generators so that a seeded simulation always produces the same
identifier stream.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

#: First pandaid issued; chosen to resemble contemporary ATLAS ids
#: (the paper's case studies use ids like 6583770648).
PANDAID_BASE = 6_580_000_000
#: First jeditaskid issued.
JEDITASKID_BASE = 43_000_000
#: First Rucio replication-rule id.
RULEID_BASE = 900_000_000
#: First transfer-request id.
TRANSFERID_BASE = 2_000_000_000


@dataclass
class Sequence:
    """A restartable monotone integer sequence.

    >>> s = Sequence(10)
    >>> s.next(), s.next()
    (10, 11)
    """

    start: int
    _it: Iterator[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._it = itertools.count(self.start)

    def next(self) -> int:
        return next(self._it)

    def reset(self) -> None:
        self._it = itertools.count(self.start)


class IdFactory:
    """Bundle of the identifier sequences used across one simulation run.

    Each simulation owns one factory so that runs never share sequence
    state; two runs with the same inputs issue identical ids.
    """

    def __init__(self) -> None:
        self.pandaid = Sequence(PANDAID_BASE)
        self.jeditaskid = Sequence(JEDITASKID_BASE)
        self.ruleid = Sequence(RULEID_BASE)
        self.transferid = Sequence(TRANSFERID_BASE)
        self._lfn_counter = Sequence(1)

    def next_pandaid(self) -> int:
        return self.pandaid.next()

    def next_jeditaskid(self) -> int:
        return self.jeditaskid.next()

    def next_ruleid(self) -> int:
        return self.ruleid.next()

    def next_transferid(self) -> int:
        return self.transferid.next()

    def make_lfn(self, scope: str, datatype: str = "DAOD") -> str:
        """Build an ATLAS-style logical file name.

        Example: ``user.alice:user.alice.43000012.DAOD._000001.root``
        for a user scope, or ``mc23_13p6TeV:DAOD._000001.root``-style
        names for production scopes.
        """
        n = self._lfn_counter.next()
        return f"{scope}.{datatype}._{n:06d}.root"

    def make_dataset_name(self, scope: str, jeditaskid: int, kind: str = "DAOD") -> str:
        """Build an ATLAS-style dataset name tied to a JEDI task."""
        return f"{scope}.{jeditaskid}.{kind}"
