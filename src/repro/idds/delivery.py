"""Fine-grained delivery: release jobs as their inputs land.

One :class:`TaskDelivery` per production task tracks which per-job
input chunks are already fully replicated at the processing site; a
periodic poll releases exactly those jobs.  Compared with the fixed
staging-lead strategy (submit everything after N hours), this removes
both failure modes the iDDS paper targets:

* **too-early submission** — jobs sit in data-wait at the site while
  tape recalls trickle in (the "long tail");
* **too-late submission** — data is ready but compute stays idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.rucio.did import DID, FileDid
from repro.rucio.replica import ReplicaRegistry
from repro.sim.engine import Engine


@dataclass
class DeliveryPlan:
    """What one task wants delivered where."""

    jeditaskid: int
    site: str
    #: per-job input chunks, in submission order
    chunks: List[List[FileDid]]
    #: called with (chunk_index, chunk) when a chunk becomes available
    on_chunk_ready: Callable[[int, List[FileDid]], None]


@dataclass
class TaskDelivery:
    """Progress state of one plan."""

    plan: DeliveryPlan
    released: List[bool] = field(default_factory=list)
    created_at: float = 0.0
    completed_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.released:
            self.released = [False] * len(self.plan.chunks)

    @property
    def n_released(self) -> int:
        return sum(self.released)

    @property
    def done(self) -> bool:
        return all(self.released)


class DeliveryService:
    """Polls replica state and releases ready chunks (iDDS core loop)."""

    def __init__(
        self,
        engine: Engine,
        replicas: ReplicaRegistry,
        poll_interval: float = 300.0,
        give_up_after: float = 72 * 3600.0,
    ) -> None:
        self.engine = engine
        self.replicas = replicas
        self.poll_interval = float(poll_interval)
        self.give_up_after = float(give_up_after)
        self._active: Dict[int, TaskDelivery] = {}
        self.n_released_total = 0
        self.n_abandoned = 0

    def submit(self, plan: DeliveryPlan) -> TaskDelivery:
        """Register a plan; polling begins immediately."""
        if plan.jeditaskid in self._active:
            raise ValueError(f"task {plan.jeditaskid} already has a delivery plan")
        if not plan.chunks:
            raise ValueError("delivery plan has no chunks")
        delivery = TaskDelivery(plan=plan, created_at=self.engine.now)
        self._active[plan.jeditaskid] = delivery
        self._poll(delivery)
        return delivery

    def active_tasks(self) -> List[int]:
        return list(self._active)

    # -- internals ---------------------------------------------------------------

    def _poll(self, delivery: TaskDelivery) -> None:
        plan = delivery.plan
        if plan.jeditaskid not in self._active:
            return
        for idx, chunk in enumerate(plan.chunks):
            if delivery.released[idx]:
                continue
            dids: List[DID] = [f.did for f in chunk]
            if not self.replicas.missing_at_site(dids, plan.site):
                delivery.released[idx] = True
                self.n_released_total += 1
                plan.on_chunk_ready(idx, chunk)
        if delivery.done:
            delivery.completed_at = self.engine.now
            del self._active[plan.jeditaskid]
            return
        if self.engine.now - delivery.created_at >= self.give_up_after:
            # Release the stragglers anyway (they will data-wait at the
            # site) so the task cannot hang forever on a lost recall.
            for idx, chunk in enumerate(plan.chunks):
                if not delivery.released[idx]:
                    delivery.released[idx] = True
                    self.n_abandoned += 1
                    plan.on_chunk_ready(idx, chunk)
            delivery.completed_at = self.engine.now
            del self._active[plan.jeditaskid]
            return
        self.engine.schedule_in(
            self.poll_interval, lambda: self._poll(delivery),
            label=f"idds:{plan.jeditaskid}",
        )
