"""iDDS-like intelligent data delivery.

The paper's related work (§6) describes the intelligent Data Delivery
Service: it "decouples pre-processing and delivery from execution,
orchestrating PanDA and Rucio (e.g., the Data Carousel) to ensure
fine-grained, pre-staged data availability and to reduce 'long tails'
in ATLAS production".  This package implements that orchestration
style: instead of submitting every job of a task after a fixed staging
lead, the delivery service watches per-file replica availability and
releases each job the moment its input chunk has landed.
"""

from repro.idds.delivery import DeliveryService, DeliveryPlan, TaskDelivery

__all__ = ["DeliveryService", "DeliveryPlan", "TaskDelivery"]
