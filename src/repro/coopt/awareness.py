"""Shared performance awareness.

The dynamic system information §3.1 says is missing: "The critical
challenge … is to acquire sufficient dynamic system information to
guide both data placement and job allocation decisions in real time."
This class is that information bus: both PanDA (brokerage) and Rucio
(source selection, policies) read the same live estimates.

All estimators are exponentially weighted moving averages so the state
is O(sites + links) and updates are O(1) per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.grid.topology import GridTopology
from repro.panda.job import Job
from repro.rucio.transfer import TransferEvent


@dataclass
class EwmaEstimate:
    """One exponentially weighted moving average."""

    alpha: float = 0.2
    value: Optional[float] = None
    n_samples: int = 0

    def update(self, x: float) -> None:
        self.value = x if self.value is None else (1 - self.alpha) * self.value + self.alpha * x
        self.n_samples += 1

    def get(self, default: float) -> float:
        return self.value if self.value is not None else default


class PerformanceAwareness:
    """Live cross-system state: queue pressure, throughput, failures."""

    def __init__(self, topology: GridTopology, alpha: float = 0.2) -> None:
        self.topology = topology
        self.alpha = alpha
        #: observed per-transfer throughput per directed site pair (bytes/s)
        self._link_throughput: Dict[Tuple[str, str], EwmaEstimate] = {}
        #: observed queuing time per site (seconds)
        self._site_queue: Dict[str, EwmaEstimate] = {}
        #: observed failure indicator per site (0/1 EWMA = rate)
        self._site_failure: Dict[str, EwmaEstimate] = {}
        #: ready-but-not-running backlog per site, maintained by callers
        self._site_backlog: Dict[str, int] = {}

    # -- event sinks -------------------------------------------------------------

    def on_transfer(self, event: TransferEvent) -> None:
        if not event.success or event.duration <= 0:
            return
        key = (event.source_site, event.destination_site)
        est = self._link_throughput.setdefault(key, EwmaEstimate(self.alpha))
        est.update(event.throughput)

    def on_job_done(self, job: Job) -> None:
        site = job.computing_site
        if not site:
            return
        q = job.queuing_time
        if q is not None:
            self._site_queue.setdefault(site, EwmaEstimate(self.alpha)).update(q)
        self._site_failure.setdefault(site, EwmaEstimate(self.alpha)).update(
            0.0 if job.succeeded else 1.0
        )

    def note_backlog(self, site: str, delta: int) -> None:
        self._site_backlog[site] = max(0, self._site_backlog.get(site, 0) + delta)

    # -- estimates -----------------------------------------------------------------

    def link_throughput(self, src: str, dst: str) -> float:
        """Expected per-transfer throughput, with a topology-based prior."""
        est = self._link_throughput.get((src, dst))
        network = self.topology.network
        assert network is not None
        prior = network.profile(src, dst).nominal_bandwidth * 0.5
        return est.get(prior) if est else prior

    def expected_queue_wait(self, site_name: str) -> float:
        """Expected queue wait from occupancy, backlog, and history."""
        site = self.topology.site(site_name)
        est = self._site_queue.get(site_name)
        historical = est.get(120.0) if est else 120.0
        # Pressure term: backlog plus occupancy relative to capacity.
        backlog = self._site_backlog.get(site_name, 0)
        pressure = (site.running_jobs + backlog) / max(1, site.compute_slots)
        return historical * (0.5 + pressure)

    def failure_rate(self, site_name: str) -> float:
        est = self._site_failure.get(site_name)
        return est.get(0.1) if est else 0.1

    def estimate_staging_seconds(self, src: str, dst: str, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / max(64_000.0, self.link_throughput(src, dst))
