"""Shared performance awareness.

The dynamic system information §3.1 says is missing: "The critical
challenge … is to acquire sufficient dynamic system information to
guide both data placement and job allocation decisions in real time."
This class is that information bus: both PanDA (brokerage) and Rucio
(source selection, policies) read the same live estimates.

State is structure-of-arrays indexed by topology site order (one float
per site, one ``n × n`` matrix per link quantity), so the broker's
candidate scoring is a handful of vectorized kernel calls
(:mod:`repro.coopt.state`) instead of per-site dict probes.  Two feeds
update it:

* **ground-truth sinks** — :meth:`on_transfer` / :meth:`on_job_done`
  EWMA updates, O(1) per event (the original static-sketch wiring,
  still used by tests and the legacy ablation path);
* **fold snapshots** — :meth:`absorb` installs a generation-keyed
  :class:`~repro.coopt.state.AwarenessSnapshot` cut from the streaming
  matcher's awareness folds as the historical layer, which is how the
  closed control loop (:mod:`repro.coopt.loop`) learns from *matched
  telemetry* rather than from ground truth it would not have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.coopt.state import (
    DEFAULT_FAILURE_RATE,
    MIN_STAGING_THROUGHPUT,
    AwarenessSnapshot,
    queue_wait_kernel,
)
from repro.grid.topology import GridTopology
from repro.panda.job import Job
from repro.rucio.transfer import TransferEvent


@dataclass
class EwmaEstimate:
    """One exponentially weighted moving average."""

    alpha: float = 0.2
    value: Optional[float] = None
    n_samples: int = 0

    def update(self, x: float) -> None:
        self.value = x if self.value is None else (1 - self.alpha) * self.value + self.alpha * x
        self.n_samples += 1

    def get(self, default: float) -> float:
        return self.value if self.value is not None else default


class PerformanceAwareness:
    """Live cross-system state: queue pressure, throughput, failures."""

    def __init__(self, topology: GridTopology, alpha: float = 0.2) -> None:
        self.topology = topology
        self.alpha = float(alpha)
        self.site_names = tuple(topology.site_names())
        self._index = {name: i for i, name in enumerate(self.site_names)}
        n = len(self.site_names)
        #: observed queuing time per site (EWMA value / sample count)
        self._queue_value = np.full(n, np.nan)
        self._queue_n = np.zeros(n, dtype=np.int64)
        #: observed failure indicator per site (0/1 EWMA = rate)
        self._fail_value = np.full(n, np.nan)
        self._fail_n = np.zeros(n, dtype=np.int64)
        #: ready-but-not-running backlog per site, maintained by callers
        self._backlog = np.zeros(n, dtype=np.int64)
        #: observed per-transfer throughput per directed site pair (bytes/s)
        self._link_value = np.full((n, n), np.nan)
        self._link_n = np.zeros((n, n), dtype=np.int64)
        #: lazily filled topology prior: nominal bandwidth × 0.5
        self._link_prior = np.full((n, n), np.nan)
        #: version of the last absorbed fold snapshot (0 = none yet)
        self.generation = 0
        #: simulation time the last snapshot was cut at
        self.as_of = 0.0

    # -- index helpers -----------------------------------------------------------

    def site_index(self, name: str) -> Optional[int]:
        return self._index.get(name)

    def _ewma(self, value: np.ndarray, count: np.ndarray, idx, x: float) -> None:
        if count[idx] == 0:
            value[idx] = x
        else:
            value[idx] = (1 - self.alpha) * value[idx] + self.alpha * x
        count[idx] += 1

    # -- event sinks -------------------------------------------------------------

    def on_transfer(self, event: TransferEvent) -> None:
        if not event.success or event.duration <= 0:
            return
        i = self._index.get(event.source_site)
        j = self._index.get(event.destination_site)
        if i is None or j is None:
            return
        self._ewma(self._link_value, self._link_n, (i, j), event.throughput)

    def on_job_done(self, job: Job) -> None:
        i = self._index.get(job.computing_site) if job.computing_site else None
        if i is None:
            return
        q = job.queuing_time
        if q is not None:
            self._ewma(self._queue_value, self._queue_n, i, q)
        self._ewma(self._fail_value, self._fail_n, i, 0.0 if job.succeeded else 1.0)

    def note_backlog(self, site: str, delta: int) -> None:
        i = self._index.get(site)
        if i is None:
            return
        self._backlog[i] = max(0, int(self._backlog[i]) + int(delta))

    # -- fold snapshots ----------------------------------------------------------

    def absorb(self, snapshot: AwarenessSnapshot) -> None:
        """Install a fold snapshot as the historical layer.

        Observed cells (count > 0) replace the per-site/per-link history
        wholesale — the snapshot *is* the accumulated matched evidence,
        so EWMA-blending it with itself each epoch would double-count.
        Unobserved cells keep whatever the live sinks have learned.
        Backlog is untouched: it is live PanDA queue state, not
        telemetry.
        """
        if snapshot.site_names != self.site_names:
            raise ValueError("snapshot site order does not match topology")
        qmask = snapshot.n_jobs > 0
        wmask = qmask & ~np.isnan(snapshot.queue_wait)
        self._queue_value[wmask] = snapshot.queue_wait[wmask]
        self._queue_n[wmask] = snapshot.n_jobs[wmask]
        self._fail_value[qmask] = snapshot.failure_rate[qmask]
        self._fail_n[qmask] = snapshot.n_jobs[qmask]
        lmask = snapshot.link_count > 0
        self._link_value[lmask] = snapshot.link_throughput[lmask]
        self._link_n[lmask] = snapshot.link_count[lmask]
        self.generation = snapshot.generation
        self.as_of = snapshot.as_of

    # -- vectorized accessors ------------------------------------------------------

    def queue_wait_vector(self, idx: np.ndarray) -> np.ndarray:
        """Expected queue wait for the given site indices."""
        running = np.array(
            [self.topology.site(self.site_names[i]).running_jobs for i in idx],
            dtype=np.float64,
        )
        slots = np.array(
            [self.topology.site(self.site_names[i]).compute_slots for i in idx],
            dtype=np.float64,
        )
        return queue_wait_kernel(
            self._queue_value[idx],
            self._queue_n[idx],
            self._backlog[idx].astype(np.float64),
            running,
            slots,
        )

    def failure_vector(self, idx: np.ndarray) -> np.ndarray:
        return np.where(
            self._fail_n[idx] > 0, self._fail_value[idx], DEFAULT_FAILURE_RATE
        )

    def link_matrix(self, src_idx: Sequence[int], dst_idx: Sequence[int]) -> np.ndarray:
        """Throughput estimates for every (source, destination) pair.

        Returns a ``(len(src_idx), len(dst_idx))`` array; cells without
        observed history fall back to the topology prior (nominal
        bandwidth × 0.5), filled lazily and cached.
        """
        src = np.asarray(src_idx, dtype=np.int64)
        dst = np.asarray(dst_idx, dtype=np.int64)
        network = self.topology.network
        assert network is not None
        for i in src:
            for j in dst:
                if np.isnan(self._link_prior[i, j]):
                    self._link_prior[i, j] = (
                        network.profile(
                            self.site_names[i], self.site_names[j]
                        ).nominal_bandwidth
                        * 0.5
                    )
        observed = self._link_value[np.ix_(src, dst)]
        counts = self._link_n[np.ix_(src, dst)]
        return np.where(counts > 0, observed, self._link_prior[np.ix_(src, dst)])

    # -- scalar estimates (original static-sketch API) ----------------------------

    def link_throughput(self, src: str, dst: str) -> float:
        """Expected per-transfer throughput, with a topology-based prior."""
        i, j = self._index[src], self._index[dst]
        return float(self.link_matrix([i], [j])[0, 0])

    def expected_queue_wait(self, site_name: str) -> float:
        """Expected queue wait from occupancy, backlog, and history."""
        i = self._index[site_name]
        return float(self.queue_wait_vector(np.array([i], dtype=np.int64))[0])

    def failure_rate(self, site_name: str) -> float:
        i = self._index[site_name]
        return float(self.failure_vector(np.array([i], dtype=np.int64))[0])

    def estimate_staging_seconds(self, src: str, dst: str, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / max(MIN_STAGING_THROUGHPUT, self.link_throughput(src, dst))
