"""Co-optimized brokerage.

§5.3's finding: "Assigning jobs to sites with local data can lead to
heavy site-level queuing delays, whereas assigning them to remote
sites, despite requiring additional transfers, may result in shorter
overall queuing times.  This is because actual transfer performance
depends not on peak throughput but on effective usage under current
conditions."

This broker acts on that: for each candidate site it estimates

    completion ≈ queue_wait(site)
               + staging_time(missing bytes at observed throughput)
               + failure_penalty(site)

and picks the minimum, considering data-holding sites *and* the least
loaded alternatives.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.coopt.awareness import PerformanceAwareness
from repro.grid.topology import GridTopology
from repro.panda.brokerage import BrokerDecision
from repro.panda.job import DataAccessMode, Job, JobKind
from repro.rucio.client import RucioClient


class CoOptimizedBroker:
    """Completion-time-minimising brokerage over shared awareness."""

    def __init__(
        self,
        topology: GridTopology,
        rucio: RucioClient,
        awareness: PerformanceAwareness,
        rng: np.random.Generator,
        failure_penalty_seconds: float = 1800.0,
        n_alternatives: int = 5,
    ) -> None:
        self.topology = topology
        self.rucio = rucio
        self.awareness = awareness
        self.rng = rng
        self.failure_penalty_seconds = float(failure_penalty_seconds)
        self.n_alternatives = int(n_alternatives)

    # -- scoring -------------------------------------------------------------

    def estimated_completion(self, job: Job, site_name: str) -> float:
        """Expected seconds until the job could finish staging+queueing
        at the site (payload time is site-independent here)."""
        wait = self.awareness.expected_queue_wait(site_name)
        staging = 0.0
        if job.input_dataset is not None and job.input_file_dids:
            files = [self.rucio.catalog.file(fd) for fd in job.input_file_dids]
            missing = [
                f for f in files
                if not self.rucio.replicas.has_available_at_site(f.did, site_name)
            ]
            for f in missing:
                sources = self.rucio.replicas.sites_with_file(f.did)
                if sources:
                    best = min(
                        self.awareness.estimate_staging_seconds(s, site_name, f.size)
                        for s in sources
                    )
                    staging += best
                else:
                    staging += 3600.0  # nothing available yet: strong penalty
        risk = self.awareness.failure_rate(site_name) * self.failure_penalty_seconds
        return wait + staging + risk

    def _candidates(self, job: Job) -> List[str]:
        """Data-holding sites plus the least-pressured alternatives.

        Jobs that *require* local data — production direct-local reads,
        which cannot pull inputs themselves — are confined to sites
        already holding the dataset; transfer-capable jobs may also
        consider unloaded alternatives (staging cost is priced into the
        completion estimate).
        """
        out: List[str] = []
        if job.input_dataset is not None:
            locations = self.rucio.dataset_locations(job.input_dataset)
            out.extend(
                s for s in sorted(locations)
                if s in self.topology.sites and not self.topology.site(s).is_unknown
            )
        must_be_local = (
            job.kind is JobKind.PRODUCTION
            and job.access_mode is DataAccessMode.DIRECT_LOCAL
        )
        if must_be_local and out:
            return out
        compute = self.topology.compute_sites()
        by_pressure = sorted(
            compute, key=lambda s: self.awareness.expected_queue_wait(s.name)
        )
        for s in by_pressure[: self.n_alternatives]:
            if s.name not in out:
                out.append(s.name)
        return out

    def assign(self, job: Job, now: float) -> BrokerDecision:
        candidates = self._candidates(job)
        if not candidates:
            compute = self.topology.compute_sites()
            pick = compute[int(self.rng.integers(len(compute)))].name
            return BrokerDecision(pick, False, 0.0, "coopt:fallback")
        scored = [(self.estimated_completion(job, s), s) for s in candidates]
        scored.sort()
        best_site = scored[0][1]
        self.awareness.note_backlog(best_site, +1)
        data_local = (
            job.input_dataset is not None
            and best_site in self.rucio.dataset_locations(job.input_dataset)
        )
        return BrokerDecision(
            site_name=best_site,
            data_local=bool(data_local),
            locality_fraction=1.0 if data_local else 0.0,
            reason="coopt:min-completion",
        )
