"""Co-optimized brokerage.

§5.3's finding: "Assigning jobs to sites with local data can lead to
heavy site-level queuing delays, whereas assigning them to remote
sites, despite requiring additional transfers, may result in shorter
overall queuing times.  This is because actual transfer performance
depends not on peak throughput but on effective usage under current
conditions."

This broker acts on that: for each candidate site it estimates

    completion ≈ queue_wait(site)
               + staging_time(missing bytes at observed throughput)
               + failure_penalty(site)

and picks the minimum, considering data-holding sites *and* the least
loaded alternatives.  Scoring runs on the awareness SoA arrays — one
:func:`~repro.coopt.state.queue_wait_kernel` call over all candidates,
one :meth:`~repro.coopt.awareness.PerformanceAwareness.link_matrix`
gather per missing file — instead of per-site scalar probes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.coopt.awareness import PerformanceAwareness
from repro.coopt.state import completion_kernel, staging_kernel
from repro.grid.topology import GridTopology
from repro.panda.brokerage import BrokerDecision
from repro.panda.job import DataAccessMode, Job, JobKind
from repro.rucio.client import RucioClient


class CoOptimizedBroker:
    """Completion-time-minimising brokerage over shared awareness."""

    def __init__(
        self,
        topology: GridTopology,
        rucio: RucioClient,
        awareness: PerformanceAwareness,
        rng: np.random.Generator,
        failure_penalty_seconds: float = 1800.0,
        n_alternatives: int = 5,
    ) -> None:
        self.topology = topology
        self.rucio = rucio
        self.awareness = awareness
        self.rng = rng
        self.failure_penalty_seconds = float(failure_penalty_seconds)
        self.n_alternatives = int(n_alternatives)

    # -- scoring -------------------------------------------------------------

    def score_sites(self, job: Job, site_names: List[str]) -> np.ndarray:
        """Vectorized completion scores (seconds, lower = better)."""
        aw = self.awareness
        idx = np.array([aw.site_index(s) for s in site_names], dtype=np.int64)
        wait = aw.queue_wait_vector(idx)
        staging = np.zeros(len(site_names), dtype=np.float64)
        if job.input_dataset is not None and job.input_file_dids:
            has_file = np.array(
                [
                    [
                        self.rucio.replicas.has_available_at_site(fd, s)
                        for s in site_names
                    ]
                    for fd in job.input_file_dids
                ],
                dtype=bool,
            )
            for fi, fd in enumerate(job.input_file_dids):
                if bool(has_file[fi].all()):
                    continue
                f = self.rucio.catalog.file(fd)
                sources = sorted(self.rucio.replicas.sites_with_file(fd))
                src_idx = [
                    aw.site_index(s) for s in sources if aw.site_index(s) is not None
                ]
                if src_idx:
                    # (n_sources, n_candidates) staging estimate; best
                    # source per candidate, zero where already local.
                    thpt = aw.link_matrix(src_idx, idx)
                    per_cand = staging_kernel(float(f.size), thpt).min(axis=0)
                else:
                    per_cand = np.full(len(site_names), 3600.0)  # nothing placed yet
                staging += np.where(has_file[fi], 0.0, per_cand)
        return completion_kernel(
            wait,
            staging,
            aw._fail_value[idx],
            aw._fail_n[idx],
            self.failure_penalty_seconds,
        )

    def estimated_completion(self, job: Job, site_name: str) -> float:
        """Expected seconds until the job could finish staging+queueing
        at the site (payload time is site-independent here)."""
        return float(self.score_sites(job, [site_name])[0])

    def _candidates(self, job: Job) -> List[str]:
        """Data-holding sites plus the least-pressured alternatives.

        Jobs that *require* local data — production direct-local reads,
        which cannot pull inputs themselves — are confined to sites
        already holding the dataset; transfer-capable jobs may also
        consider unloaded alternatives (staging cost is priced into the
        completion estimate).
        """
        out: List[str] = []
        if job.input_dataset is not None:
            locations = self.rucio.dataset_locations(job.input_dataset)
            out.extend(
                s for s in sorted(locations)
                if s in self.topology.sites and not self.topology.site(s).is_unknown
            )
        must_be_local = (
            job.kind is JobKind.PRODUCTION
            and job.access_mode is DataAccessMode.DIRECT_LOCAL
        )
        if must_be_local and out:
            return out
        compute = self.topology.compute_sites()
        idx = np.array(
            [self.awareness.site_index(s.name) for s in compute], dtype=np.int64
        )
        waits = self.awareness.queue_wait_vector(idx)
        order = sorted(range(len(compute)), key=lambda i: (waits[i], compute[i].name))
        for i in order[: self.n_alternatives]:
            if compute[i].name not in out:
                out.append(compute[i].name)
        return out

    def assign(self, job: Job, now: float) -> BrokerDecision:
        candidates = self._candidates(job)
        if not candidates:
            compute = self.topology.compute_sites()
            pick = compute[int(self.rng.integers(len(compute)))].name
            return BrokerDecision(pick, False, 0.0, "coopt:fallback")
        scores = self.score_sites(job, candidates)
        best_site = min(zip(scores.tolist(), candidates))[1]
        self.awareness.note_backlog(best_site, +1)
        data_local = (
            job.input_dataset is not None
            and best_site in self.rucio.dataset_locations(job.input_dataset)
        )
        return BrokerDecision(
            site_name=best_site,
            data_local=bool(data_local),
            locality_fraction=1.0 if data_local else 0.0,
            reason=f"coopt:min-completion@g{self.awareness.generation}",
        )
