"""The closed co-optimization control loop (digital twin).

Kilic et al.'s introspective-model architecture — observe, model,
steer, re-observe — realised over this repo's dataplane:

* **observe** — the simulation harness runs with a live
  :class:`~repro.stream.StreamingCollector` tap whose degrader applies
  the run's *real* degradation config, so the loop sees telemetry of
  production quality, not ground truth;
* **model** — each decision epoch drains the new events through a
  :class:`~repro.stream.StreamProcessor`, cuts a generation-keyed
  :class:`~repro.coopt.state.AwarenessSnapshot` from the awareness
  folds, and absorbs it into the shared
  :class:`~repro.coopt.awareness.PerformanceAwareness`;
* **steer** — mid-simulation interventions gated by the active
  :class:`~repro.coopt.policies.PolicySpec`: awareness-driven
  brokerage, redundant-transfer suppression, per-epoch re-brokerage of
  queued-too-long jobs, and replication (pre-staging) hints;
* **re-observe** — steered behaviour lands back in the telemetry the
  next epoch processes, closing the loop.

Determinism: every stochastic policy choice draws from the harness's
``repro.rng`` registry under the name ``coopt.epoch.<n>`` — keyed by
(seed, epoch), independent of call order — so two runs at the same
seed produce identical decision logs (regression-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.coopt.awareness import PerformanceAwareness
from repro.coopt.broker2 import CoOptimizedBroker
from repro.coopt.policies import PolicySpec, TransferDeduplicator, get_policy
from repro.coopt.state import AwarenessSnapshot, snapshot_from_rows
from repro.obs import Obs, get_obs, use_obs
from repro.panda.brokerage import BrokerDecision
from repro.panda.job import Job, JobKind, JobStatus
from repro.rng import RngRegistry
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.stream import FoldSet, StreamProcessor, StreamingCollector
from repro.telemetry.degradation import MetadataDegrader


@dataclass(frozen=True)
class DecisionRecord:
    """One steering decision, as logged (and regression-compared)."""

    epoch: int
    time: float
    kind: str  # "rebroker" | "prestage"
    subject: str  # pandaid or dataset DID
    detail: str  # "SRC->DST" site movement
    generation: int  # awareness generation the decision was keyed on


@dataclass
class ControlLoopResult:
    """End-of-run metrics for one policy under one seeded campaign."""

    policy: str
    seed: int
    n_epochs: int
    n_jobs: int
    success_rate: float
    makespan: float  # latest job end time (seconds into the run)
    transfer_volume: float  # ground-truth bytes moved (all attempts)
    n_transfer_events: int
    queue_mean: float
    queue_p95: float
    remote_bytes: float
    local_bytes: float
    load_imbalance: float  # std of per-site job shares
    retries: int
    failures: int
    suppressed: int
    suppressed_bytes: int
    rebrokered: int
    prestaged: int
    final_generation: int
    mean_staleness: float  # mean awareness age at decision time
    decisions: List[DecisionRecord] = field(default_factory=list)

    def row(self) -> Dict[str, object]:
        """Flat JSON-friendly view (decision log elided)."""
        return {
            "policy": self.policy,
            "seed": self.seed,
            "n_epochs": self.n_epochs,
            "jobs": self.n_jobs,
            "success_rate": round(self.success_rate, 4),
            "makespan_s": round(self.makespan, 1),
            "transfer_TB": round(self.transfer_volume / 1e12, 4),
            "n_transfers": self.n_transfer_events,
            "queue_mean_s": round(self.queue_mean, 1),
            "queue_p95_s": round(self.queue_p95, 1),
            "remote_TB": round(self.remote_bytes / 1e12, 4),
            "load_imbalance": round(self.load_imbalance, 4),
            "retries": self.retries,
            "failures": self.failures,
            "suppressed": self.suppressed,
            "suppressed_GB": round(self.suppressed_bytes / 1e9, 3),
            "rebrokered": self.rebrokered,
            "prestaged": self.prestaged,
            "generations": self.final_generation,
            "mean_staleness_s": round(self.mean_staleness, 1),
        }

    def summary(self) -> str:
        return (
            f"{self.policy}: {self.n_jobs} jobs, success {self.success_rate:.1%}, "
            f"makespan {self.makespan / 3600:.1f}h, moved {self.transfer_volume / 1e12:.2f} TB, "
            f"queue p95 {self.queue_p95:.0f}s, re-brokered {self.rebrokered}, "
            f"suppressed {self.suppressed} ({self.suppressed_bytes / 1e9:.1f} GB), "
            f"pre-staged {self.prestaged}"
        )


class ControlLoop:
    """Run one campaign with the co-optimization loop in it.

    ``policy`` names a registered :class:`PolicySpec`.  Even the
    ``baseline`` policy runs the full observe/model half (stream
    processing, fold snapshots, awareness absorption) so every ladder
    rung pays the same observation cost and differs only in steering.
    """

    def __init__(
        self,
        config: HarnessConfig,
        policy: Union[str, PolicySpec] = "full",
        *,
        epoch_seconds: float = 4 * 3600.0,
        method: str = "rm2",
        rebroker_max_per_epoch: int = 8,
        rebroker_wait_threshold: float = 1800.0,
        rebroker_gain: float = 1.5,
        prestage_max_per_epoch: int = 2,
        prestage_min_demand: int = 3,
        prestage_lifetime: float = 2 * 86400.0,
        prestage_band: float = 1.1,
        dedup_ttl: float = 6 * 3600.0,
        obs: Optional[Obs] = None,
    ) -> None:
        self.config = config
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.epoch_seconds = float(epoch_seconds)
        self.method = method
        self.rebroker_max_per_epoch = int(rebroker_max_per_epoch)
        self.rebroker_wait_threshold = float(rebroker_wait_threshold)
        self.rebroker_gain = float(rebroker_gain)
        self.prestage_max_per_epoch = int(prestage_max_per_epoch)
        self.prestage_min_demand = int(prestage_min_demand)
        self.prestage_lifetime = float(prestage_lifetime)
        self.prestage_band = float(prestage_band)
        self.obs = obs

        # The live tap degrades with the run's real config, on its own
        # named stream (a fresh registry with the harness seed derives
        # the identical generator the harness registry would — streams
        # are keyed by (seed, name), not creation order).
        degrader = MetadataDegrader(
            config.degradation, RngRegistry(config.seed).get("coopt-live-degradation")
        )
        self.harness = SimulationHarness(
            config,
            collector_factory=lambda catalog: StreamingCollector(
                catalog, degrader=degrader
            ),
        )
        self.horizon = config.workload.duration + config.drain
        self.processor = StreamProcessor(
            0.0,
            self.horizon,
            known_sites=self.harness.known_site_names(),
            folds=FoldSet.with_awareness(method),
        )
        self.awareness = PerformanceAwareness(self.harness.topology)
        self.broker = CoOptimizedBroker(
            self.harness.topology,
            self.harness.rucio,
            self.awareness,
            self.harness.rngs.get("coopt"),
        )
        if self.policy.aware_broker:
            self.harness.panda.broker = self.broker
            self.harness.panda.on_job_done(
                lambda j: self.awareness.note_backlog(j.computing_site, -1)
            )
        self.dedup = TransferDeduplicator(ttl_seconds=dedup_ttl)
        if self.policy.dedup:
            self._wire_dedup()

        self.decisions: List[DecisionRecord] = []
        self.snapshots: List[AwarenessSnapshot] = []
        self._staleness: List[float] = []
        self._cursor = 0
        self._epoch = 0
        self._prestaged: set = set()
        self._ran = False
        self._result: Optional[ControlLoopResult] = None

    # -- wiring ------------------------------------------------------------------

    def _wire_dedup(self) -> None:
        """Filter redundant ephemeral downloads out of FTS submissions.

        Instance-level wrap of ``submit_group`` (``submit`` routes
        through it), restricted to ephemeral job downloads: scratch
        copies register no replica, so suppressing a repeat within the
        TTL skips real movement without corrupting placement state —
        the Fig 12 "in principle avoidable" redundancy.
        """
        fts = self.harness.fts
        topology = self.harness.topology
        original = fts.submit_group

        def filtered(requests, parallelism, on_complete=None):
            kept = []
            for req in requests:
                if req.ephemeral and req.activity.is_download:
                    dest_site = topology.rse(req.dest_rse).site_name
                    if not self.dedup.should_transfer(
                        req, dest_site, self.harness.engine.now
                    ):
                        continue
                kept.append(req)
            return original(kept, parallelism, on_complete)

        fts.submit_group = filtered

    # -- epoch body -------------------------------------------------------------

    def _schedule_next(self) -> None:
        if self.harness.engine.now + self.epoch_seconds <= self.horizon:
            self.harness.engine.schedule_in(
                self.epoch_seconds, self._tick, label="coopt.epoch"
            )

    def _drain_stream(self) -> None:
        events = self.harness.collector.log.events[self._cursor:]
        self._cursor += len(events)
        self.processor.process(events)

    def _cut_snapshot(self, now: float) -> AwarenessSnapshot:
        folds = self.processor.folds
        snap = snapshot_from_rows(
            folds["site_awareness"].rows(),
            folds["link_awareness"].rows(),
            self.awareness.site_names,
            generation=len(self.snapshots) + 1,
            as_of=now,
            watermark=self.processor.tracker.watermark,
        )
        self.snapshots.append(snap)
        self.awareness.absorb(snap)
        return snap

    def _tick(self) -> None:
        epoch = self._epoch
        self._epoch += 1
        obs = get_obs()
        now = self.harness.engine.now
        with obs.tracer.span("coopt.epoch", cat="coopt") as sp:
            staleness = now - self.awareness.as_of
            self._staleness.append(staleness)
            self._drain_stream()
            snap = self._cut_snapshot(now)
            rng = self.harness.rngs.get(f"coopt.epoch.{epoch}")
            suppressed_before = self.dedup.suppressed
            n_re = self._rebroker_pass(epoch, now) if self.policy.rebroker else 0
            n_pre = (
                self._prestage_pass(epoch, now, rng) if self.policy.prestage else 0
            )
            if self.policy.dedup:
                self.dedup.expire(now)
            if obs.enabled:
                obs.metrics.gauge("coopt.awareness_staleness").set(staleness)
                obs.metrics.gauge("coopt.awareness_generation").set(snap.generation)
                obs.metrics.counter("coopt.decisions", kind="rebroker").inc(n_re)
                obs.metrics.counter("coopt.decisions", kind="prestage").inc(n_pre)
                obs.metrics.counter("coopt.decisions", kind="suppress").inc(
                    self.dedup.suppressed - suppressed_before
                )
            sp.set("epoch", epoch)
            sp.set("generation", snap.generation)
            sp.set("rebrokered", n_re)
            sp.set("prestaged", n_pre)
        self._schedule_next()

    # -- steering ----------------------------------------------------------------

    def _rebroker_pass(self, epoch: int, now: float) -> int:
        """Move queued-too-long ready jobs to better-scoring sites."""
        aw = self.awareness
        panda = self.harness.panda
        budget = self.rebroker_max_per_epoch
        moved = 0
        names = sorted(panda.harvesters)
        order = sorted(names, key=lambda s: (-aw.expected_queue_wait(s), s))
        for site in order:
            harvester = panda.harvesters[site]
            while budget > 0:
                if harvester.ready_backlog <= 1:
                    break
                if aw.expected_queue_wait(site) < self.rebroker_wait_threshold:
                    break
                job = harvester.steal_ready()
                if job is None:
                    break
                aw.note_backlog(site, -1)
                decision = self._propose_move(job, site)
                if decision is None:
                    aw.note_backlog(site, +1)
                    harvester.readopt(job)
                    break
                panda.rebroker(job, decision)
                self.decisions.append(
                    DecisionRecord(
                        epoch=epoch,
                        time=now,
                        kind="rebroker",
                        subject=str(job.pandaid),
                        detail=f"{site}->{decision.site_name}",
                        generation=aw.generation,
                    )
                )
                moved += 1
                budget -= 1
            if budget == 0:
                break
        return moved

    def _propose_move(self, job: Job, current_site: str) -> Optional[BrokerDecision]:
        """A strictly-better placement for a ready job, or None.

        The move must beat staying by ``rebroker_gain`` — re-staging
        cost is already priced into the score, so the margin guards
        against churn on estimate noise, not against transfer cost.
        """
        broker = self.broker
        candidates = broker._candidates(job)
        if current_site not in candidates:
            candidates.append(current_site)
        scores = broker.score_sites(job, candidates)
        pairs = list(zip(scores.tolist(), candidates))
        best_score, best_site = min(pairs)
        here = dict((site, score) for score, site in pairs)[current_site]
        if best_site == current_site or here < self.rebroker_gain * max(best_score, 1e-9):
            return None
        self.awareness.note_backlog(best_site, +1)
        data_local = (
            job.input_dataset is not None
            and best_site in self.harness.rucio.dataset_locations(job.input_dataset)
        )
        return BrokerDecision(
            site_name=best_site,
            data_local=bool(data_local),
            locality_fraction=1.0 if data_local else 0.0,
            reason=f"coopt:rebroker@g{self.awareness.generation}",
        )

    def _prestage_pass(self, epoch: int, now: float, rng: np.random.Generator) -> int:
        """Pin in-demand datasets at unloaded sites (replication hints).

        Demand = analysis jobs not yet running that want the dataset.
        The target is drawn uniformly from the band of candidate sites
        within ``prestage_band`` of the lowest expected wait — the
        epoch-keyed randomness that stops every loop instance herding
        onto one site.
        """
        aw = self.awareness
        panda = self.harness.panda
        demand: Dict[object, int] = {}
        for job in panda.jobs.values():
            if job.kind is not JobKind.ANALYSIS or job.input_dataset is None:
                continue
            if job.status in (JobStatus.DEFINED, JobStatus.ASSIGNED, JobStatus.READY):
                demand[job.input_dataset] = demand.get(job.input_dataset, 0) + 1
        ranked = sorted(demand.items(), key=lambda kv: (-kv[1], str(kv[0])))
        pinned = 0
        for ds, count in ranked:
            if pinned >= self.prestage_max_per_epoch or count < self.prestage_min_demand:
                break
            if ds in self._prestaged:
                continue
            locations = self.harness.rucio.dataset_locations(ds)
            targets = [
                s.name
                for s in self.harness.topology.compute_sites()
                if s.name not in locations
            ]
            if not targets:
                self._prestaged.add(ds)
                continue
            idx = np.array([aw.site_index(s) for s in targets], dtype=np.int64)
            waits = aw.queue_wait_vector(idx)
            band_edge = float(waits.min()) * self.prestage_band
            band = [t for t, w in zip(targets, waits.tolist()) if w <= band_edge]
            target = band[int(rng.integers(len(band)))]
            try:
                self.harness.rules.pin_dataset_at_site(
                    ds, target, now, lifetime=self.prestage_lifetime
                )
            except KeyError:
                self._prestaged.add(ds)
                continue
            self._prestaged.add(ds)
            self.decisions.append(
                DecisionRecord(
                    epoch=epoch,
                    time=now,
                    kind="prestage",
                    subject=str(ds),
                    detail=f"->{target}",
                    generation=aw.generation,
                )
            )
            pinned += 1
        return pinned

    # -- lifecycle ----------------------------------------------------------------

    def run(self) -> ControlLoopResult:
        if self._ran:
            raise RuntimeError("control loop already ran")
        self._ran = True
        with use_obs(self.obs) as obs:
            with obs.tracer.span("coopt.loop", cat="coopt") as sp:
                sp.set("policy", self.policy.name)
                self._schedule_next()
                self.harness.run()
                # Final flush: remaining events, then close every window.
                self._drain_stream()
                self.processor.finish()
                self._cut_snapshot(self.harness.engine.now)
                self._result = self._collect()
                sp.set("epochs", self._epoch)
        return self._result

    @property
    def result(self) -> ControlLoopResult:
        if self._result is None:
            raise RuntimeError("run() the loop before reading its result")
        return self._result

    def _collect(self) -> ControlLoopResult:
        harness = self.harness
        jobs = harness.panda.terminal_jobs()
        queuing = np.array(
            [j.queuing_time for j in jobs if j.queuing_time is not None]
        )
        remote = local = volume = 0.0
        for ev in harness.collector.transfer_events:
            volume += ev.file_size
            if ev.source_site and ev.source_site == ev.destination_site:
                local += ev.file_size
            else:
                remote += ev.file_size
        per_site: Dict[str, int] = {}
        for j in jobs:
            per_site[j.computing_site] = per_site.get(j.computing_site, 0) + 1
        shares = np.array(list(per_site.values()), dtype=float)
        shares = shares / shares.sum() if shares.sum() else shares
        ends = [j.end_time for j in jobs if j.end_time is not None]
        return ControlLoopResult(
            policy=self.policy.name,
            seed=self.config.seed,
            n_epochs=self._epoch,
            n_jobs=len(jobs),
            success_rate=harness.panda.success_fraction(),
            makespan=float(max(ends)) if ends else 0.0,
            transfer_volume=float(volume),
            n_transfer_events=len(harness.collector.transfer_events),
            queue_mean=float(queuing.mean()) if len(queuing) else 0.0,
            queue_p95=float(np.percentile(queuing, 95)) if len(queuing) else 0.0,
            remote_bytes=float(remote),
            local_bytes=float(local),
            load_imbalance=float(shares.std()) if len(shares) else 0.0,
            retries=harness.panda.retries_issued,
            failures=sum(1 for j in jobs if not j.succeeded),
            suppressed=self.dedup.suppressed,
            suppressed_bytes=self.dedup.suppressed_bytes,
            rebrokered=sum(1 for d in self.decisions if d.kind == "rebroker"),
            prestaged=sum(1 for d in self.decisions if d.kind == "prestage"),
            final_generation=self.awareness.generation,
            mean_staleness=(
                float(np.mean(self._staleness)) if self._staleness else 0.0
            ),
            decisions=list(self.decisions),
        )
