"""Columnar awareness state: canonical rows, arrays, scoring kernels.

The control loop's shared state lives here as structure-of-arrays
indexed by :meth:`GridTopology.site_names` order, mirroring how the
columnar dataplane stores everything else (DESIGN.md §7).  Two builders
produce an :class:`AwarenessSnapshot`:

* **incremental** — the stream awareness folds
  (:class:`repro.stream.folds.SiteAwarenessFold` /
  :class:`~repro.stream.folds.LinkAwarenessFold`) accumulate canonical
  rows from :class:`~repro.stream.incremental.MatchDelta` emissions and
  hand them to :func:`snapshot_from_rows`;
* **batch** — :func:`snapshot_from_result` derives the same rows from
  an accumulated :class:`~repro.core.matching.base.MatchResult`.

Both paths emit rows in *job-sequence order* (the batch window's match
order) and feed them through the same array builders, so equal row
lists give **bit-identical** snapshots — the property the hypothesis
parity suite checks byte-for-byte.  The row contracts:

* site row: ``(computingsite, queuing_time | None, failed)`` — one per
  matched job, in match order;
* link row: ``(source_site, destination_site, throughput)`` — one per
  matched transfer row the *first* claiming job saw, in (job, position)
  order, skipping failed and zero-duration records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matching.base import JobMatch, MatchResult

#: (computingsite, queuing seconds or None, failed flag)
SiteRow = Tuple[str, Optional[float], bool]
#: (source site, destination site, achieved bytes/s)
LinkRow = Tuple[str, str, float]

#: queue-wait prior (seconds) for sites with no observed history
DEFAULT_QUEUE_WAIT = 120.0
#: failure-rate prior for sites with no observed history
DEFAULT_FAILURE_RATE = 0.1
#: floor on assumed link throughput when estimating staging (bytes/s)
MIN_STAGING_THROUGHPUT = 64_000.0
#: assumed per-job service time (seconds) for the oversubscription term
DEFAULT_SERVICE_TIME = 3600.0


@dataclass(frozen=True)
class AwarenessSnapshot:
    """One versioned cut of fold-derived performance state.

    ``generation`` increments per decision epoch; consumers key cached
    decisions on it so stale awareness is detectable (DESIGN.md §13).
    Arrays follow ``site_names`` order; NaN marks *unobserved* cells
    (no matched evidence yet), distinct from an observed zero.
    """

    generation: int
    as_of: float
    watermark: float
    site_names: Tuple[str, ...]
    queue_wait: np.ndarray  # (n,) mean matched queuing seconds, NaN unobserved
    failure_rate: np.ndarray  # (n,) matched failure share, NaN unobserved
    n_jobs: np.ndarray  # (n,) int64 matched jobs per site
    link_throughput: np.ndarray  # (n, n) mean bytes/s, NaN unobserved
    link_count: np.ndarray  # (n, n) int64 matched transfers per link

    def bit_identical(self, other: "AwarenessSnapshot") -> bool:
        """Byte-level equality of every array (NaN-safe, unlike ``==``)."""
        return (
            self.site_names == other.site_names
            and self.queue_wait.tobytes() == other.queue_wait.tobytes()
            and self.failure_rate.tobytes() == other.failure_rate.tobytes()
            and self.n_jobs.tobytes() == other.n_jobs.tobytes()
            and self.link_throughput.tobytes() == other.link_throughput.tobytes()
            and self.link_count.tobytes() == other.link_count.tobytes()
        )


# -- canonical rows ------------------------------------------------------------


def site_rows_from_matches(matches: Iterable[JobMatch]) -> List[SiteRow]:
    """One row per matched job, in the iteration (= job sequence) order."""
    return [
        (m.job.computingsite, m.job.queuing_time, not m.job.succeeded)
        for m in matches
    ]


def link_rows_from_matches(matches: Iterable[JobMatch]) -> List[LinkRow]:
    """One row per matched transfer, first claiming job wins.

    Shared transfer rows (candidate pollution) are attributed to the
    first job that matched them — the same first-occurrence rule the
    batch ``local_remote_split`` uses — so incremental accumulation can
    reproduce the order exactly via a min-(job, position) claim.
    """
    seen: set = set()
    rows: List[LinkRow] = []
    for m in matches:
        for t in m.transfers:
            if not t.success or t.duration <= 0:
                continue
            if t.row_id in seen:
                continue
            seen.add(t.row_id)
            rows.append((t.source_site, t.destination_site, t.throughput))
    return rows


# -- array builders (shared by incremental and batch paths) --------------------


def site_arrays(
    rows: Sequence[SiteRow], site_names: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(queue_wait, failure_rate, n_jobs) arrays from canonical site rows."""
    index = {name: i for i, name in enumerate(site_names)}
    n = len(site_names)
    wait_sum = np.zeros(n, dtype=np.float64)
    wait_n = np.zeros(n, dtype=np.int64)
    fail_sum = np.zeros(n, dtype=np.float64)
    n_jobs = np.zeros(n, dtype=np.int64)
    for site, wait, failed in rows:
        i = index.get(site)
        if i is None:
            continue
        n_jobs[i] += 1
        if failed:
            fail_sum[i] += 1.0
        if wait is not None:
            wait_sum[i] += wait
            wait_n[i] += 1
    queue_wait = np.where(wait_n > 0, wait_sum / np.maximum(wait_n, 1), np.nan)
    failure = np.where(n_jobs > 0, fail_sum / np.maximum(n_jobs, 1), np.nan)
    return queue_wait, failure, n_jobs


def link_arrays(
    rows: Sequence[LinkRow], site_names: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """(mean throughput, count) matrices from canonical link rows."""
    index = {name: i for i, name in enumerate(site_names)}
    n = len(site_names)
    total = np.zeros((n, n), dtype=np.float64)
    count = np.zeros((n, n), dtype=np.int64)
    for src, dst, throughput in rows:
        i = index.get(src)
        j = index.get(dst)
        if i is None or j is None:
            continue
        total[i, j] += throughput
        count[i, j] += 1
    mean = np.where(count > 0, total / np.maximum(count, 1), np.nan)
    return mean, count


def snapshot_from_rows(
    site_rows: Sequence[SiteRow],
    link_rows: Sequence[LinkRow],
    site_names: Sequence[str],
    generation: int = 0,
    as_of: float = 0.0,
    watermark: float = float("-inf"),
) -> AwarenessSnapshot:
    queue_wait, failure, n_jobs = site_arrays(site_rows, site_names)
    link_mean, link_count = link_arrays(link_rows, site_names)
    return AwarenessSnapshot(
        generation=int(generation),
        as_of=float(as_of),
        watermark=float(watermark),
        site_names=tuple(site_names),
        queue_wait=queue_wait,
        failure_rate=failure,
        n_jobs=n_jobs,
        link_throughput=link_mean,
        link_count=link_count,
    )


def snapshot_from_result(
    result: MatchResult,
    site_names: Sequence[str],
    generation: int = 0,
    as_of: float = 0.0,
    watermark: float = float("-inf"),
) -> AwarenessSnapshot:
    """The batch equivalent of the incremental fold snapshot.

    ``result.matches`` is in job order (the accumulated stream result
    sorts by job sequence; the batch pipeline stores window order) —
    exactly the canonical row order the folds maintain.
    """
    return snapshot_from_rows(
        site_rows_from_matches(result.matches),
        link_rows_from_matches(result.matches),
        site_names,
        generation,
        as_of,
        watermark,
    )


# -- scoring kernels -----------------------------------------------------------


def queue_wait_kernel(
    hist_wait: np.ndarray,
    hist_n: np.ndarray,
    backlog: np.ndarray,
    running: np.ndarray,
    slots: np.ndarray,
    default_wait: float = DEFAULT_QUEUE_WAIT,
    service_time: float = DEFAULT_SERVICE_TIME,
) -> np.ndarray:
    """Vectorized expected queue wait: history × pressure + queuing term.

    Two components.  Historical wait (prior when unobserved) scaled by
    ``0.5 + occupancy`` — the original scalar estimator's formula.
    Plus an oversubscription term: matched telemetry only reports the
    waits of jobs that *started*, so under congestion history is
    survivor-biased low; when demand exceeds capacity, the excess must
    drain at roughly one service time per slot-round, and that queuing
    delay dominates whatever history says.
    """
    hist = np.where(hist_n > 0, hist_wait, default_wait)
    demand = backlog + running
    capacity = np.maximum(1.0, slots)
    pressure = demand / capacity
    oversub = np.maximum(0.0, demand - slots) / capacity
    return hist * (0.5 + pressure) + service_time * oversub


def staging_kernel(
    nbytes: float,
    throughput: np.ndarray,
    floor: float = MIN_STAGING_THROUGHPUT,
) -> np.ndarray:
    """Seconds to move ``nbytes`` at each observed/prior throughput."""
    return nbytes / np.maximum(floor, throughput)


def completion_kernel(
    wait: np.ndarray,
    staging: np.ndarray,
    failure_rate: np.ndarray,
    failure_n: np.ndarray,
    failure_penalty: float,
    default_failure: float = DEFAULT_FAILURE_RATE,
) -> np.ndarray:
    """Expected completion score per candidate site (lower is better)."""
    fail = np.where(failure_n > 0, failure_rate, default_failure)
    return wait + staging + fail * failure_penalty
