"""PanDA–Rucio co-optimization (the paper's §7 mitigation directions).

The paper concludes that "future efforts should focus on … developing
adaptive strategies where PanDA and Rucio share performance awareness
to jointly balance load and data locality".  This package implements
that direction so it can be ablated against the production heuristic:

* :mod:`awareness` — the shared performance state: per-site queue
  pressure, observed link throughput, failure rates;
* :mod:`broker2` — a brokerage that minimises *estimated completion
  time* (queue wait + staging time + failure risk) instead of blindly
  following data locality;
* :mod:`policies` — operational mitigations: redundant-transfer
  suppression and staging-timeout re-brokerage advice.
"""

from repro.coopt.awareness import PerformanceAwareness
from repro.coopt.broker2 import CoOptimizedBroker
from repro.coopt.policies import TransferDeduplicator, MitigationAdvice, advise

__all__ = [
    "PerformanceAwareness",
    "CoOptimizedBroker",
    "TransferDeduplicator",
    "MitigationAdvice",
    "advise",
]
