"""PanDA–Rucio co-optimization (the paper's §7 mitigation directions).

The paper concludes that "future efforts should focus on … developing
adaptive strategies where PanDA and Rucio share performance awareness
to jointly balance load and data locality".  This package implements
that direction as a *closed* loop so it can be ablated against the
production heuristic:

* :mod:`state` — versioned awareness snapshots (SoA arrays) and the
  vectorized scoring kernels, shared by the incremental folds and the
  batch builder so both provably produce identical state;
* :mod:`awareness` — the shared performance model: per-site queue
  pressure, observed link throughput, failure rates — updated live
  and refreshed wholesale from stream-fold snapshots;
* :mod:`broker2` — a brokerage that minimises *estimated completion
  time* (queue wait + staging time + failure risk) instead of blindly
  following data locality;
* :mod:`policies` — the policy registry and ladder, plus operational
  mitigations: redundant-transfer suppression and staging-timeout
  re-brokerage advice;
* :mod:`loop` — the control loop itself: runs the simulation with a
  live telemetry tap, periodically folds matched analysis into a new
  awareness generation, and feeds decisions back mid-run.
"""

from repro.coopt.awareness import PerformanceAwareness
from repro.coopt.broker2 import CoOptimizedBroker
from repro.coopt.loop import ControlLoop, ControlLoopResult, DecisionRecord
from repro.coopt.policies import (
    POLICY_LADDER,
    MitigationAdvice,
    PolicySpec,
    TransferDeduplicator,
    advise,
    get_policy,
    policy_names,
    register_policy,
)
from repro.coopt.state import (
    AwarenessSnapshot,
    snapshot_from_result,
    snapshot_from_rows,
)

__all__ = [
    "PerformanceAwareness",
    "CoOptimizedBroker",
    "ControlLoop",
    "ControlLoopResult",
    "DecisionRecord",
    "AwarenessSnapshot",
    "snapshot_from_result",
    "snapshot_from_rows",
    "PolicySpec",
    "POLICY_LADDER",
    "register_policy",
    "get_policy",
    "policy_names",
    "TransferDeduplicator",
    "MitigationAdvice",
    "advise",
]
