"""Operational mitigation policies.

The concrete mitigations §5-§7 call for, in actionable form:

* :class:`TransferDeduplicator` — suppresses transfers that would
  re-copy a file to a destination it recently moved to (the Fig 12
  redundancy, "in principle avoidable");
* :func:`advise` — converts an anomaly report into prioritised
  mitigation advice (which sites need parallel stage-in, where
  re-brokerage would have helped, how many bytes dedup would save);
* :class:`PolicySpec` + the registry — named combinations of the
  control-loop interventions, forming the cumulative ablation ladder
  (baseline → aware broker → +dedup → +rebrokerage → full loop) the
  sweep driver (:mod:`repro.scenarios.coopt`) measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.anomaly.report import AnomalyReport
from repro.rucio.transfer import TransferRequest
from repro.units import bytes_to_human, seconds_to_human


class TransferDeduplicator:
    """Remembers recent (file, destination site) movements and rejects
    repeats inside a time-to-live window."""

    def __init__(self, ttl_seconds: float = 6 * 3600.0) -> None:
        self.ttl_seconds = float(ttl_seconds)
        self._recent: Dict[Tuple[str, str, str], float] = {}
        self.suppressed = 0
        self.suppressed_bytes = 0

    def _key(self, req: TransferRequest, dest_site: str) -> Tuple[str, str, str]:
        return (req.file_did.scope, req.file_did.name, dest_site)

    def should_transfer(self, req: TransferRequest, dest_site: str, now: float) -> bool:
        """False when an identical movement completed within the TTL."""
        key = self._key(req, dest_site)
        last = self._recent.get(key)
        if last is not None and now - last < self.ttl_seconds:
            self.suppressed += 1
            self.suppressed_bytes += req.size
            return False
        self._recent[key] = now
        return True

    def expire(self, now: float) -> int:
        """Drop entries older than the TTL; returns how many were removed."""
        stale = [k for k, t in self._recent.items() if now - t >= self.ttl_seconds]
        for k in stale:
            del self._recent[k]
        return len(stale)


@dataclass(frozen=True)
class PolicySpec:
    """One named combination of control-loop interventions.

    The flags gate what :class:`~repro.coopt.loop.ControlLoop` is
    allowed to do; everything else (stream processing, fold snapshots,
    awareness absorption) always runs, so even ``baseline`` exercises
    the full observe path and only the *steer* half differs.
    """

    name: str
    #: brokerage uses the awareness-driven CoOptimizedBroker
    aware_broker: bool = False
    #: suppress redundant ephemeral downloads (Fig 12 mitigation)
    dedup: bool = False
    #: move queued-too-long ready jobs to better sites each epoch
    rebroker: bool = False
    #: pin in-demand datasets at unloaded sites (replication hints)
    prestage: bool = False
    description: str = ""


_POLICY_REGISTRY: Dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Register (or replace) a named policy; returns the spec."""
    _POLICY_REGISTRY[spec.name] = spec
    return spec


def get_policy(name: str) -> PolicySpec:
    try:
        return _POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_POLICY_REGISTRY))
        raise KeyError(f"unknown policy {name!r}; registered: {known}") from None


def policy_names() -> List[str]:
    """Registered policy names, in the cumulative-ladder order first."""
    ladder = [p for p in POLICY_LADDER if p in _POLICY_REGISTRY]
    extra = sorted(set(_POLICY_REGISTRY) - set(ladder))
    return ladder + extra


#: the cumulative ablation ladder the sweep bench measures
POLICY_LADDER: Tuple[str, ...] = (
    "baseline",
    "aware",
    "aware+dedup",
    "aware+rebroker",
    "full",
)

register_policy(PolicySpec(
    "baseline",
    description="production locality broker, observe-only control loop",
))
register_policy(PolicySpec(
    "aware",
    aware_broker=True,
    description="completion-minimising broker over fold-fed awareness",
))
register_policy(PolicySpec(
    "aware+dedup",
    aware_broker=True,
    dedup=True,
    description="aware broker plus redundant-transfer suppression",
))
register_policy(PolicySpec(
    "aware+rebroker",
    aware_broker=True,
    dedup=True,
    rebroker=True,
    description="aware broker, dedup, plus per-epoch re-brokerage",
))
register_policy(PolicySpec(
    "full",
    aware_broker=True,
    dedup=True,
    rebroker=True,
    prestage=True,
    description="the full closed loop including pre-staging hints",
))


@dataclass(frozen=True)
class MitigationAdvice:
    priority: int  # 1 = highest
    category: str
    action: str
    expected_benefit: str

    def __str__(self) -> str:
        return f"[P{self.priority}] {self.category}: {self.action} ({self.expected_benefit})"


def advise(report: AnomalyReport) -> List[MitigationAdvice]:
    """Prioritised mitigation advice from one anomaly report."""
    advice: List[MitigationAdvice] = []

    if report.redundant:
        advice.append(
            MitigationAdvice(
                priority=1,
                category="redundant-transfers",
                action=(
                    f"enable transfer deduplication; {len(report.redundant)} files "
                    "were re-copied to the same destination"
                ),
                expected_benefit=f"save {bytes_to_human(report.wasted_bytes)} of movement",
            )
        )

    sequential = [f for f in report.underutilization if f.sequential]
    if sequential:
        advice.append(
            MitigationAdvice(
                priority=1,
                category="bandwidth-underutilization",
                action=(
                    f"enable parallel stage-in at affected sites "
                    f"({len(sequential)} jobs staged sequentially)"
                ),
                expected_benefit=(
                    f"recover {seconds_to_human(report.recoverable_queue_seconds)} of queue time"
                ),
            )
        )

    spanning = [a for a in report.staging if a.n_spanning]
    if spanning:
        failed = sum(1 for a in spanning if a.status == "failed")
        advice.append(
            MitigationAdvice(
                priority=2,
                category="prolonged-staging",
                action=(
                    f"re-broker or restage jobs whose transfers span into execution "
                    f"({len(spanning)} jobs, {failed} failed)"
                ),
                expected_benefit="reduce the failure-enriched high-transfer-time tail",
            )
        )

    if report.imbalance is not None and report.imbalance.is_extreme:
        advice.append(
            MitigationAdvice(
                priority=3,
                category="site-imbalance",
                action=(
                    f"rebalance placement: top cell carries "
                    f"{report.imbalance.top1_share:.0%} of all volume "
                    f"(gini {report.imbalance.gini:.2f})"
                ),
                expected_benefit="reduce hot-spot exposure and error concentration",
            )
        )

    if report.inferences:
        advice.append(
            MitigationAdvice(
                priority=4,
                category="metadata-quality",
                action=(
                    f"backfill {len(report.inferences)} reconstructable UNKNOWN site "
                    "labels into the transfer store"
                ),
                expected_benefit="convert RM2-only matches into exact matches",
            )
        )

    advice.sort(key=lambda a: a.priority)
    return advice
