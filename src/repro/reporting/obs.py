"""Exporters for the observability layer.

Two artifact formats, both plain JSON:

* **Chrome trace** — the ``trace_event`` format (``"X"`` complete
  events with microsecond ``ts``/``dur``), loadable in
  ``chrome://tracing`` / Perfetto; span attributes land in ``args`` and
  the span category in ``cat``, so the UI can filter by stage
  (``metastore``, ``artifact``, ``kernel``, ``executor``, ``stream``,
  ``study``);
* **flat metrics JSON** — the registry's :meth:`snapshot` plus a span
  census, for diffing between runs and for the overhead gate in
  ``benchmarks/``.

Both exports are deterministic given a deterministic tracer clock:
events are emitted in span start order and metrics sorted by name and
labels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.reporting.export import PathLike, to_json_file

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard for type hints
    from repro.obs import MetricsRegistry, Obs, Tracer


def chrome_trace(tracer: "Tracer", pid: int = 1, tid: int = 1) -> dict:
    """The tracer's finished spans as a Chrome ``trace_event`` document."""
    events: List[dict] = []
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        args: Dict[str, object] = {"span_id": span.span_id, "depth": span.depth}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: PathLike, tracer: "Tracer") -> int:
    """Write the Chrome-trace JSON; returns the event count."""
    payload = chrome_trace(tracer)
    to_json_file(path, payload)
    return len(payload["traceEvents"])


def metrics_snapshot(obs: "Obs") -> dict:
    """Flat metrics document: registry snapshot + span census."""
    spans_by_cat: Dict[str, dict] = {}
    for span in obs.tracer.spans:
        agg = spans_by_cat.setdefault(span.cat, {"spans": 0, "total_s": 0.0})
        agg["spans"] += 1
        agg["total_s"] += span.duration
    return {
        "metrics": obs.metrics.snapshot(),
        "spans": {cat: spans_by_cat[cat] for cat in sorted(spans_by_cat)},
        "n_spans": len(obs.tracer.spans),
    }


def write_metrics_json(path: PathLike, obs: "Obs") -> dict:
    """Write the flat metrics JSON; returns the written document."""
    payload = metrics_snapshot(obs)
    to_json_file(path, payload)
    return payload


def stage_summary(tracer: "Tracer") -> List[dict]:
    """Per-(category, name) aggregate over finished spans.

    Rows sorted by total duration, descending — the CLI's per-stage
    summary table.  Nested spans each count their own full duration
    (the Chrome trace view shows self-time; this table shows totals).
    """
    agg: Dict[tuple, dict] = {}
    for span in tracer.spans:
        row = agg.setdefault(
            (span.cat, span.name),
            {"cat": span.cat, "name": span.name, "count": 0, "total_s": 0.0,
             "max_s": 0.0},
        )
        row["count"] += 1
        row["total_s"] += span.duration
        row["max_s"] = max(row["max_s"], span.duration)
    return sorted(agg.values(), key=lambda r: (-r["total_s"], r["cat"], r["name"]))


def render_stage_summary(tracer: "Tracer", top: int = 0) -> str:
    """The stage summary as a rendered text table."""
    from repro.reporting.tables import render_table

    rows = stage_summary(tracer)
    if top:
        rows = rows[:top]
    return render_table(
        ["stage", "span", "count", "total (s)", "max (s)"],
        [[r["cat"], r["name"], str(r["count"]),
          f"{r['total_s']:.4f}", f"{r['max_s']:.4f}"] for r in rows],
    )
