"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.core.analysis.summary import ActivityRow, MethodJobRow, MethodTransferRow
from repro.units import ratio_pct


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Align columns; numbers right-aligned, text left-aligned."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        parts = []
        for i, cell in enumerate(row):
            src = rows[ri - 1][i] if ri > 0 else None
            if ri > 0 and isinstance(src, (int, float)) and not isinstance(src, bool):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        lines.append("  ".join(parts).rstrip())
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:,.2f}"
    if isinstance(v, int) and not isinstance(v, bool):
        return f"{v:,}"
    return str(v)


def render_activity_table(rows: Sequence[ActivityRow]) -> str:
    """Table 1 rendering."""
    return render_table(
        ["Transfer activity type", "Matched count", "Total count", "Percentage"],
        [[r.activity, r.matched, r.total, f"{r.pct:.2f}%"] for r in rows],
    )


def render_method_tables(
    transfer_rows: Sequence[MethodTransferRow],
    job_rows: Sequence[MethodJobRow],
    n_transfers_with_taskid: int,
    n_jobs: int,
) -> str:
    """Tables 2a and 2b rendering."""
    a = render_table(
        ["Matching method", "Local transfer", "Remote transfer", "Total transfer", "Total matched %"],
        [
            [
                r.method,
                r.local,
                r.remote,
                r.total,
                f"{ratio_pct(r.total, n_transfers_with_taskid):.2f}%",
            ]
            for r in transfer_rows
        ],
    )
    b = render_table(
        ["Matching method", "All local", "All remote", "Mixed", "Total jobs", "Total matched %"],
        [
            [
                r.method,
                r.all_local,
                r.all_remote,
                r.mixed,
                r.total,
                f"{ratio_pct(r.total, n_jobs):.2f}%",
            ]
            for r in job_rows
        ],
    )
    return f"(a) Matched transfers count\n{a}\n\n(b) Matched job count\n{b}"
