"""Rendering and export: text tables, figure series, CSV/JSON, traces."""

from repro.reporting.tables import render_table, render_activity_table, render_method_tables
from repro.reporting.figures import series_to_rows, sparkline, render_timeline
from repro.reporting.export import rows_to_csv, to_json_file
from repro.reporting.obs import (
    chrome_trace,
    metrics_snapshot,
    render_stage_summary,
    stage_summary,
    write_chrome_trace,
    write_metrics_json,
)

__all__ = [
    "render_table",
    "render_activity_table",
    "render_method_tables",
    "series_to_rows",
    "sparkline",
    "render_timeline",
    "rows_to_csv",
    "to_json_file",
    "chrome_trace",
    "metrics_snapshot",
    "render_stage_summary",
    "stage_summary",
    "write_chrome_trace",
    "write_metrics_json",
]
