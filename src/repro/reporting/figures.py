"""Figure-series rendering: rows for plotting, ASCII sparklines, and
timeline pictures for the case studies."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.core.analysis.bandwidth import BandwidthSeries
from repro.core.analysis.timeline import JobTimeline
from repro.units import bytes_to_human

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress a series into a fixed-width unicode sparkline."""
    v = np.asarray(list(values), dtype=float)
    if len(v) == 0:
        return ""
    if len(v) > width:
        # mean-pool into `width` buckets
        edges = np.linspace(0, len(v), width + 1).astype(int)
        v = np.array([v[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])])
    hi = v.max()
    if hi <= 0:
        return _SPARK[0] * len(v)
    idx = np.minimum((v / hi * (len(_SPARK) - 1)).round().astype(int), len(_SPARK) - 1)
    return "".join(_SPARK[i] for i in idx)


def series_to_rows(series: BandwidthSeries) -> List[Dict[str, Any]]:
    """Fig 7/8 data as plain rows (time, MBps) for export or plotting."""
    return [
        {"t": float(t), "mbps": float(m)}
        for t, m in zip(series.times(), series.mbps)
    ]


def render_series(series: BandwidthSeries) -> str:
    return (
        f"{series.label:<40s} peak {series.peak_mbps:7.1f} MBps  "
        f"mean {series.mean_mbps:6.1f} MBps  cv {series.fluctuation:4.2f}  "
        f"{sparkline(series.mbps)}"
    )


def render_timeline(tl: JobTimeline, width: int = 72) -> str:
    """Fig 10/11/12-style ASCII timeline of one job.

    The time axis spans the job lifetime; 'Q' marks the queuing phase,
    'W' the wall phase, and each transfer renders as a '=' bar.
    """
    lifetime = max(tl.lifetime, max((t.rel_end for t in tl.transfers), default=0.0))
    if lifetime <= 0:
        return f"job {tl.pandaid}: degenerate timeline"

    def pos(t: float) -> int:
        return min(width - 1, max(0, int(t / lifetime * width)))

    q_end = pos(tl.queuing_time)
    axis = ["Q"] * q_end + ["W"] * (width - q_end)
    lines = [
        f"job {tl.pandaid} [{tl.status}"
        + (f", error {tl.error_code}: {tl.error_message}" if tl.error_code else "")
        + f"]  queue {tl.queuing_time:.0f}s wall {tl.wall_time:.0f}s",
        "".join(axis),
    ]
    for t in tl.transfers:
        a, b = pos(t.rel_start), max(pos(t.rel_end), pos(t.rel_start) + 1)
        bar = [" "] * width
        for k in range(a, b):
            bar[k] = "="
        lines.append(
            "".join(bar)
            + f"  #{t.index} {bytes_to_human(t.file_size)} @ "
            + f"{t.throughput / 1e6:.1f} MBps {t.source_site}->{t.destination_site}"
        )
    return "\n".join(lines)
