"""CSV / JSON export of analysis results."""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

PathLike = Union[str, Path]


def _as_dict(row: Any) -> Dict[str, Any]:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return row
    raise TypeError(f"cannot export row of type {type(row)!r}")


def rows_to_csv(path: PathLike, rows: Sequence[Any]) -> int:
    """Write dataclass/dict rows as CSV; returns the row count."""
    dicts = [_as_dict(r) for r in rows]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not dicts:
        path.write_text("")
        return 0
    fields = list(dicts[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(dicts)
    return len(dicts)


class _Encoder(json.JSONEncoder):
    def default(self, o: Any) -> Any:  # noqa: D102 - stdlib hook
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        if hasattr(o, "tolist"):  # numpy array or scalar
            return o.tolist()
        if hasattr(o, "value"):  # enum
            return o.value
        return super().default(o)


def to_json_file(path: PathLike, payload: Any, indent: int = 2) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, cls=_Encoder, indent=indent))


def load_json(path: PathLike) -> Any:
    return json.loads(Path(path).read_text())
