"""Markdown experiment reports.

Collects the paper-vs-measured artifacts the benchmarks write under
``benchmarks/results/`` and renders them into one markdown document —
the machine-generated companion to the hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

PathLike = Union[str, Path]

#: preferred ordering of experiments in the report
EXPERIMENT_ORDER = [
    "summary_headline",
    "table1_activity",
    "table2_methods",
    "fig2_growth",
    "fig3_matrix",
    "fig5_local_queuing",
    "fig6_remote_queuing",
    "fig7_remote_bandwidth",
    "fig8_local_bandwidth",
    "fig9_thresholds",
    "fig10_case_sequential",
    "fig11_case_failed",
    "fig12_case_redundant",
    "matching_quality",
    "matching_scaling",
    "ablation_coopt",
    "ablation_idds",
]


def load_results(results_dir: PathLike) -> Dict[str, dict]:
    """Read every ``*.json`` artifact; keyed by experiment name."""
    out: Dict[str, dict] = {}
    directory = Path(results_dir)
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
        name = data.get("experiment", path.stem)
        out[name] = data
    return out


def _render_value(value: Any, indent: int = 0) -> List[str]:
    pad = "  " * indent
    if isinstance(value, dict):
        lines: List[str] = []
        for k, v in value.items():
            if isinstance(v, (dict, list)) and v:
                lines.append(f"{pad}- **{k}**:")
                lines.extend(_render_value(v, indent + 1))
            else:
                lines.append(f"{pad}- **{k}**: {v}")
        return lines
    if isinstance(value, list):
        return [f"{pad}- {item}" for item in value]
    return [f"{pad}- {value}"]


def render_experiment(data: dict) -> str:
    name = data.get("experiment", "unknown")
    lines = [f"## {name}", ""]
    if data.get("notes"):
        lines += [f"*{data['notes']}*", ""]
    lines.append("**Paper:**")
    lines.extend(_render_value(data.get("paper", {})))
    lines.append("")
    lines.append("**Measured:**")
    lines.extend(_render_value(data.get("measured", {})))
    lines.append("")
    return "\n".join(lines)


def build_markdown_report(results_dir: PathLike, title: str = "Experiment results") -> str:
    """One markdown document over every artifact, stable ordering."""
    results = load_results(results_dir)
    ordered = [n for n in EXPERIMENT_ORDER if n in results]
    ordered += [n for n in sorted(results) if n not in ordered]
    parts = [f"# {title}", "",
             f"{len(results)} experiment artifact(s) found.", ""]
    for name in ordered:
        parts.append(render_experiment(results[name]))
    return "\n".join(parts)


def write_markdown_report(results_dir: PathLike, out_path: PathLike) -> int:
    """Render and write; returns the number of experiments included."""
    results = load_results(results_dir)
    Path(out_path).write_text(build_markdown_report(results_dir))
    return len(results)
