"""The multi-tenant match/analysis service.

:class:`MatchService` is a long-lived asyncio front end over the
dataplane built in PRs 1-6: one shared metastore
(:class:`~repro.metastore.opensearch.OpenSearchLike` or
:class:`~repro.metastore.packsource.PackSource`), one thread-safe
:class:`~repro.exec.artifacts.ArtifactCache`, one cross-tenant
:class:`~repro.serve.memo.ResultMemo`, and a bounded pool of compute
workers.  Request flow::

    submit ──► admission (token bucket + queue bound) ──► shed?
                  │
                  ▼
           per-tenant FIFO + stride scheduler (weighted fair order)
                  │
                  ▼
           bounded worker pool ──► memo (generation-keyed, single
                  │                 flight) ──► ArtifactCache ──►
                  ▼                 Exact/RM1/RM2 kernels / analyses
               response

Live ingest runs concurrently with serving: :meth:`ingest` (and
:meth:`feed` when a :class:`~repro.stream.StreamProcessor` is
attached) takes the write side of a reader-writer lock while queries
hold the read side, so a query observes exactly one store generation
end to end — the generation its memo key and response carry.  Stale
results can never be served: keys embed the generation, and the memo
evicts dead generations on the next miss.

Compute is CPU-bound Python/NumPy; the worker pool is threads by
default (they share the artifact cache and release the GIL inside the
kernels).  Passing ``executor=ParallelExecutor(...)`` routes whole
match reports through the persistent process pool instead — several
service threads then issue concurrent ``execute`` calls against one
pool key, which is exactly the sharing contract the executor's lock
now guarantees.

Built-in verification: with ``verify_every=N`` every Nth completed
request is recomputed directly (fresh artifacts, no cache, no memo)
under the same read-lock hold and compared ``==`` — the serving
layer's bit-identity claim, continuously sampled in production style
rather than asserted once in a test.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.columnar import DEFAULT_ENGINE, DEFAULT_FRAME, validate_engine, validate_frame
from repro.exec.analysis import ANALYSIS_NAMES, AnalysisSpec, analyze_report
from repro.exec.artifacts import ArtifactCache, WindowArtifacts, build_report
from repro.exec.executor import ParallelExecutor, default_matchers
from repro.exec.plan import WindowPlan
from repro.obs import get_obs
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.memo import ResultMemo
from repro.serve.scheduler import FairScheduler

DEFAULT_METHODS: Tuple[str, ...] = ("exact", "rm1", "rm2")


def bit_identical(a, b) -> bool:
    """Structural equality that treats NumPy arrays as values.

    ``MatchingReport`` compares with plain ``==``, but analysis results
    are dataclasses holding arrays, where ``==`` broadcasts.  This is
    the equality the bit-identity guarantee is stated in: same
    structure, same dtypes, same bits (NaN equals NaN — the arrays are
    byte-identical even where IEEE ``==`` is not reflexive).
    """
    import dataclasses
    import math

    import numpy as np

    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        if a.shape != b.shape or a.dtype != b.dtype:
            return False
        return bool(np.array_equal(a, b, equal_nan=a.dtype.kind in "fc"))
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        # compare=False fields are lazy caches (MatchResult._frame,
        # ._transfer_ids): whether they are populated depends on what
        # else touched the object, not on its value.
        return all(
            bit_identical(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
            if f.compare
        )
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(bit_identical(v, b[k]) for k, v in a.items())
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(bit_identical(x, y) for x, y in zip(a, b))
    eq = a == b
    if isinstance(eq, np.ndarray):
        return bool(eq.all())
    return bool(eq)


# -- queries and responses ----------------------------------------------------


@dataclass(frozen=True)
class MatchQuery:
    """Window-match request: the Exact/RM1/RM2 report for one window."""

    t0: float
    t1: float
    methods: Tuple[str, ...] = DEFAULT_METHODS
    user_jobs_only: bool = True

    def key(self, generation: int, engine: str, frame: str) -> tuple:
        return (generation, "match", self.t0, self.t1, self.user_jobs_only,
                self.methods, engine)


@dataclass(frozen=True)
class AnalysisQuery:
    """One named §5 analysis over one window's matching report."""

    t0: float
    t1: float
    spec: str = "headline"
    method: str = "exact"
    user_jobs_only: bool = True

    def __post_init__(self) -> None:
        if self.spec not in ANALYSIS_NAMES:
            raise ValueError(
                f"unknown analysis {self.spec!r} (known: {', '.join(ANALYSIS_NAMES)})"
            )

    def key(self, generation: int, engine: str, frame: str) -> tuple:
        return (generation, "analysis", self.t0, self.t1, self.user_jobs_only,
                self.spec, self.method, engine, frame)

    def match_query(self) -> MatchQuery:
        """The match report this analysis reads (memo-shared)."""
        return MatchQuery(self.t0, self.t1, DEFAULT_METHODS, self.user_jobs_only)


@dataclass
class Response:
    """What a tenant gets back for one submitted query."""

    tenant: str
    status: str                      # "ok" | "shed"
    reason: str = ""                 # shed reason ("rate" | "queue")
    value: object = None
    generation: int = -1
    cached: bool = False
    latency: float = 0.0             # submit → completion, seconds
    queued: float = 0.0              # time spent in the fair queue

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# -- reader-writer lock -------------------------------------------------------


class RWLock:
    """Many readers or one writer, writer-preferring.

    Queries hold the read side for their whole compute so the store
    generation cannot move under them; ingest takes the write side.
    Writer preference keeps ingest from starving while the service is
    saturated with queries.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Side:
        def __init__(self, lock: "RWLock", write: bool) -> None:
            self.lock, self.write = lock, write

        def __enter__(self):
            (self.lock.acquire_write if self.write else self.lock.acquire_read)()
            return self

        def __exit__(self, *exc) -> bool:
            (self.lock.release_write if self.write else self.lock.release_read)()
            return False

    def read(self) -> "_Side":
        return self._Side(self, write=False)

    def write(self) -> "_Side":
        return self._Side(self, write=True)


# -- the service --------------------------------------------------------------


@dataclass
class ServeConfig:
    """Operational knobs for one :class:`MatchService`."""

    #: bounded compute concurrency (thread pool size / dispatch slots)
    max_workers: int = 4
    #: default per-tenant admission policy (overridable per tenant)
    policy: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: served-result memo capacity
    memo_entries: int = 512
    #: window-artifact cache capacity
    cache_entries: int = 32
    #: matching join engine / analysis dataplane
    engine: str = DEFAULT_ENGINE
    frame: str = DEFAULT_FRAME
    #: recompute every Nth completed request directly and compare (0 = off)
    verify_every: int = 0

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.engine = validate_engine(self.engine)
        self.frame = validate_frame(self.frame)


class MatchService:
    """Serve window-match and analysis queries from many tenants.

    Synchronous core + asyncio shell: :meth:`handle` runs one admitted
    query to completion on the calling thread (tests and the direct
    path use it); :meth:`submit` is the async front door that applies
    admission, fair scheduling, and the bounded worker pool.
    """

    def __init__(
        self,
        source,
        known_sites: Optional[set] = None,
        tenants: Optional[Dict[str, float]] = None,
        config: Optional[ServeConfig] = None,
        executor: Optional[ParallelExecutor] = None,
        stream=None,
        clock=None,
    ) -> None:
        self.source = source
        self.known_sites = known_sites or set()
        self.config = config or ServeConfig()
        self.executor = executor
        self.stream = stream
        self.cache = ArtifactCache(
            source, max_entries=self.config.cache_entries, engine=self.config.engine
        )
        self.memo = ResultMemo(max_entries=self.config.memo_entries)
        self.rwlock = RWLock()
        self.admission = AdmissionController(clock=clock)
        self.scheduler = FairScheduler()
        self._tenants: Dict[str, float] = {}
        for tenant, weight in (tenants or {}).items():
            self.register_tenant(tenant, weight)
        self._verify_counter = itertools.count(1)
        self._verify_lock = threading.Lock()
        self.verify_samples = 0
        self.verify_violations = 0
        # asyncio plumbing (populated by start())
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._inflight = 0
        self._running = False

    # -- tenants ---------------------------------------------------------------

    def register_tenant(
        self,
        tenant: str,
        weight: float = 1.0,
        policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        self._tenants[tenant] = float(weight)
        self.scheduler.register(tenant, weight)
        self.admission.register(tenant, policy or self.config.policy)

    @property
    def tenants(self) -> Dict[str, float]:
        return dict(self._tenants)

    # -- ingest (the write side) ----------------------------------------------

    def ingest(self, jobs=(), files=(), transfers=()) -> int:
        """Append telemetry while serving; queries never see a torn state."""
        with self.rwlock.write():
            n = self.source.ingest_batch(jobs=jobs, files=files, transfers=transfers)
        obs = get_obs()
        if obs.enabled:
            obs.metrics.counter("serve.ingested_records").inc(n)
        return n

    def feed(self, events) -> object:
        """Drive the attached :class:`StreamProcessor` one micro-batch.

        The processor ingests into this service's source and keeps its
        incremental match state current; queries running concurrently
        keep reading the pre-batch generation until the write lock is
        released.
        """
        if self.stream is None:
            raise RuntimeError("service has no attached StreamProcessor")
        with self.rwlock.write():
            return self.stream.process(events)

    # -- synchronous serving core ---------------------------------------------

    def handle(self, tenant: str, query) -> Response:
        """Run one admitted query to completion on this thread."""
        value, generation, cached = self._compute(query)
        return Response(
            tenant=tenant,
            status="ok",
            value=value,
            generation=generation,
            cached=cached,
        )

    def _compute(self, query) -> Tuple[object, int, bool]:
        with self.rwlock.read():
            generation = getattr(self.source, "generation", 0)
            key = query.key(generation, self.config.engine, self.config.frame)
            value, cached = self.memo.get_or_compute(
                key, lambda: self._execute(query)
            )
            if self.config.verify_every:
                n = next(self._verify_counter)
                if n % self.config.verify_every == 0:
                    self._verify(query, value)
        return value, generation, cached

    def _spec(self, query: AnalysisQuery) -> AnalysisSpec:
        if query.spec == "matrix":  # needs the site axis + UNKNOWN bucket
            from repro.telemetry.records import UNKNOWN_SITE

            names = sorted(set(self.known_sites) | {UNKNOWN_SITE})
            return AnalysisSpec.make(
                query.spec, method=query.method, site_names=tuple(names)
            )
        return AnalysisSpec(name=query.spec, method=query.method)

    def _matchers(self, methods: Sequence[str]):
        by_name = {m.name: m for m in default_matchers(self.known_sites)}
        unknown = [m for m in methods if m not in by_name]
        if unknown:
            raise ValueError(f"unknown matcher(s): {', '.join(unknown)}")
        return [by_name[m] for m in methods]

    def _execute(self, query):
        """Uncached compute of one query (called under the memo flight)."""
        plan = WindowPlan(query.t0, query.t1, query.user_jobs_only)
        if isinstance(query, MatchQuery):
            if self.executor is not None:
                return self.executor.execute(
                    self.source, [plan],
                    matchers=self._matchers(query.methods),
                    engine=self.config.engine,
                )[0]
            artifacts = self.cache.get(plan)
            return build_report(
                artifacts, self._matchers(query.methods), engine=self.config.engine
            )
        # Analysis: share the window's full match report through the
        # memo (the same entry a MatchQuery for this window would use),
        # then run just the requested spec over it.
        mq = query.match_query()
        generation = getattr(self.source, "generation", 0)
        report, _ = self.memo.get_or_compute(
            mq.key(generation, self.config.engine, self.config.frame),
            lambda: self._execute(mq),
        )
        artifacts = self.cache.get(plan)
        return analyze_report(
            report, artifacts, [self._spec(query)], frame=self.config.frame
        )[query.spec]

    # -- verification ----------------------------------------------------------

    def _direct(self, query):
        """Ground-truth recompute: no artifact cache, no memo, no pool."""
        plan = WindowPlan(query.t0, query.t1, query.user_jobs_only)
        artifacts = WindowArtifacts.materialize(
            self.source, plan, engine=self.config.engine
        )
        if isinstance(query, MatchQuery):
            return build_report(
                artifacts, self._matchers(query.methods), engine=self.config.engine
            )
        report = build_report(
            artifacts, self._matchers(DEFAULT_METHODS), engine=self.config.engine
        )
        return analyze_report(
            report, artifacts, [self._spec(query)], frame=self.config.frame
        )[query.spec]

    def _verify(self, query, value) -> None:
        direct = self._direct(query)
        same = bit_identical(direct, value)
        with self._verify_lock:
            self.verify_samples += 1
            if not same:
                self.verify_violations += 1
        obs = get_obs()
        if obs.enabled:
            obs.metrics.counter(
                "serve.verify", outcome="ok" if same else "violation"
            ).inc()

    # -- asyncio shell ---------------------------------------------------------

    async def start(self) -> "MatchService":
        if self._running:
            return self
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_workers, thread_name_prefix="serve"
        )
        self._wake = asyncio.Event()
        self._running = True
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        if not self._running:
            return
        await self.drain()
        self._running = False
        self._wake.set()
        await self._dispatcher
        self._pool.shutdown(wait=True)
        if self.executor is not None:
            self.executor.close()

    async def __aenter__(self) -> "MatchService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def drain(self) -> None:
        """Wait for every queued and in-flight request to complete."""
        while len(self.scheduler) or self._inflight:
            await asyncio.sleep(0.001)

    async def submit(self, tenant: str, query) -> Response:
        """The async front door: admission → fair queue → worker pool."""
        if not self._running:
            raise RuntimeError("service is not started")
        obs = get_obs()
        t_submit = self._loop.time()
        reason = self.admission.admit(tenant, self.scheduler.depth(tenant))
        if reason is not None:
            if obs.enabled:
                obs.metrics.counter("serve.requests", tenant=tenant, status="shed").inc()
                obs.metrics.counter("serve.shed", reason=reason).inc()
            return Response(tenant=tenant, status="shed", reason=reason)
        future = self._loop.create_future()
        self.scheduler.push(tenant, (query, future, t_submit))
        self._wake.set()
        return await future

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._running:
                return
            while self._inflight < self.config.max_workers:
                item = self.scheduler.pop()
                if item is None:
                    break
                tenant, (query, future, t_submit) = item
                self._inflight += 1
                t_start = self._loop.time()
                work = self._loop.run_in_executor(
                    self._pool, self._compute, query
                )
                asyncio.ensure_future(
                    self._finish(tenant, future, t_submit, t_start, work)
                )

    async def _finish(self, tenant, future, t_submit, t_start, work) -> None:
        obs = get_obs()
        try:
            value, generation, cached = await work
        except BaseException as exc:
            if obs.enabled:
                obs.metrics.counter("serve.requests", tenant=tenant, status="error").inc()
            if not future.done():
                future.set_exception(exc)
        else:
            now = self._loop.time()
            response = Response(
                tenant=tenant,
                status="ok",
                value=value,
                generation=generation,
                cached=cached,
                latency=now - t_submit,
                queued=t_start - t_submit,
            )
            if obs.enabled:
                obs.metrics.counter("serve.requests", tenant=tenant, status="ok").inc()
                obs.metrics.histogram("serve.latency", tenant=tenant).observe(
                    response.latency
                )
                obs.metrics.counter(
                    "serve.memo_served", outcome="hit" if cached else "miss"
                ).inc()
            if not future.done():
                future.set_result(response)
        finally:
            self._inflight -= 1
            self._wake.set()

    # -- introspection ---------------------------------------------------------

    @property
    def stats(self) -> dict:
        return {
            "memo": self.memo.stats,
            "cache": self.cache.stats,
            "shed": dict(self.admission.shed_counts),
            "verify": {
                "samples": self.verify_samples,
                "violations": self.verify_violations,
            },
        }
