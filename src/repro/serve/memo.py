"""Cross-tenant result memoization, generation-keyed and single-flight.

Dashboard traffic is dominated by a small set of hot (window, matcher,
analysis) queries asked over and over by many tenants.  The service
memoizes *served results* — one level above the
:class:`~repro.exec.artifacts.ArtifactCache`, which memoizes window
materializations — so a repeated query costs a dictionary lookup
instead of a matching run.

Two properties carry the correctness story:

* **Generation keying.**  Every key starts with the source generation
  observed under the service's read lock; an ``ingest_batch`` bumps the
  generation, so stale entries can never be *looked up* again, and they
  are evicted eagerly on the first miss of a newer generation (same
  rule as the artifact cache).
* **Single flight.**  Concurrent identical queries — the common case
  when eight tenants watch one dashboard — share one computation: the
  first caller computes while the rest block on a future and then reuse
  the result object.  Failures are never cached; the leader's exception
  propagates to every waiter and the key is released for retry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Tuple

from repro.obs import get_obs


class ResultMemo:
    """LRU map of query key → served result, safe for many threads."""

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, Future]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_compute(self, key: tuple, compute: Callable[[], object]) -> Tuple[object, bool]:
        """The memoized value for ``key``, computing it on first use.

        Returns ``(value, cached)`` where ``cached`` is True when the
        value came from the memo (including joining another caller's
        in-flight computation).  ``key[0]`` must be the source
        generation.
        """
        obs = get_obs()
        with self._lock:
            flight = self._entries.get(key)
            if flight is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                if obs.enabled:
                    obs.metrics.counter("serve.memo", event="hit").inc()
                leader = False
            else:
                self.misses += 1
                if obs.enabled:
                    obs.metrics.counter("serve.memo", event="miss").inc()
                stale = [k for k in self._entries if k[0] != key[0]]
                for k in stale:
                    del self._entries[k]
                self._note_evictions(obs, len(stale))
                flight = Future()
                self._entries[key] = flight
                while len(self._entries) > self.max_entries:
                    dropped_key, dropped = next(iter(self._entries.items()))
                    if dropped is flight:  # never evict our own flight
                        break
                    del self._entries[dropped_key]
                    self._note_evictions(obs, 1)
                leader = True

        if not leader:
            return flight.result(), True

        try:
            value = compute()
        except BaseException as exc:
            with self._lock:
                if self._entries.get(key) is flight:
                    del self._entries[key]
            flight.set_exception(exc)
            raise
        flight.set_result(value)
        return value, False

    def _note_evictions(self, obs, n: int) -> None:
        if n:
            self.evictions += n
            if obs.enabled:
                obs.metrics.counter("serve.memo", event="evict").inc(n)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
            }
