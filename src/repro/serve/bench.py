"""Saturation-curve benchmarking for the match service.

Drives one shared :class:`~repro.serve.service.MatchService` with the
open-loop generator at a ladder of offered loads and reports, per
level: p50/p95/p99 latency, completed throughput, shed rate, and memo
hit rate.  Below saturation latency tracks service time; past it the
queues hit their bounds, the admission layer sheds, and throughput
plateaus at capacity — the standard open-loop saturation curve, here
with the knee made explicit by the shed rate instead of hidden in a
growing backlog.

Two side measurements complete the story the CI gate checks:

* **memo speedup** — one hot full-window query timed against its cold
  compute (the cross-tenant memoization claim, ≥5x);
* **bit identity** — the service's built-in ``verify_every`` sampling
  recomputes every Nth served response directly; the run fails its
  gate if any sample ever differs.

A mid-run ``ingest_batch`` at the first load level bumps the store
generation under live traffic, so the curve is measured across an
invalidation boundary, not on a conveniently frozen store.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.columnar import DEFAULT_ENGINE
from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.serve.admission import AdmissionPolicy
from repro.serve.loadgen import LoadSpec, RunStats, Workload, run_workload
from repro.serve.service import MatchQuery, MatchService, ServeConfig
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord


def default_tenants(n: int = 8) -> Dict[str, float]:
    """A skewed tenant mix: two heavy dashboards, the rest light."""
    weights = [4.0, 4.0, 2.0, 2.0] + [1.0] * max(0, n - 4)
    return {f"tenant-{i}": weights[i] for i in range(n)}


def synthetic_batch(
    t0: float, t1: float, n: int = 32, base_id: int = 9_000_000
) -> Tuple[list, list, list]:
    """A live-telemetry batch landing inside [t0, t1).

    Ids start far above anything the simulator produced, so the batch
    extends the store without colliding; every record sits inside the
    window, so post-ingest queries genuinely see different data.
    """
    span = t1 - t0
    jobs, files, transfers = [], [], []
    for i in range(n):
        pid = base_id + i
        start = t0 + span * (0.2 + 0.6 * i / max(1, n - 1))
        jobs.append(JobRecord(
            pandaid=pid, jeditaskid=base_id + 100_000 + i // 4,
            computingsite="SITE-LIVE", prodsourcelabel="user",
            status="finished", taskstatus="finished",
            creationtime=start - 120.0, starttime=start, endtime=start + 300.0,
            ninputfilebytes=1 << 20, noutputfilebytes=1 << 18,
        ))
        files.append(FileRecord(
            pandaid=pid, jeditaskid=base_id + 100_000 + i // 4,
            lfn=f"live.{i:05d}.root", dataset=f"live.ds.{i // 4:04d}",
            proddblock=f"live.ds.{i // 4:04d}", scope="live",
            file_size=1 << 20, ftype="input",
        ))
        transfers.append(TransferRecord(
            row_id=base_id + 500_000 + i, lfn=f"live.{i:05d}.root",
            scope="live", dataset=f"live.ds.{i // 4:04d}",
            proddblock=f"live.ds.{i // 4:04d}", file_size=1 << 20,
            source_site="SITE-LIVE", destination_site="SITE-LIVE",
            activity="Analysis Download", is_download=True, is_upload=False,
            starttime=start - 60.0, endtime=start - 30.0, jeditaskid=0,
        ))
    return jobs, files, transfers


@dataclass
class BenchConfig:
    """One serve-bench run: data scale, service shape, load ladder."""

    days: float = 1.5
    seed: int = 2025
    intensity: float = 1.0
    tenants: int = 8
    max_workers: int = 4
    queue_depth: int = 24
    #: per-tenant sustained admission rate (requests/s) and burst; the
    #: aggregate envelope (rate × tenants, weight-skewed) sits between
    #: the middle and top ladder rungs so the top rung must shed.
    tenant_rate: Optional[float] = 60.0
    tenant_burst: float = 30.0
    #: offered-load ladder (aggregate requests/s); the top rung must be
    #: far past capacity so the shed rate is provably non-zero.
    rates: Tuple[float, ...] = (40.0, 160.0, 2400.0)
    duration: float = 1.5
    long_fraction: float = 0.1
    dashboard_windows: int = 4
    verify_every: int = 37
    engine: str = DEFAULT_ENGINE
    memo_entries: int = 512
    #: ingest a generation-bumping batch mid-run at this ladder index
    ingest_level: int = 0

    def tenant_weights(self) -> Dict[str, float]:
        return default_tenants(self.tenants)


def _measure_memo_speedup(service: MatchService, t0: float, t1: float) -> dict:
    """Time one hot full-window query against its cold compute."""
    query = MatchQuery(t0, t1)
    service.memo.clear()
    service.cache.clear()
    start = time.perf_counter()
    service.handle("bench", query)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    response = service.handle("bench", query)
    hot = time.perf_counter() - start
    assert response.cached, "second identical query must be a memo hit"
    return {
        "cold_s": cold,
        "hot_s": hot,
        "speedup": (cold / hot) if hot > 0 else float("inf"),
    }


async def _run_ladder(config: BenchConfig, study: EightDayStudy) -> dict:
    t0, t1 = study.harness.window
    known_sites = study.harness.known_site_names()
    levels: List[dict] = []
    verify_samples = verify_violations = 0
    memo_stats: Optional[dict] = None

    for idx, rate in enumerate(config.rates):
        service = MatchService(
            study.source,
            known_sites=known_sites,
            tenants=config.tenant_weights(),
            config=ServeConfig(
                max_workers=config.max_workers,
                policy=AdmissionPolicy(
                    rate=config.tenant_rate,
                    burst=config.tenant_burst,
                    queue_depth=config.queue_depth,
                ),
                memo_entries=config.memo_entries,
                engine=config.engine,
                verify_every=config.verify_every,
            ),
        )
        if memo_stats is None:
            # Measured once, before any traffic warms the memo.
            memo_stats = _measure_memo_speedup(service, t0, t1)
        spec = LoadSpec.make(
            config.tenant_weights(),
            rate=rate,
            duration=config.duration,
            long_fraction=config.long_fraction,
            dashboard_windows=config.dashboard_windows,
            seed=config.seed + idx,
        )
        workload = Workload(spec, t0, t1)
        ingest_kw = {}
        if idx == config.ingest_level:
            ingest_kw = {
                "ingest_at": config.duration / 2.0,
                "ingest_batch": synthetic_batch(t0, t1, base_id=9_000_000 + idx * 10_000),
            }
        async with service:
            stats: RunStats = await run_workload(
                service, workload.schedule(), **ingest_kw
            )
        verify_samples += service.verify_samples
        verify_violations += service.verify_violations
        level = {"offered_rps": rate, "ingest_mid_run": idx == config.ingest_level}
        level.update(stats.summary())
        level["memo"] = service.memo.stats
        levels.append(level)

    return {
        "levels": levels,
        "memo_speedup": memo_stats,
        "verify": {"samples": verify_samples, "violations": verify_violations},
    }


def run_serve_bench(config: Optional[BenchConfig] = None) -> dict:
    """Build the study data, run the ladder, return the results dict."""
    config = config or BenchConfig()
    study = EightDayStudy(
        EightDayConfig(seed=config.seed, days=config.days, intensity=config.intensity),
        engine=config.engine,
    ).run()
    results = asyncio.run(_run_ladder(config, study))
    results["config"] = {
        "days": config.days,
        "seed": config.seed,
        "tenants": config.tenants,
        "tenant_weights": config.tenant_weights(),
        "max_workers": config.max_workers,
        "queue_depth": config.queue_depth,
        "tenant_rate": config.tenant_rate,
        "tenant_burst": config.tenant_burst,
        "rates": list(config.rates),
        "duration_s": config.duration,
        "long_fraction": config.long_fraction,
        "verify_every": config.verify_every,
        "engine": config.engine,
    }
    return results


def write_results(results: dict, path) -> Path:
    """Persist a serve-bench results dict (the committed CI artifact)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2, sort_keys=True, default=float) + "\n")
    return path


def format_report(results: dict) -> str:
    """Human-readable saturation report (the serve-bench CLI output)."""
    lines = ["serve-bench: open-loop saturation ladder", ""]
    header = (
        f"{'offered':>9}  {'completed':>9}  {'thru rps':>9}  {'shed%':>6}  "
        f"{'hit%':>6}  {'p50 ms':>8}  {'p95 ms':>8}  {'p99 ms':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for level in results["levels"]:
        lat = level["latency_s"]
        lines.append(
            f"{level['offered_rps']:>9.0f}  {level['completed']:>9d}  "
            f"{level['throughput_rps']:>9.1f}  {100 * level['shed_rate']:>6.1f}  "
            f"{100 * level['cache_hit_rate']:>6.1f}  "
            f"{1000 * lat['p50']:>8.2f}  {1000 * lat['p95']:>8.2f}  "
            f"{1000 * lat['p99']:>8.2f}"
        )
    memo = results["memo_speedup"]
    verify = results["verify"]
    lines.append("")
    lines.append(
        f"memo: cold {1000 * memo['cold_s']:.2f} ms → hot "
        f"{1000 * memo['hot_s']:.3f} ms ({memo['speedup']:.0f}x)"
    )
    lines.append(
        f"verify: {verify['samples']} sampled recomputations, "
        f"{verify['violations']} violations"
    )
    return "\n".join(lines)
