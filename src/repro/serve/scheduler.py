"""Weighted fair scheduling across tenant queues (stride scheduling).

Admitted requests wait in one FIFO queue per tenant; the dispatcher
asks this scheduler which tenant goes next.  Stride scheduling keeps a
*pass* value per tenant and always serves the backlogged tenant with
the smallest pass, advancing it by ``1 / weight`` per dispatch — so
over any busy interval tenant throughput is proportional to weight,
regardless of arrival pattern, and a tenant that was idle cannot hoard
credit (its pass is clamped forward to the global minimum when it
becomes backlogged again).

The scheduler is deliberately not thread-safe: it is owned by the
service's dispatcher and only ever touched from the event loop, which
also makes the dispatch order deterministic given the arrival order
(ties break on tenant name).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple


class FairScheduler:
    """Per-tenant FIFO queues drained in stride order."""

    def __init__(self) -> None:
        self._queues: Dict[str, Deque] = {}
        self._weights: Dict[str, float] = {}
        self._pass: Dict[str, float] = {}

    def register(self, tenant: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        self._queues.setdefault(tenant, deque())
        self._weights[tenant] = float(weight)
        self._pass.setdefault(tenant, 0.0)

    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(sorted(self._queues))

    def weight(self, tenant: str) -> float:
        return self._weights[tenant]

    def push(self, tenant: str, item) -> None:
        queue = self._queues[tenant]
        if not queue:
            # A tenant returning from idle starts at the current
            # frontier: unused credit does not accumulate (standard
            # stride/WFQ re-entry rule), otherwise a long-idle tenant
            # could monopolize the server for its whole backlog.
            floor = min(
                (self._pass[t] for t, q in self._queues.items() if q and t != tenant),
                default=None,
            )
            if floor is not None and self._pass[tenant] < floor:
                self._pass[tenant] = floor
        queue.append(item)

    def pop(self) -> Optional[Tuple[str, object]]:
        """The next (tenant, item) in weighted fair order; None if idle."""
        best: Optional[str] = None
        for tenant in sorted(self._queues):
            if not self._queues[tenant]:
                continue
            if best is None or self._pass[tenant] < self._pass[best]:
                best = tenant
        if best is None:
            return None
        self._pass[best] += 1.0 / self._weights[best]
        return best, self._queues[best].popleft()

    def depth(self, tenant: str) -> int:
        return len(self._queues[tenant])

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())
