"""Open-loop Poisson workload generation for the match service.

Closed-loop clients (issue, wait, issue) self-throttle at saturation
and hide the latency cliff; an **open-loop** generator fires requests
at scheduled arrival times regardless of completions, which is how
real dashboard traffic behaves and the only way to observe shedding.
The shape follows the absim simulator's workload model: a weighted
tenant mix, Poisson (exponential-gap) arrivals, and a configurable
fraction of "long" requests — here, full-window analyses amid cheap
dashboard sub-window queries.

Everything is precomputed from a seeded RNG: :meth:`Workload.schedule`
returns the complete arrival list (time, tenant, query) before a single
request is issued, so a benchmark run is reproducible and two load
levels differ only in arrival spacing.  Dashboard queries draw from a
small fixed set of sub-windows per tenant — deliberately overlapping
across tenants so cross-tenant memoization has something to hit.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.service import (
    AnalysisQuery,
    MatchQuery,
    MatchService,
    Response,
)

#: Cheap per-window analyses a dashboard would poll.
DASHBOARD_SPECS: Tuple[str, ...] = ("headline", "table1", "sites")
#: Expensive specs reserved for the long-request fraction.
LONG_SPECS: Tuple[str, ...] = ("table2_transfers", "thresholds", "top_remote")


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: fire at ``at`` seconds from run start."""

    at: float
    tenant: str
    query: object


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one generated workload.

    ``rate`` is the *aggregate* arrival rate (requests/s) across all
    tenants; per-tenant rates follow the weights.  ``ramp`` optionally
    replaces the flat rate with ``(rate, duration)`` segments played
    back to back — a ramp schedule for tracing the saturation curve in
    one run.
    """

    tenants: Tuple[Tuple[str, float], ...]     # (name, weight) pairs
    rate: float = 50.0
    duration: float = 2.0
    ramp: Tuple[Tuple[float, float], ...] = ()  # (rate, duration) segments
    long_fraction: float = 0.1
    dashboard_windows: int = 4
    seed: int = 2025

    @classmethod
    def make(
        cls,
        tenants: Dict[str, float],
        **kw,
    ) -> "LoadSpec":
        return cls(tenants=tuple(sorted(tenants.items())), **kw)

    @property
    def segments(self) -> Tuple[Tuple[float, float], ...]:
        return self.ramp if self.ramp else ((self.rate, self.duration),)


class Workload:
    """Deterministic arrival schedule over one data window [t0, t1)."""

    def __init__(self, spec: LoadSpec, t0: float, t1: float) -> None:
        if not spec.tenants:
            raise ValueError("workload needs at least one tenant")
        self.spec = spec
        self.t0 = float(t0)
        self.t1 = float(t1)
        self._rng = np.random.default_rng(spec.seed)
        # The shared dashboard: a few sub-windows every tenant polls.
        # Anchored at t0 with growing extents — realistic "last N hours"
        # panels — so plans collide across tenants and the memo earns
        # its hits.
        span = self.t1 - self.t0
        self.windows: List[Tuple[float, float]] = [
            (self.t0, self.t0 + span * (k + 1) / (spec.dashboard_windows + 1))
            for k in range(spec.dashboard_windows)
        ]

    # -- query mix -------------------------------------------------------------

    def _query(self):
        rng = self._rng
        if rng.random() < self.spec.long_fraction:
            # Long request: an expensive analysis over the full window.
            spec = LONG_SPECS[rng.integers(len(LONG_SPECS))]
            return AnalysisQuery(self.t0, self.t1, spec=spec)
        w0, w1 = self.windows[rng.integers(len(self.windows))]
        if rng.random() < 0.5:
            return MatchQuery(w0, w1)
        spec = DASHBOARD_SPECS[rng.integers(len(DASHBOARD_SPECS))]
        return AnalysisQuery(w0, w1, spec=spec)

    def schedule(self) -> List[Arrival]:
        """The full arrival list, sorted by time."""
        rng = self._rng
        names = [t for t, _ in self.spec.tenants]
        weights = np.array([w for _, w in self.spec.tenants], dtype=float)
        weights = weights / weights.sum()
        arrivals: List[Arrival] = []
        offset = 0.0
        for rate, duration in self.spec.segments:
            if rate <= 0 or duration <= 0:
                raise ValueError("ramp segments need positive rate and duration")
            t = offset
            while True:
                t += float(rng.exponential(1.0 / rate))
                if t >= offset + duration:
                    break
                tenant = names[int(rng.choice(len(names), p=weights))]
                arrivals.append(Arrival(at=t, tenant=tenant, query=self._query()))
            offset += duration
        return arrivals


# -- driving a service ---------------------------------------------------------


@dataclass
class RunStats:
    """Aggregated outcome of one open-loop run."""

    wall: float
    completed: int = 0
    shed: int = 0
    errors: int = 0
    cache_hits: int = 0
    latencies: List[float] = field(default_factory=list)
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    by_tenant: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def offered(self) -> int:
        return self.completed + self.shed + self.errors

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.completed if self.completed else 0.0

    @property
    def throughput(self) -> float:
        return self.completed / self.wall if self.wall > 0 else 0.0

    def quantile(self, q: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.quantile(np.asarray(self.latencies), q))

    def summary(self) -> dict:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "shed_rate": round(self.shed_rate, 4),
            "cache_hit_rate": round(self.hit_rate, 4),
            "throughput_rps": round(self.throughput, 2),
            "latency_s": {
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            },
            "shed_reasons": dict(self.shed_reasons),
            "by_tenant": {t: dict(c) for t, c in sorted(self.by_tenant.items())},
        }


async def run_workload(
    service: MatchService,
    arrivals: Sequence[Arrival],
    speed: float = 1.0,
    ingest_at: Optional[float] = None,
    ingest_batch: Optional[tuple] = None,
) -> RunStats:
    """Fire ``arrivals`` open-loop against a started service.

    ``speed`` scales the clock (2.0 = twice as fast).  When
    ``ingest_at`` is given, ``ingest_batch`` — a ``(jobs, files,
    transfers)`` triple — is ingested at that schedule time, bumping
    the store generation mid-run the way live telemetry would.
    """
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def fire(arrival: Arrival) -> Response:
        delay = arrival.at / speed - (loop.time() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        return await service.submit(arrival.tenant, arrival.query)

    async def ingest() -> None:
        delay = ingest_at / speed - (loop.time() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        jobs, files, transfers = ingest_batch
        await loop.run_in_executor(
            None, lambda: service.ingest(jobs=jobs, files=files, transfers=transfers)
        )

    tasks = [asyncio.ensure_future(fire(a)) for a in arrivals]
    if ingest_at is not None and ingest_batch is not None:
        tasks.append(asyncio.ensure_future(ingest()))
    results = await asyncio.gather(*tasks, return_exceptions=True)
    await service.drain()
    wall = loop.time() - start

    stats = RunStats(wall=wall)
    for result in results:
        if result is None:  # the ingest task
            continue
        if isinstance(result, BaseException):
            stats.errors += 1
            continue
        tenant = stats.by_tenant.setdefault(
            result.tenant, {"ok": 0, "shed": 0}
        )
        if result.ok:
            stats.completed += 1
            tenant["ok"] += 1
            stats.latencies.append(result.latency)
            if result.cached:
                stats.cache_hits += 1
        else:
            stats.shed += 1
            tenant["shed"] += 1
            stats.shed_reasons[result.reason] = (
                stats.shed_reasons.get(result.reason, 0) + 1
            )
    return stats
