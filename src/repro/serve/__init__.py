"""Multi-tenant serving over the shared metastore (§4 operations view).

The batch dataplane of PRs 1-6 answers one caller at a time; this
package turns it into a long-lived service: admission control
(:mod:`~repro.serve.admission`), weighted fair scheduling across
tenants (:mod:`~repro.serve.scheduler`), generation-keyed cross-tenant
result memoization (:mod:`~repro.serve.memo`), the asyncio service
itself (:mod:`~repro.serve.service`), and an open-loop Poisson load
generator plus saturation benchmark (:mod:`~repro.serve.loadgen`,
:mod:`~repro.serve.bench`).  Served results are bit-identical to the
batch pipeline's — continuously sampled in-service, property-tested in
``tests/test_serve.py``, and gated in CI.
"""

from repro.serve.admission import (
    SHED_QUEUE,
    SHED_RATE,
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.serve.bench import BenchConfig, default_tenants, run_serve_bench
from repro.serve.loadgen import Arrival, LoadSpec, RunStats, Workload, run_workload
from repro.serve.memo import ResultMemo
from repro.serve.scheduler import FairScheduler
from repro.serve.service import (
    AnalysisQuery,
    MatchQuery,
    MatchService,
    Response,
    RWLock,
    ServeConfig,
    bit_identical,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AnalysisQuery",
    "Arrival",
    "BenchConfig",
    "FairScheduler",
    "LoadSpec",
    "MatchQuery",
    "MatchService",
    "Response",
    "ResultMemo",
    "RunStats",
    "RWLock",
    "SHED_QUEUE",
    "SHED_RATE",
    "ServeConfig",
    "TokenBucket",
    "Workload",
    "bit_identical",
    "default_tenants",
    "run_serve_bench",
    "run_workload",
]
