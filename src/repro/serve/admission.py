"""Admission control: token buckets and bounded per-tenant queues.

A long-lived service in front of the metastore cannot let any one
tenant convert an arrival burst into unbounded queue growth — Rucio's
daemons solve this with per-activity shares and bounded work queues,
and an open-loop workload (arrivals independent of completions) makes
the failure mode sharp: past saturation, latency grows without bound
unless something sheds.  Admission here is two independent checks made
*before* a request ever reaches the fair queue:

* a per-tenant :class:`TokenBucket` caps sustained request rate while
  allowing bursts up to its capacity — the classic leaky-bucket dual;
* a per-tenant queue-depth bound caps how much latency a tenant can
  buy itself by over-submitting.

A request failing either check is **shed** immediately with an
explicit reason (the HTTP-429 analogue); the caller sees the shed in
its response stream rather than a timeout, and the shed rate is the
benchmark's saturation signal.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s, ``burst`` capacity.

    The clock is injectable (any zero-argument callable returning
    seconds) so tests can drive refill deterministically.  The bucket
    starts full — a fresh tenant may burst immediately.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock if clock is not None else time.monotonic
        self._tokens = float(burst)
        self._last = self.clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        with self._lock:
            now = self.clock()
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token count (after a refill to 'now')."""
        with self._lock:
            now = self.clock()
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
            return self._tokens


#: Shed reasons (the ``Response.reason`` vocabulary).
SHED_RATE = "rate"
SHED_QUEUE = "queue"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-tenant limits.

    ``rate``/``burst`` parameterize the token bucket (``rate=None``
    disables rate limiting for the tenant); ``queue_depth`` bounds how
    many of the tenant's requests may wait in the fair queue at once.
    """

    rate: Optional[float] = None
    burst: float = 8.0
    queue_depth: int = 32


class AdmissionController:
    """Applies one :class:`AdmissionPolicy` per tenant.

    ``admit(tenant, queued)`` returns ``None`` to accept or a shed
    reason string; ``queued`` is the tenant's current fair-queue depth
    (owned by the service, which is the single writer).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock
        self._policies: Dict[str, AdmissionPolicy] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self.shed_counts: Dict[str, int] = {SHED_RATE: 0, SHED_QUEUE: 0}

    def register(self, tenant: str, policy: AdmissionPolicy) -> None:
        self._policies[tenant] = policy
        if policy.rate is not None:
            self._buckets[tenant] = TokenBucket(
                policy.rate, policy.burst, clock=self.clock
            )
        else:
            self._buckets.pop(tenant, None)

    def policy(self, tenant: str) -> AdmissionPolicy:
        return self._policies[tenant]

    def admit(self, tenant: str, queued: int) -> Optional[str]:
        policy = self._policies[tenant]
        if queued >= policy.queue_depth:
            self.shed_counts[SHED_QUEUE] += 1
            return SHED_QUEUE
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.try_acquire():
            self.shed_counts[SHED_RATE] += 1
            return SHED_RATE
        return None
