"""Redundant transfer detection (Fig 12 / Table 3).

The Fig 12 case study found the same three files transferred twice for
one job — "redundant file-transfer patterns, which are in principle
avoidable".  The detector groups transfer records by file identity
(scope, lfn, true-size bucket) and flags groups where the same file
moved toward the same effective destination more than once within a
time window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.telemetry.records import UNKNOWN_SITE, TransferRecord


@dataclass
class RedundantGroup:
    """One file that moved repeatedly to the same destination."""

    scope: str
    lfn: str
    destination: str
    transfers: List[TransferRecord]

    @property
    def n_copies(self) -> int:
        return len(self.transfers)

    @property
    def wasted_bytes(self) -> int:
        """Bytes moved beyond the first, necessary copy."""
        return sum(t.file_size for t in self.transfers[1:])

    @property
    def span_seconds(self) -> float:
        starts = [t.starttime for t in self.transfers]
        return max(starts) - min(starts)


def find_redundant_transfers(
    transfers: Sequence[TransferRecord],
    window_seconds: float = 6 * 3600.0,
    treat_unknown_as_wildcard: bool = True,
    downloads_only: bool = True,
) -> List[RedundantGroup]:
    """Groups of repeated same-file, same-destination transfers.

    With ``treat_unknown_as_wildcard`` an UNKNOWN destination is merged
    with any *known* destination group of the same file that has a
    transfer within the window — the Fig 12 situation where the first
    copy's destination was lost but the repetition is still detectable.
    """
    by_file: Dict[Tuple[str, str], List[TransferRecord]] = {}
    for t in transfers:
        if downloads_only and not t.is_download:
            continue
        by_file.setdefault((t.scope, t.lfn), []).append(t)

    groups: List[RedundantGroup] = []
    for (scope, lfn), recs in by_file.items():
        if len(recs) < 2:
            continue
        recs.sort(key=lambda r: r.starttime)
        by_dest: Dict[str, List[TransferRecord]] = {}
        unknowns: List[TransferRecord] = []
        for r in recs:
            if r.destination_site == UNKNOWN_SITE and treat_unknown_as_wildcard:
                unknowns.append(r)
            else:
                by_dest.setdefault(r.destination_site, []).append(r)
        # Fold unknown-destination records into the temporally closest
        # known-destination group (if any within the window).
        for u in unknowns:
            best_dest, best_gap = None, window_seconds
            for dest, lst in by_dest.items():
                gap = min(abs(u.starttime - x.starttime) for x in lst)
                if gap <= best_gap:
                    best_dest, best_gap = dest, gap
            if best_dest is not None:
                by_dest[best_dest].append(u)
            else:
                by_dest.setdefault(UNKNOWN_SITE, []).append(u)
        for dest, lst in by_dest.items():
            lst.sort(key=lambda r: r.starttime)
            # Count repeats inside the window of the first transfer.
            clustered = [
                r for r in lst if r.starttime - lst[0].starttime <= window_seconds
            ]
            if len(clustered) >= 2:
                groups.append(
                    RedundantGroup(scope=scope, lfn=lfn, destination=dest, transfers=clustered)
                )
    groups.sort(key=lambda g: -g.wasted_bytes)
    return groups


def total_wasted_bytes(groups: Sequence[RedundantGroup]) -> int:
    return sum(g.wasted_bytes for g in groups)
