"""Site-level imbalance assessment (Fig 3, §3.2).

Quantifies the "extremely imbalanced" transfer pattern: the paper
contrasts a 77.75 TB arithmetic mean against a 1.11 TB geometric mean
(a ~70x ratio) and lists multi-PB outlier cells.  We add a Gini
coefficient and top-share measures so imbalance becomes a single,
trackable number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.analysis.matrix import TransferMatrix


@dataclass(frozen=True)
class ImbalanceStats:
    total_volume: float
    local_fraction: float
    mean_pair_volume: float
    geomean_pair_volume: float
    gini: float
    top1_share: float
    top10_share: float
    n_active_pairs: int
    outliers: List[Tuple[str, str, float]]

    @property
    def mean_to_geomean(self) -> float:
        """The paper's imbalance signature (~70x on real data)."""
        return self.mean_pair_volume / self.geomean_pair_volume if self.geomean_pair_volume else 0.0

    @property
    def is_extreme(self) -> bool:
        """Heuristic flag: heavy-tailed to the degree §3.2 describes."""
        return self.mean_to_geomean > 10.0 and self.gini > 0.7


def gini_coefficient(values: np.ndarray) -> float:
    """Gini over non-negative values (0 = equal, →1 = concentrated)."""
    v = np.sort(np.asarray(values, dtype=float))
    if len(v) == 0 or v.sum() == 0:
        return 0.0
    n = len(v)
    cum = np.cumsum(v)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / cum[-1]) / n
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def assess_imbalance(
    matrix: TransferMatrix, outlier_quantile: float = 0.999
) -> ImbalanceStats:
    active = matrix.volume[matrix.volume > 0]
    if len(active) == 0:
        return ImbalanceStats(
            total_volume=0.0, local_fraction=0.0, mean_pair_volume=0.0,
            geomean_pair_volume=0.0, gini=0.0, top1_share=0.0, top10_share=0.0,
            n_active_pairs=0, outliers=[],
        )
    sorted_desc = np.sort(active)[::-1]
    total = float(active.sum())
    k10 = max(1, int(np.ceil(0.10 * len(sorted_desc))))
    threshold = float(np.quantile(active, outlier_quantile))
    return ImbalanceStats(
        total_volume=matrix.total_volume,
        local_fraction=matrix.local_fraction,
        mean_pair_volume=matrix.mean_pair_volume(),
        geomean_pair_volume=matrix.geometric_mean_pair_volume(),
        gini=gini_coefficient(active),
        top1_share=float(sorted_desc[0] / total),
        top10_share=float(sorted_desc[:k10].sum() / total),
        n_active_pairs=int(len(active)),
        outliers=matrix.outliers(threshold),
    )
