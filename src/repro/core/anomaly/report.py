"""Aggregated anomaly report.

One call produces everything §5 diagnoses by hand: redundant transfers,
staging anomalies, under-utilization findings, imbalance statistics,
and site inferences — with summary counts suitable for monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.analysis.matrix import TransferMatrix, build_transfer_matrix
from repro.core.anomaly.imbalance import ImbalanceStats, assess_imbalance
from repro.core.anomaly.inference import SiteInference, infer_unknown_sites
from repro.core.anomaly.redundant import RedundantGroup, find_redundant_transfers, total_wasted_bytes
from repro.core.anomaly.staging import StagingAnomaly, find_staging_anomalies
from repro.core.anomaly.underutil import (
    UnderutilizationFinding,
    find_underutilization,
    total_headroom_seconds,
)
from repro.core.matching.base import JobMatch
from repro.telemetry.records import TransferRecord
from repro.units import bytes_to_human, seconds_to_human


@dataclass
class AnomalyReport:
    redundant: List[RedundantGroup] = field(default_factory=list)
    staging: List[StagingAnomaly] = field(default_factory=list)
    underutilization: List[UnderutilizationFinding] = field(default_factory=list)
    imbalance: Optional[ImbalanceStats] = None
    inferences: List[SiteInference] = field(default_factory=list)

    @property
    def wasted_bytes(self) -> int:
        return total_wasted_bytes(self.redundant)

    @property
    def recoverable_queue_seconds(self) -> float:
        return total_headroom_seconds(self.underutilization)

    def summary_lines(self) -> List[str]:
        lines = [
            f"redundant transfer groups : {len(self.redundant)} "
            f"(wasted {bytes_to_human(self.wasted_bytes)})",
            f"staging anomalies         : {len(self.staging)}",
            f"under-utilized jobs       : {len(self.underutilization)} "
            f"(headroom {seconds_to_human(self.recoverable_queue_seconds)})",
            f"site inferences recovered : {len(self.inferences)}",
        ]
        if self.imbalance is not None:
            lines.append(
                f"imbalance                 : mean/geomean "
                f"{self.imbalance.mean_to_geomean:.1f}x, gini {self.imbalance.gini:.2f}, "
                f"local {self.imbalance.local_fraction:.0%}"
            )
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())


def build_anomaly_report(
    matches: Sequence[JobMatch],
    transfers: Sequence[TransferRecord],
    site_names: Optional[Sequence[str]] = None,
    matrix: Optional[TransferMatrix] = None,
) -> AnomalyReport:
    """Run every detector over one window's matches and records."""
    if matrix is None and site_names is not None:
        matrix = build_transfer_matrix(transfers, site_names)
    return AnomalyReport(
        redundant=find_redundant_transfers(transfers),
        staging=find_staging_anomalies(matches),
        underutilization=find_underutilization(matches),
        imbalance=assess_imbalance(matrix) if matrix is not None else None,
        inferences=infer_unknown_sites(matches, transfers),
    )
