"""Anomaly detection over matched jobs and transfer records.

Automates the manual diagnoses of §5.3-5.4, as §7 recommends
("future efforts should focus on automating anomaly detection"):

* :mod:`redundant` — duplicated transfer sets (Fig 12 / Table 3);
* :mod:`staging` — prolonged staging delays and queue+wall-spanning
  transfers (Fig 11);
* :mod:`underutil` — sequential staging and throughput spread
  (Fig 10's bandwidth under-utilization);
* :mod:`imbalance` — spatial imbalance of the site matrix (Fig 3);
* :mod:`inference` — reconstructing UNKNOWN site labels from RM2
  matches (Table 3's destination recovery);
* :mod:`report` — one aggregated anomaly report.
"""

from repro.core.anomaly.redundant import RedundantGroup, find_redundant_transfers
from repro.core.anomaly.staging import StagingAnomaly, find_staging_anomalies
from repro.core.anomaly.underutil import UnderutilizationFinding, find_underutilization
from repro.core.anomaly.imbalance import ImbalanceStats, assess_imbalance
from repro.core.anomaly.inference import SiteInference, infer_unknown_sites
from repro.core.anomaly.report import AnomalyReport, build_anomaly_report
from repro.core.anomaly.monitor import (
    Alert,
    AlertKind,
    MonitorConfig,
    StreamingAnomalyMonitor,
)

__all__ = [
    "Alert",
    "AlertKind",
    "MonitorConfig",
    "StreamingAnomalyMonitor",
    "RedundantGroup",
    "find_redundant_transfers",
    "StagingAnomaly",
    "find_staging_anomalies",
    "UnderutilizationFinding",
    "find_underutilization",
    "ImbalanceStats",
    "assess_imbalance",
    "SiteInference",
    "infer_unknown_sites",
    "AnomalyReport",
    "build_anomaly_report",
]
