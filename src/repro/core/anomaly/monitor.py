"""Online anomaly monitoring.

§7: "Future efforts should focus on automating anomaly detection based
on transfer-time thresholds."  This module is that automation: a
streaming monitor that consumes matched jobs (and raw transfer records)
as they arrive, raises typed alerts immediately, and keeps per-site
exponentially-decayed alert rates so operators can see *where* the
grid is degrading — no batch re-analysis required.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.analysis.timeline import build_timeline
from repro.core.matching.base import JobMatch
from repro.telemetry.records import TransferRecord


class AlertKind(enum.Enum):
    HIGH_TRANSFER_TIME = "high-transfer-time"       # Fig 9 tail
    SPANNING_TRANSFER = "spanning-transfer"         # Fig 11
    SEQUENTIAL_STAGING = "sequential-staging"       # Fig 10
    THROUGHPUT_SPREAD = "throughput-spread"         # Fig 10
    REDUNDANT_TRANSFER = "redundant-transfer"       # Fig 12


@dataclass(frozen=True)
class Alert:
    kind: AlertKind
    time: float
    pandaid: int
    site: str
    detail: str
    severity: float  # 0..1, for ranking

    def __str__(self) -> str:
        return (
            f"[{self.kind.value}] job {self.pandaid} @ {self.site or '?'}: "
            f"{self.detail} (sev {self.severity:.2f})"
        )


@dataclass
class MonitorConfig:
    """Alerting thresholds (paper-derived defaults)."""

    #: transfer-time share of queue above which a job alerts (Fig 9's T)
    transfer_time_threshold: float = 0.75
    #: throughput max/min spread above which a job alerts (Fig 10: 17.7x)
    spread_threshold: float = 10.0
    #: minimum transfers before sequential staging is reportable
    min_transfers_for_sequential: int = 2
    #: time window for online redundancy detection
    redundancy_ttl: float = 6 * 3600.0
    #: decay factor for per-site alert rates
    ewma_alpha: float = 0.1


class StreamingAnomalyMonitor:
    """Consume events as they happen; raise alerts; track site health."""

    def __init__(self, config: Optional[MonitorConfig] = None) -> None:
        self.config = config or MonitorConfig()
        self.alerts: List[Alert] = []
        self.jobs_observed = 0
        self.transfers_observed = 0
        #: site -> EWMA of alerts-per-observed-job
        self._site_rate: Dict[str, float] = {}
        #: (scope, lfn, dest) -> last transfer start, for redundancy
        self._recent: Dict[Tuple[str, str, str], float] = {}

    # -- job-level observation ---------------------------------------------------

    def observe_match(self, match: JobMatch) -> List[Alert]:
        """Feed one matched job; returns the alerts it raised."""
        self.jobs_observed += 1
        cfg = self.config
        raised: List[Alert] = []
        tl = build_timeline(match)
        site = match.job.computingsite
        now = match.job.endtime or 0.0
        if tl is None:
            self._note(site, 0)
            return raised

        frac = tl.queue_transfer_fraction()
        if frac >= cfg.transfer_time_threshold:
            raised.append(Alert(
                kind=AlertKind.HIGH_TRANSFER_TIME, time=now,
                pandaid=tl.pandaid, site=site,
                detail=f"{frac:.0%} of queue spent transferring",
                severity=min(1.0, frac),
            ))

        spanning = tl.transfers_spanning_execution()
        if spanning:
            share = max(x.duration for x in spanning) / max(tl.lifetime, 1e-9)
            raised.append(Alert(
                kind=AlertKind.SPANNING_TRANSFER, time=now,
                pandaid=tl.pandaid, site=site,
                detail=f"{len(spanning)} transfer(s) span queue and wall",
                severity=min(1.0, share),
            ))

        if len(tl.transfers) >= cfg.min_transfers_for_sequential:
            if tl.transfers_are_sequential():
                raised.append(Alert(
                    kind=AlertKind.SEQUENTIAL_STAGING, time=now,
                    pandaid=tl.pandaid, site=site,
                    detail=f"{len(tl.transfers)} transfers never overlapped",
                    severity=0.5,
                ))
            spread = tl.throughput_spread()
            if spread >= cfg.spread_threshold:
                raised.append(Alert(
                    kind=AlertKind.THROUGHPUT_SPREAD, time=now,
                    pandaid=tl.pandaid, site=site,
                    detail=f"throughput varied {spread:.1f}x within one job",
                    severity=min(1.0, spread / (cfg.spread_threshold * 4)),
                ))

        self.alerts.extend(raised)
        self._note(site, len(raised))
        return raised

    # -- transfer-level observation --------------------------------------------------

    def observe_transfer(self, record: TransferRecord) -> Optional[Alert]:
        """Feed one raw transfer record (for online redundancy checks)."""
        self.transfers_observed += 1
        if not record.is_download:
            return None
        key = (record.scope, record.lfn, record.destination_site)
        last = self._recent.get(key)
        self._recent[key] = record.starttime
        if last is not None and 0 < record.starttime - last < self.config.redundancy_ttl:
            alert = Alert(
                kind=AlertKind.REDUNDANT_TRANSFER, time=record.starttime,
                pandaid=0, site=record.destination_site,
                detail=(
                    f"{record.scope}:{record.lfn} re-copied "
                    f"{record.starttime - last:.0f}s after previous copy"
                ),
                severity=0.6,
            )
            self.alerts.append(alert)
            return alert
        return None

    # -- health state ---------------------------------------------------------------

    def _note(self, site: str, n_alerts: int) -> None:
        if not site:
            return
        a = self.config.ewma_alpha
        prev = self._site_rate.get(site, 0.0)
        self._site_rate[site] = (1 - a) * prev + a * float(n_alerts)

    def site_alert_rate(self, site: str) -> float:
        return self._site_rate.get(site, 0.0)

    def worst_sites(self, top: int = 5) -> List[Tuple[str, float]]:
        ranked = sorted(self._site_rate.items(), key=lambda kv: -kv[1])
        return [(s, r) for s, r in ranked[:top] if r > 0]

    def counts_by_kind(self) -> Dict[AlertKind, int]:
        out: Dict[AlertKind, int] = {k: 0 for k in AlertKind}
        for a in self.alerts:
            out[a.kind] += 1
        return out

    def summary(self) -> str:
        counts = self.counts_by_kind()
        lines = [
            f"observed: {self.jobs_observed} matched jobs, "
            f"{self.transfers_observed} transfers; {len(self.alerts)} alerts"
        ]
        for kind, n in counts.items():
            if n:
                lines.append(f"  {kind.value:<22s} {n}")
        worst = self.worst_sites()
        if worst:
            lines.append("  hottest sites: " + ", ".join(
                f"{s} ({r:.2f})" for s, r in worst))
        return "\n".join(lines)
