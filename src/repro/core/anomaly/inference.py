"""Unknown-site inference from RM2 matches (Fig 12 / Table 3).

The Table 3 case study recovers an UNKNOWN destination: three transfers
with lost destinations pair byte-for-byte with three later transfers of
the same files whose destination is recorded, so the missing label must
be that destination — "effectively converting uncertain cases into
exact ones".  Two inference routes are implemented:

* **job-based** — an RM2-matched *download* with UNKNOWN destination
  must have landed at the matched job's computing site (that is the
  only reason RM2 accepted it);
* **twin-based** — an UNKNOWN-endpoint record whose (scope, lfn,
  file_size) exactly matches a known-endpoint record nearby in time
  inherits the known label, as in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.matching.base import JobMatch
from repro.telemetry.records import UNKNOWN_SITE, TransferRecord


@dataclass(frozen=True)
class SiteInference:
    """One reconstructed site label."""

    row_id: int
    field: str  # "source_site" | "destination_site"
    inferred_site: str
    method: str  # "job" | "twin"
    evidence: str

    def __str__(self) -> str:
        return (
            f"transfer {self.row_id}: {self.field} := {self.inferred_site} "
            f"[{self.method}] ({self.evidence})"
        )


def infer_from_matches(matches: Sequence[JobMatch]) -> List[SiteInference]:
    """Job-based inference over RM2-matched transfers."""
    out: List[SiteInference] = []
    for m in matches:
        site = m.job.computingsite
        for t in m.transfers:
            if t.is_download and t.destination_site == UNKNOWN_SITE:
                out.append(
                    SiteInference(
                        row_id=t.row_id,
                        field="destination_site",
                        inferred_site=site,
                        method="job",
                        evidence=f"download matched to job {m.job.pandaid} at {site}",
                    )
                )
            elif t.is_upload and t.source_site == UNKNOWN_SITE:
                out.append(
                    SiteInference(
                        row_id=t.row_id,
                        field="source_site",
                        inferred_site=site,
                        method="job",
                        evidence=f"upload matched to job {m.job.pandaid} at {site}",
                    )
                )
    return out


def infer_from_twins(
    transfers: Sequence[TransferRecord],
    window_seconds: float = 24 * 3600.0,
) -> List[SiteInference]:
    """Twin-based inference: pair UNKNOWN-destination records with
    identically-sized same-file records whose destination is known."""
    by_identity: Dict[Tuple[str, str, int], List[TransferRecord]] = {}
    for t in transfers:
        by_identity.setdefault((t.scope, t.lfn, t.file_size), []).append(t)

    out: List[SiteInference] = []
    for identity, recs in by_identity.items():
        unknowns = [r for r in recs if r.destination_site == UNKNOWN_SITE]
        knowns = [r for r in recs if r.destination_site != UNKNOWN_SITE]
        if not unknowns or not knowns:
            continue
        for u in unknowns:
            # A true twin is the *same operation* repeated (Fig 12 pairs
            # two Analysis Downloads); different activities on the same
            # file are different legs of one chain (e.g. a tape recall
            # followed by the WAN transfer), not duplicates.
            candidates = [
                k for k in knowns
                if k.activity == u.activity
                and abs(k.starttime - u.starttime) <= window_seconds
            ]
            # Prefer twins sharing the recorded source: the Fig 12 pair
            # shares CERN-PROD as source on all six transfers.
            same_source = [k for k in candidates if k.source_site == u.source_site]
            if same_source:
                candidates = same_source
            if not candidates:
                continue
            destinations = {k.destination_site for k in candidates}
            if len(destinations) != 1:
                continue  # ambiguous — inferring would be a guess
            twin = min(candidates, key=lambda k: abs(k.starttime - u.starttime))
            gap = abs(twin.starttime - u.starttime)
            out.append(
                SiteInference(
                    row_id=u.row_id,
                    field="destination_site",
                    inferred_site=twin.destination_site,
                    method="twin",
                    evidence=(
                        f"size-identical twin {twin.row_id} "
                        f"({identity[2]} bytes, {gap:.0f}s apart)"
                    ),
                )
            )
    return out


def infer_unknown_sites(
    matches: Sequence[JobMatch],
    transfers: Sequence[TransferRecord],
    twin_window_seconds: float = 24 * 3600.0,
) -> List[SiteInference]:
    """Combined inference; job-based takes precedence over twin-based."""
    job_based = infer_from_matches(matches)
    claimed = {(i.row_id, i.field) for i in job_based}
    twins = [
        i for i in infer_from_twins(transfers, twin_window_seconds)
        if (i.row_id, i.field) not in claimed
    ]
    return job_based + twins


def inference_accuracy(
    inferences: Sequence[SiteInference],
    true_sites: Dict[int, Tuple[str, str]],
) -> float:
    """Score inferences against ground truth: ``true_sites`` maps
    row_id -> (true source, true destination)."""
    if not inferences:
        return 0.0
    correct = 0
    for inf in inferences:
        truth = true_sites.get(inf.row_id)
        if truth is None:
            continue
        expected = truth[0] if inf.field == "source_site" else truth[1]
        if inf.inferred_site == expected:
            correct += 1
    return correct / len(inferences)
