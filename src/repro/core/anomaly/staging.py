"""Prolonged staging detection (Fig 11, §5.3).

Flags matched jobs whose queue time was dominated by transfers, and the
stronger anomaly of transfers spanning from the queuing phase into
execution ("anomalous operation likely caused by errors").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.analysis.timeline import JobTimeline, build_timeline
from repro.core.matching.base import JobMatch


class StagingSeverity(enum.IntEnum):
    ELEVATED = 1    # transfer-time fraction above the threshold
    DOMINANT = 2    # transfers dominate the queue (>75%, the Fig 9 tail)
    SPANNING = 3    # a transfer crosses into execution (the Fig 11 case)


@dataclass
class StagingAnomaly:
    pandaid: int
    severity: StagingSeverity
    queue_fraction: float
    status: str
    error_code: int
    n_spanning: int
    timeline: JobTimeline

    def __str__(self) -> str:
        return (
            f"job {self.pandaid}: staging {self.severity.name.lower()} "
            f"({self.queue_fraction:.0%} of queue, {self.n_spanning} spanning, "
            f"status={self.status})"
        )


def classify_staging(match: JobMatch, elevated_threshold: float = 0.10,
                     dominant_threshold: float = 0.75) -> Optional[StagingAnomaly]:
    """Classify one matched job; None when staging was unremarkable."""
    tl = build_timeline(match)
    if tl is None:
        return None
    frac = tl.queue_transfer_fraction()
    spanning = tl.transfers_spanning_execution()
    if spanning:
        severity = StagingSeverity.SPANNING
    elif frac >= dominant_threshold:
        severity = StagingSeverity.DOMINANT
    elif frac >= elevated_threshold:
        severity = StagingSeverity.ELEVATED
    else:
        return None
    return StagingAnomaly(
        pandaid=match.job.pandaid,
        severity=severity,
        queue_fraction=frac,
        status=match.job.status,
        error_code=match.job.error_code,
        n_spanning=len(spanning),
        timeline=tl,
    )


def find_staging_anomalies(
    matches: Sequence[JobMatch],
    elevated_threshold: float = 0.10,
    dominant_threshold: float = 0.75,
) -> List[StagingAnomaly]:
    out = []
    for m in matches:
        a = classify_staging(m, elevated_threshold, dominant_threshold)
        if a is not None:
            out.append(a)
    out.sort(key=lambda a: (-int(a.severity), -a.queue_fraction))
    return out


def failure_rate_by_severity(anomalies: Sequence[StagingAnomaly]) -> dict:
    """Failed fraction per severity class — quantifying the paper's
    'most of these extreme cases correspond to failed jobs'."""
    out = {}
    for sev in StagingSeverity:
        group = [a for a in anomalies if a.severity is sev]
        if group:
            out[sev] = sum(1 for a in group if a.status == "failed") / len(group)
    return out
