"""Bandwidth under-utilization detection (Fig 10, §5.4).

Two signatures, observable purely from matched transfer timelines:

* **sequential staging** — a job's transfers never overlap although the
  site link could have carried them in parallel ("the underlying file
  transfer mechanism doesn't enable parallel file transfers at every
  site");
* **throughput spread** — transfers on the same link within one job
  differ by large factors (17.7x in Fig 10), evidence the link was not
  utilised consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.analysis.timeline import JobTimeline, build_timeline
from repro.core.matching.base import JobMatch


@dataclass
class UnderutilizationFinding:
    pandaid: int
    sequential: bool
    throughput_spread: float
    n_transfers: int
    total_bytes: int
    #: time the job *could* have saved with perfect overlap: the gap
    #: between the serial sum of durations and the longest single one.
    parallelism_headroom_seconds: float
    timeline: JobTimeline

    def __str__(self) -> str:
        kind = "sequential" if self.sequential else "spread"
        return (
            f"job {self.pandaid}: {kind} staging, spread {self.throughput_spread:.1f}x, "
            f"headroom {self.parallelism_headroom_seconds:.0f}s over {self.n_transfers} transfers"
        )


def assess_job(
    match: JobMatch,
    min_transfers: int = 2,
    spread_threshold: float = 5.0,
) -> Optional[UnderutilizationFinding]:
    tl = build_timeline(match)
    if tl is None or len(tl.transfers) < min_transfers:
        return None
    sequential = tl.transfers_are_sequential()
    spread = tl.throughput_spread()
    if not sequential and spread < spread_threshold:
        return None
    durations = [t.duration for t in tl.transfers]
    headroom = max(0.0, sum(durations) - max(durations)) if sequential else 0.0
    return UnderutilizationFinding(
        pandaid=match.job.pandaid,
        sequential=sequential,
        throughput_spread=spread,
        n_transfers=len(tl.transfers),
        total_bytes=tl.total_transfer_bytes,
        parallelism_headroom_seconds=headroom,
        timeline=tl,
    )


def find_underutilization(
    matches: Sequence[JobMatch],
    min_transfers: int = 2,
    spread_threshold: float = 5.0,
) -> List[UnderutilizationFinding]:
    out = []
    for m in matches:
        f = assess_job(m, min_transfers, spread_threshold)
        if f is not None:
            out.append(f)
    out.sort(key=lambda f: -f.parallelism_headroom_seconds)
    return out


def total_headroom_seconds(findings: Sequence[UnderutilizationFinding]) -> float:
    """Aggregate queue time recoverable by enabling parallel stage-in."""
    return sum(f.parallelism_headroom_seconds for f in findings)
