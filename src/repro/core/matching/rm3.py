"""RM3 — a scored probabilistic matcher beyond the paper's rule ladder.

The paper's ladder relaxes Algorithm 1 rule by rule (Exact → RM1 drops
the size check → RM2 tolerates unknown sites).  Each step is all or
nothing, and all three share the same *candidate join*: a transfer must
match a PanDA file row on (jeditaskid, lfn, dataset, proddblock, scope,
**file_size**) exactly.  Degraded telemetry records sizes imprecisely
("file sizes are not recorded precisely down to the byte level", §4.3;
Direct-IO streams log partial-read byte counts), so for a large slice
of true pairs the join itself never fires and no amount of post-join
relaxation can recover them.

RM3 therefore relaxes the join — attribute equality *except*
``file_size`` — and replaces the binary rules with a per-candidate
likelihood score and a decision threshold, so each surviving defect
degrades the score instead of vetoing the match.

Score model (all factors in ``[0, 1]``, combined by multiplication)::

    score(t, rel, job) = (f_time(t, job) * f_site(t, job)) * f_size(rel)

* ``f_time = tau / (tau + lead)`` with ``lead = max(0, creationtime -
  starttime)``: transfers for a job start once it exists, so a start
  far *before* the job's creation is evidence of an unrelated
  (background) movement of the same file.  Condition (1) of Algorithm 1
  — ``starttime < endtime`` — stays a *hard* gate, which is also what
  keeps the streaming path bit-identical: a job closes only when the
  watermark passes its endtime, so every transfer that can pass the
  gate has arrived by close time.
* ``f_site`` ∈ {1, ``site_prior``, ``site_contra``}: 1 when the
  relevant endpoint (download destination / upload source) equals the
  job's computing site, the prior when the label is missing or invalid
  (RM2's uncertainty, reusing :meth:`RM2Matcher._site_uncertain`), and
  the contradiction penalty when it names a different known site.
  Undirected records are gated out.
* ``f_size = rho / (rho + rel)`` where ``rel`` is the candidate's
  relative size mismatch against the file row that produced it in the
  join: ``|transfer size - file size| / max(file size, 1)``.  An exact
  size scores 1 (the Algorithm-1 join's pass); a 6% accounting drift
  scores ~0.89; a Direct-IO partial read of 15% of the file scores
  ~0.37.

Threshold semantics: a candidate is kept when ``score >= threshold``.
At ``threshold = 0`` every time-gated directed candidate survives —
and the relaxed join's candidates are a superset of the sized join's,
so RM3 at 0 ⊇ Exact/RM1/RM2.  Raising the threshold only removes
pairs, so recall is non-increasing in the threshold.  The committed
default is calibrated on the 8-day campaign
(``benchmarks/bench_matching_quality.py``) so RM3 dominates RM2 on
pair F1 across degradation severities.

Bit-identity discipline: the columnar kernel
(:meth:`repro.columnar.engine.ColumnarIndex._run_rm3`) must reproduce
this reference exactly, so the score uses only IEEE-deterministic
float64 operations (+, -, *, /, abs, comparisons — no
transcendentals), the product is associated ``(f_time * f_site) *
f_size`` in both engines, and integer operands are explicitly
converted to float *before* dividing — Python's int/int true division
rounds the exact rational, which can differ from NumPy's
convert-then-divide beyond 2**53.  The per-candidate ``rel`` follows
the join's first-occurrence dedup: when several file rows reach the
same transfer, the file row that enumerates first (insertion order —
identical in both engines) defines the mismatch.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.matching.rm2 import RM2Matcher
from repro.telemetry.records import JobRecord, TransferRecord

#: Decision threshold committed after calibration against ground truth
#: (see ``benchmarks/results/matching_quality.json``): keeps strict-site
#: candidates through realistic size drift, admits uncertain-site
#: candidates unless their size evidence is also weak, and always
#: rejects contradicting sites.
DEFAULT_RM3_THRESHOLD = 0.35


class RM3Matcher(RM2Matcher):
    """Scored matcher: time-proximity x site-prior x size-tolerance."""

    name = "rm3"
    #: Selects the size-relaxed candidate join (and the scored
    #: ``match_job_scored`` template path in ``BaseMatcher.run``).
    size_tolerant_join = True
    #: The binary whole-set size rule never applies to RM3.
    use_size_check = False

    def __init__(
        self,
        known_sites=None,
        threshold: float = DEFAULT_RM3_THRESHOLD,
        tau: float = 3600.0,
        rho: float = 0.5,
        site_prior: float = 0.6,
        site_contra: float = 0.05,
    ) -> None:
        super().__init__(known_sites)
        if not 0.0 <= threshold:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if tau <= 0 or rho <= 0:
            raise ValueError("tau and rho must be > 0")
        if not 0.0 <= site_contra <= site_prior <= 1.0:
            raise ValueError("need 0 <= site_contra <= site_prior <= 1")
        self.threshold = float(threshold)
        self.tau = float(tau)
        self.rho = float(rho)
        self.site_prior = float(site_prior)
        self.site_contra = float(site_contra)

    # -- feature terms ---------------------------------------------------------

    def time_feature(self, t: TransferRecord, job: JobRecord) -> float:
        """``tau / (tau + lead)``: decays with start-before-creation lead."""
        lead = max(0.0, job.creationtime - t.starttime)
        return self.tau / (self.tau + lead)

    def site_feature(self, t: TransferRecord, job: JobRecord) -> float:
        """1 on endpoint match, the prior when uncertain, else the penalty."""
        if t.is_download:
            label = t.destination_site
        elif t.is_upload:
            label = t.source_site
        else:
            return 0.0
        if label == job.computingsite:
            return 1.0
        if self._site_uncertain(label):
            return self.site_prior
        return self.site_contra

    def size_feature(self, rel: float) -> float:
        """``rho / (rho + rel)`` on the candidate's relative size mismatch."""
        return self.rho / (self.rho + rel)

    def score(self, t: TransferRecord, rel: float, job: JobRecord) -> float:
        """One candidate's match likelihood (association order is part
        of the bit-identity contract with the columnar kernel)."""
        return (self.time_feature(t, job) * self.site_feature(t, job)) * self.size_feature(rel)

    # -- template override -----------------------------------------------------

    def match_job_scored(
        self, job: JobRecord, pairs: Sequence[Tuple[TransferRecord, float]]
    ) -> List[TransferRecord]:
        """Scored decision over the size-relaxed (candidate, rel) pairs."""
        end = job.endtime
        if end is None:
            return []
        return [
            t
            for t, rel in pairs
            if t.starttime < end
            and (t.is_download or t.is_upload)
            and self.score(t, rel, job) >= self.threshold
        ]


__all__ = ["RM3Matcher", "DEFAULT_RM3_THRESHOLD"]
