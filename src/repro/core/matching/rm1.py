"""RM1 — the first relaxed matching level (§4.3).

Identical to exact matching except the whole-set file-size check is
dropped.  This recovers (1) jobs whose transfer set is a *subset* of
their inputs (some files were already at the site, so the staged total
undershoots ``ninputfilebytes``) and (2) jobs rejected purely because
byte totals were recorded imprecisely.
"""

from __future__ import annotations

from repro.core.matching.base import BaseMatcher


class RM1Matcher(BaseMatcher):
    """Exact minus the size check."""

    name = "rm1"
    use_size_check = False
