"""Job ↔ transfer matching (Algorithm 1, relaxed and scored variants)."""

from repro.core.matching.base import (
    CandidateIndex,
    JobMatch,
    MatchResult,
    MatchingReport,
    TransferClass,
)
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.rm1 import RM1Matcher
from repro.core.matching.rm2 import RM2Matcher
from repro.core.matching.rm3 import DEFAULT_RM3_THRESHOLD, RM3Matcher
from repro.core.matching.subset import SubsetMatcher
from repro.core.matching.pipeline import MatchingPipeline
from repro.core.matching.evaluation import (
    MatchEvaluation,
    SiteRecovery,
    evaluate_against_truth,
    recover_unknown_sites,
    visible_true_pairs,
)

__all__ = [
    "CandidateIndex",
    "JobMatch",
    "MatchResult",
    "TransferClass",
    "ExactMatcher",
    "RM1Matcher",
    "RM2Matcher",
    "RM3Matcher",
    "DEFAULT_RM3_THRESHOLD",
    "SubsetMatcher",
    "MatchingPipeline",
    "MatchingReport",
    "MatchEvaluation",
    "SiteRecovery",
    "evaluate_against_truth",
    "recover_unknown_sites",
    "visible_true_pairs",
]
