"""Job ↔ transfer matching (Algorithm 1 and relaxed variants)."""

from repro.core.matching.base import (
    CandidateIndex,
    JobMatch,
    MatchResult,
    MatchingReport,
    TransferClass,
)
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.rm1 import RM1Matcher
from repro.core.matching.rm2 import RM2Matcher
from repro.core.matching.subset import SubsetMatcher
from repro.core.matching.pipeline import MatchingPipeline
from repro.core.matching.evaluation import MatchEvaluation, evaluate_against_truth

__all__ = [
    "CandidateIndex",
    "JobMatch",
    "MatchResult",
    "TransferClass",
    "ExactMatcher",
    "RM1Matcher",
    "RM2Matcher",
    "SubsetMatcher",
    "MatchingPipeline",
    "MatchingReport",
    "MatchEvaluation",
    "evaluate_against_truth",
]
