"""The end-to-end matching pipeline (Fig 4's analysis workflow).

Reproduces §4.2's procedure: pre-select jobs, file rows, and transfer
events within a common time window through the querying module (jobs
must *complete* inside the window — still-running jobs are invisible to
the query), build the candidate join once, then run each matching
method over the same pre-selection.

Since the plan/execute refactor the pipeline is a thin façade over
:mod:`repro.exec`: it turns ``run(t0, t1)`` into a
:class:`~repro.exec.plan.WindowPlan`, materializes it through a shared
:class:`~repro.exec.artifacts.ArtifactCache` (so repeated runs, window
sweeps, and multi-method analyses reuse one pre-selection and one
:class:`~repro.core.matching.base.CandidateIndex`), and hands
scheduling to an :class:`~repro.exec.executor.Executor` — serial by
default, process-parallel when the caller passes one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.columnar import validate_engine
from repro.core.matching.base import BaseMatcher, MatchingReport
from repro.exec.artifacts import ArtifactCache, WindowArtifacts
from repro.exec.executor import Executor, SerialExecutor
from repro.exec.plan import WindowPlan
from repro.metastore.opensearch import OpenSearchLike
from repro.obs import Obs, use_obs
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord

__all__ = ["MatchingPipeline", "MatchingReport"]


class MatchingPipeline:
    """Pre-select, join, and match.

    Parameters
    ----------
    source:
        The query layer holding degraded telemetry.
    known_sites:
        Valid site names (for RM2's invalid-label detection).
    user_jobs_only:
        The paper analyses the user-job population; production jobs can
        be included for ablations.
    cache:
        Artifact cache to share with other consumers; a private one is
        created when omitted.
    executor:
        Default scheduling policy for :meth:`run` / :meth:`sweep`; a
        :class:`SerialExecutor` over ``cache`` when omitted.
    engine:
        Join engine — ``"row"`` (dict join + Python loops) or
        ``"columnar"`` (interned packs + vectorized kernels, the
        default).  Output is bit-identical either way.
    obs:
        Observability bundle (:class:`~repro.obs.Obs`).  When given it
        is installed as the ambient context for the duration of every
        :meth:`run` / :meth:`sweep`, so the metastore, artifact,
        kernel, and executor instrumentation underneath records into
        it; when omitted the ambient context (disabled by default) is
        left alone.  Instrumentation never alters results.
    """

    def __init__(
        self,
        source: OpenSearchLike,
        known_sites: Optional[Set[str]] = None,
        user_jobs_only: bool = True,
        cache: Optional[ArtifactCache] = None,
        executor: Optional[Executor] = None,
        engine: Optional[str] = None,
        obs: Optional[Obs] = None,
    ) -> None:
        self.source = source
        self.known_sites = known_sites or set()
        self.user_jobs_only = user_jobs_only
        self.engine = validate_engine(engine) if engine is not None else None
        self.obs = obs
        self.cache = cache if cache is not None else ArtifactCache(source, engine=engine)
        self.executor = (
            executor
            if executor is not None
            else SerialExecutor(cache=self.cache, engine=engine)
        )

    # -- planning / materialization (the common-time-window step of §4.2) --------

    def plan(self, t0: float, t1: float) -> WindowPlan:
        return WindowPlan(t0, t1, self.user_jobs_only)

    def artifacts(self, t0: float, t1: float) -> WindowArtifacts:
        """Materialized pre-selection for one window (cached)."""
        return self.cache.get(self.plan(t0, t1))

    def preselect_jobs(self, t0: float, t1: float) -> List[JobRecord]:
        if self.user_jobs_only:
            return self.source.user_jobs_completed_in(t0, t1)
        return self.source.jobs_completed_in(t0, t1)

    def preselect_transfers(self, t0: float, t1: float) -> List[TransferRecord]:
        return self.source.transfers_started_in(t0, t1)

    def preselect_files(self, jobs: Sequence[JobRecord]) -> List[FileRecord]:
        """File rows of the selected jobs (PanDA side of the join).

        One batched metastore call for the whole job set — the old
        per-job loop issued one query per job.
        """
        return self.source.files_of_jobs([job.pandaid for job in jobs])

    # -- execution -------------------------------------------------------------------

    def run(
        self,
        t0: float,
        t1: float,
        matchers: Optional[Sequence[BaseMatcher]] = None,
        executor: Optional[Executor] = None,
        engine: Optional[str] = None,
    ) -> MatchingReport:
        return self.sweep(
            [self.plan(t0, t1)], matchers=matchers, executor=executor, engine=engine
        )[0]

    def sweep(
        self,
        plans: Sequence[WindowPlan],
        matchers: Optional[Sequence[BaseMatcher]] = None,
        executor: Optional[Executor] = None,
        engine: Optional[str] = None,
    ) -> List[MatchingReport]:
        """Execute many plans through the (possibly parallel) executor."""
        ex = executor if executor is not None else self.executor
        with use_obs(self.obs) as obs:
            with obs.tracer.span("pipeline.sweep", cat="executor") as sp:
                sp.set("n_plans", len(plans))
                sp.set("workers", ex.workers)
                return ex.execute(
                    self.source,
                    plans,
                    matchers=matchers,
                    known_sites=self.known_sites,
                    engine=engine or self.engine,
                )
