"""The end-to-end matching pipeline (Fig 4's analysis workflow).

Reproduces §4.2's procedure: pre-select jobs, file rows, and transfer
events within a common time window through the querying module (jobs
must *complete* inside the window — still-running jobs are invisible to
the query), build the candidate join once, then run each matching
method over the same pre-selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.matching.base import BaseMatcher, CandidateIndex, MatchResult
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.rm1 import RM1Matcher
from repro.core.matching.rm2 import RM2Matcher
from repro.metastore.opensearch import OpenSearchLike
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord


@dataclass
class MatchingReport:
    """All methods over one window, plus the pre-selection sizes."""

    window: tuple[float, float]
    n_jobs: int
    n_transfers: int
    n_transfers_with_taskid: int
    results: Dict[str, MatchResult]

    def __getitem__(self, method: str) -> MatchResult:
        return self.results[method]

    @property
    def methods(self) -> List[str]:
        return list(self.results)


class MatchingPipeline:
    """Pre-select, join, and match.

    Parameters
    ----------
    source:
        The query layer holding degraded telemetry.
    known_sites:
        Valid site names (for RM2's invalid-label detection).
    user_jobs_only:
        The paper analyses the user-job population; production jobs can
        be included for ablations.
    """

    def __init__(
        self,
        source: OpenSearchLike,
        known_sites: Optional[Set[str]] = None,
        user_jobs_only: bool = True,
    ) -> None:
        self.source = source
        self.known_sites = known_sites or set()
        self.user_jobs_only = user_jobs_only

    # -- pre-selection (the common-time-window step of §4.2) ---------------------

    def preselect_jobs(self, t0: float, t1: float) -> List[JobRecord]:
        if self.user_jobs_only:
            return self.source.user_jobs_completed_in(t0, t1)
        return self.source.jobs_completed_in(t0, t1)

    def preselect_transfers(self, t0: float, t1: float) -> List[TransferRecord]:
        return self.source.transfers_started_in(t0, t1)

    def preselect_files(self, jobs: Sequence[JobRecord]) -> List[FileRecord]:
        """File rows of the selected jobs (PanDA side of the join)."""
        out: List[FileRecord] = []
        for job in jobs:
            out.extend(self.source.files_of_job(job.pandaid))
        return out

    # -- execution -------------------------------------------------------------------

    def run(
        self,
        t0: float,
        t1: float,
        matchers: Optional[Sequence[BaseMatcher]] = None,
    ) -> MatchingReport:
        jobs = self.preselect_jobs(t0, t1)
        transfers = self.preselect_transfers(t0, t1)
        files = self.preselect_files(jobs)
        index = CandidateIndex(files, transfers)
        n_with_taskid = sum(1 for t in transfers if t.has_jeditaskid)

        if matchers is None:
            matchers = [
                ExactMatcher(self.known_sites),
                RM1Matcher(self.known_sites),
                RM2Matcher(self.known_sites),
            ]
        results = {
            m.name: m.run(jobs, index, n_transfers_considered=n_with_taskid) for m in matchers
        }
        return MatchingReport(
            window=(t0, t1),
            n_jobs=len(jobs),
            n_transfers=len(transfers),
            n_transfers_with_taskid=n_with_taskid,
            results=results,
        )
