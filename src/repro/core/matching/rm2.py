"""RM2 — the second relaxed matching level (§4.3).

RM1 plus a relaxed site check: transfers whose relevant endpoint is
recorded as ``UNKNOWN`` — or with a name that is not a known site at
all — are retained instead of discarded, "recognizing that these site
labels may be incorrectly recorded in the metadata while still
corresponding to valid matches in the real system".

A transfer with a *valid but different* site still fails: RM2 tolerates
missing information, not contradicting information.
"""

from __future__ import annotations

from repro.core.matching.rm1 import RM1Matcher
from repro.telemetry.records import UNKNOWN_SITE, JobRecord, TransferRecord


class RM2Matcher(RM1Matcher):
    """RM1 with unknown/invalid site labels tolerated."""

    name = "rm2"

    def _site_uncertain(self, name: str) -> bool:
        """Is this label missing or invalid (rather than contradicting)?"""
        if not name or name == UNKNOWN_SITE:
            return True
        return bool(self.known_sites) and name not in self.known_sites

    def site_ok(self, t: TransferRecord, job: JobRecord) -> bool:
        if t.is_download:
            return (
                t.destination_site == job.computingsite
                or self._site_uncertain(t.destination_site)
            )
        if t.is_upload:
            return t.source_site == job.computingsite or self._site_uncertain(t.source_site)
        return False
