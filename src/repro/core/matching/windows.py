"""Time-window sensitivity analysis.

§4.2: "The selected period should be no shorter than the end-to-end
lifetime of the jobs of interest, typically spanning days or more,
since the query module only reports jobs that are completed before the
end of the interval, excluding all jobs still running at that time."

Two consequences are measurable:

* **coverage saturation** — matched-job counts grow with window length
  and saturate once windows exceed typical job lifetimes plus staging
  horizons;
* **boundary losses** — in a fixed-length *sliding* window, jobs whose
  transfers started before the window opens cannot be matched even
  though the jobs themselves are reported.

Both effects guide how an operator should size query windows; the
functions here quantify them for any source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.matching.base import BaseMatcher
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.pipeline import MatchingPipeline


@dataclass(frozen=True)
class WindowPoint:
    """Matching coverage for one window configuration."""

    t0: float
    t1: float
    n_jobs: int
    n_matched_jobs: int
    n_matched_transfers: int

    @property
    def length(self) -> float:
        return self.t1 - self.t0

    @property
    def job_match_rate(self) -> float:
        return self.n_matched_jobs / self.n_jobs if self.n_jobs else 0.0


def growing_window_curve(
    pipeline: MatchingPipeline,
    t0: float,
    t1: float,
    n_points: int = 6,
    matcher: Optional[BaseMatcher] = None,
) -> List[WindowPoint]:
    """Coverage as the window grows from t0: the saturation curve.

    Every point starts at ``t0`` and extends to a larger fraction of
    [t0, t1]; the last point is the full window.
    """
    if n_points < 2:
        raise ValueError("need at least two points")
    out: List[WindowPoint] = []
    for k in range(1, n_points + 1):
        end = t0 + (t1 - t0) * k / n_points
        m = matcher or ExactMatcher(pipeline.known_sites)
        report = pipeline.run(t0, end, matchers=[m])
        result = report[m.name]
        out.append(WindowPoint(
            t0=t0, t1=end,
            n_jobs=report.n_jobs,
            n_matched_jobs=result.n_matched_jobs,
            n_matched_transfers=result.n_matched_transfers,
        ))
    return out


def sliding_window_curve(
    pipeline: MatchingPipeline,
    t0: float,
    t1: float,
    window_length: float,
    step: Optional[float] = None,
    matcher: Optional[BaseMatcher] = None,
) -> List[WindowPoint]:
    """Coverage of fixed-length windows sliding across [t0, t1]."""
    if window_length <= 0:
        raise ValueError("window_length must be positive")
    step = step or window_length
    out: List[WindowPoint] = []
    start = t0
    while start + window_length <= t1 + 1e-9:
        m = matcher or ExactMatcher(pipeline.known_sites)
        report = pipeline.run(start, start + window_length, matchers=[m])
        result = report[m.name]
        out.append(WindowPoint(
            t0=start, t1=start + window_length,
            n_jobs=report.n_jobs,
            n_matched_jobs=result.n_matched_jobs,
            n_matched_transfers=result.n_matched_transfers,
        ))
        start += step
    return out


def saturation_ratio(curve: Sequence[WindowPoint]) -> float:
    """How much of full-window coverage the half-length window reaches.

    Values well below 1 confirm §4.2: short windows lose matches
    because job-transfer pairs straddle the boundary.
    """
    if len(curve) < 2:
        return 1.0
    full = curve[-1].n_matched_jobs
    half = curve[len(curve) // 2 - 1].n_matched_jobs
    return half / full if full else 1.0
