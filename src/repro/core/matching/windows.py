"""Time-window sensitivity analysis.

§4.2: "The selected period should be no shorter than the end-to-end
lifetime of the jobs of interest, typically spanning days or more,
since the query module only reports jobs that are completed before the
end of the interval, excluding all jobs still running at that time."

Two consequences are measurable:

* **coverage saturation** — matched-job counts grow with window length
  and saturate once windows exceed typical job lifetimes plus staging
  horizons;
* **boundary losses** — in a fixed-length *sliding* window, jobs whose
  transfers started before the window opens cannot be matched even
  though the jobs themselves are reported.

Both effects guide how an operator should size query windows; the
functions here quantify them for any source.

Sweeps are expressed as :class:`~repro.exec.plan.WindowPlan` lists and
executed through the pipeline's executor, so every window's
pre-selection and candidate join is materialized once (and the whole
sweep fans across cores when the caller supplies a
:class:`~repro.exec.executor.ParallelExecutor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.matching.base import BaseMatcher, MatchingReport
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.pipeline import MatchingPipeline
from repro.exec.executor import Executor
from repro.exec.plan import WindowPlan, growing_plans, sliding_plans


@dataclass(frozen=True)
class WindowPoint:
    """Matching coverage for one window configuration."""

    t0: float
    t1: float
    n_jobs: int
    n_matched_jobs: int
    n_matched_transfers: int

    @property
    def length(self) -> float:
        return self.t1 - self.t0

    @property
    def job_match_rate(self) -> float:
        return self.n_matched_jobs / self.n_jobs if self.n_jobs else 0.0


def _sweep_points(
    pipeline: MatchingPipeline,
    plans: Sequence[WindowPlan],
    matcher: Optional[BaseMatcher],
    executor: Optional[Executor],
) -> List[WindowPoint]:
    m = matcher or ExactMatcher(pipeline.known_sites)
    reports = pipeline.sweep(plans, matchers=[m], executor=executor)
    out: List[WindowPoint] = []
    for plan, report in zip(plans, reports):
        result = report[m.name]
        out.append(WindowPoint(
            t0=plan.t0, t1=plan.t1,
            n_jobs=report.n_jobs,
            n_matched_jobs=result.n_matched_jobs,
            n_matched_transfers=result.n_matched_transfers,
        ))
    return out


def growing_window_curve(
    pipeline: MatchingPipeline,
    t0: float,
    t1: float,
    n_points: int = 6,
    matcher: Optional[BaseMatcher] = None,
    executor: Optional[Executor] = None,
) -> List[WindowPoint]:
    """Coverage as the window grows from t0: the saturation curve.

    Every point starts at ``t0`` and extends to a larger fraction of
    [t0, t1]; the last point is the full window.
    """
    plans = growing_plans(t0, t1, n_points, pipeline.user_jobs_only)
    return _sweep_points(pipeline, plans, matcher, executor)


def sliding_window_curve(
    pipeline: MatchingPipeline,
    t0: float,
    t1: float,
    window_length: float,
    step: Optional[float] = None,
    matcher: Optional[BaseMatcher] = None,
    executor: Optional[Executor] = None,
) -> List[WindowPoint]:
    """Coverage of fixed-length windows sliding across [t0, t1]."""
    plans = sliding_plans(t0, t1, window_length, step, pipeline.user_jobs_only)
    return _sweep_points(pipeline, plans, matcher, executor)


def multi_method_sweep(
    pipeline: MatchingPipeline,
    plans: Sequence[WindowPlan],
    matchers: Optional[Sequence[BaseMatcher]] = None,
    executor: Optional[Executor] = None,
) -> List[MatchingReport]:
    """All methods over many windows, one materialization per window."""
    return pipeline.sweep(plans, matchers=matchers, executor=executor)


def saturation_ratio(curve: Sequence[WindowPoint]) -> float:
    """How much of full-window coverage the half-length window reaches.

    Values well below 1 confirm §4.2: short windows lose matches
    because job-transfer pairs straddle the boundary.
    """
    if len(curve) < 2:
        return 1.0
    full = curve[-1].n_matched_jobs
    half = curve[len(curve) // 2 - 1].n_matched_jobs
    return half / full if full else 1.0
