"""Subset matching — the refinement the paper declines to build.

§4.2: "this filtering step treats T'_j as a whole set rather than
solving the underlying NP-hard problem of subset selection with a
combinatorial method. In practice, however, the number of candidate
transfers per job is typically small, making this approach
computationally feasible."

The observation cuts the other way too: *because* candidate sets are
small, exact subset selection is also feasible.  :class:`SubsetMatcher`
finds a subset of T'_j whose byte total equals ``ninputfilebytes`` or
``noutputfilebytes`` exactly, using per-lfn grouping plus bounded
search.  It recovers the case that defeats exact matching — a polluted
candidate set containing the true transfers plus duplicates (Fig 12) —
without RM1's blanket acceptance of every candidate.

Complexity guard: per job, search is capped at ``max_nodes`` expansion
steps; beyond it the matcher falls back to the whole-set rule, so a
pathological job cannot stall the pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.matching.base import BaseMatcher
from repro.telemetry.records import JobRecord, TransferRecord


class SubsetMatcher(BaseMatcher):
    """Exact subset-sum selection over the candidate set.

    The search works per distinct lfn: the true transfer set contains
    each input file at most once (uploads: each output file once), so a
    valid subset picks **at most one candidate per lfn**.  That turns
    subset-sum into a product over per-lfn choices, which bounded DFS
    with byte-total memoisation solves quickly at realistic sizes.
    """

    name = "subset"
    use_size_check = True  # only used by the fallback path

    def __init__(self, known_sites=None, max_nodes: int = 20_000) -> None:
        super().__init__(known_sites)
        self.max_nodes = int(max_nodes)
        #: Budget-exhaustion count.  The matcher's filter is otherwise a
        #: pure function of (job, candidates), so executor workers can
        #: run pickled copies freely — but this counter is then
        #: per-process: read it only on serially-run instances, and
        #: call :meth:`reset_stats` between windows when comparing.
        self.fallbacks = 0

    def reset_stats(self) -> None:
        self.fallbacks = 0

    def select_job(self, job: JobRecord, kept: List[TransferRecord]) -> List[TransferRecord]:
        """Subset-sum selection over the time/site-filtered candidates.

        Overriding the set-level hook (rather than :meth:`match_job`)
        keeps the candidate filtering in one place and lets the
        columnar engine drive this matcher from its vectorized
        time/site kernels.
        """
        if not kept:
            return []

        for target in (job.ninputfilebytes, job.noutputfilebytes):
            if target <= 0:
                continue
            subset = self._find_subset(kept, target)
            if subset is not None:
                return subset

        # Search budget exhausted or no exact subset: whole-set rule.
        total = sum(t.file_size for t in kept)
        if self.size_ok(total, job):
            return kept
        return []

    # -- bounded per-lfn DFS ------------------------------------------------------

    def _find_subset(
        self, kept: Sequence[TransferRecord], target: int
    ) -> Optional[List[TransferRecord]]:
        by_lfn: Dict[str, List[TransferRecord]] = {}
        for t in kept:
            by_lfn.setdefault(t.lfn, []).append(t)
        groups: List[List[TransferRecord]] = list(by_lfn.values())
        # Deterministic order: biggest candidate first prunes faster.
        groups.sort(key=lambda g: -max(t.file_size for t in g))

        # Suffix maxima: the most bytes still obtainable from group i on.
        suffix_max = [0] * (len(groups) + 1)
        for i in range(len(groups) - 1, -1, -1):
            suffix_max[i] = suffix_max[i + 1] + max(t.file_size for t in groups[i])

        budget = {"nodes": 0}
        seen: set[Tuple[int, int]] = set()

        def dfs(i: int, remaining: int, acc: List[TransferRecord]) -> Optional[List[TransferRecord]]:
            if remaining == 0:
                return list(acc)
            if i == len(groups) or remaining < 0 or remaining > suffix_max[i]:
                return None
            budget["nodes"] += 1
            if budget["nodes"] > self.max_nodes:
                raise _BudgetExceeded()
            key = (i, remaining)
            if key in seen:
                return None
            seen.add(key)
            # choice: skip this lfn entirely
            result = dfs(i + 1, remaining, acc)
            if result is not None:
                return result
            # or take exactly one of its candidates
            for t in groups[i]:
                acc.append(t)
                result = dfs(i + 1, remaining - t.file_size, acc)
                acc.pop()
                if result is not None:
                    return result
            return None

        try:
            return dfs(0, int(target), [])
        except _BudgetExceeded:
            self.fallbacks += 1
            return None


class _BudgetExceeded(Exception):
    pass
