"""Scoring matchers against the simulator's ground truth.

The paper cannot validate its matching because production telemetry has
no truth labels; the simulator does.  For each method we report:

* **pair precision** — of the (job, transfer) pairs the matcher
  asserts, what fraction are truly linked;
* **pair recall** — of the true job→transfer links *visible in the
  degraded window* (both endpoints survived degradation and
  pre-selection), what fraction were recovered;
* **job precision/recall** — same at job granularity (a job counts as
  correctly matched when at least one asserted transfer is truly its).

Denominator discipline (matters for the RM3 threshold sweeps, which
walk into regimes the binary matchers never reach):

* precision and recall are computed over the same visible universe —
  asserted pairs whose job or transfer falls outside the evaluated
  window are counted separately (``n_asserted_outside_window``) and
  excluded from the precision denominator, so a matcher fed a wider
  record set than the evaluation window cannot skew precision against
  a recall that only ever counts in-window truth;
* vacuous cases are defined, not ``ZeroDivisionError``: an empty
  assertion set has precision 1.0 (no false positives were made) and
  an empty visible-truth set has recall 1.0 (nothing recoverable was
  missed), so precision/recall curves stay defined at degradation
  severities that erase every visible link or thresholds that reject
  every candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set, Tuple

from repro.core.matching.base import MatchResult
from repro.telemetry.groundtruth import GroundTruth
from repro.telemetry.records import UNKNOWN_SITE, JobRecord, TransferRecord


def _ratio(num: int, den: int) -> float:
    """num/den with the vacuous case defined as 1.0 (see module doc)."""
    return num / den if den else 1.0


@dataclass(frozen=True)
class MatchEvaluation:
    method: str
    n_asserted_pairs: int
    n_true_pairs_visible: int
    pair_precision: float
    pair_recall: float
    job_precision: float
    job_recall: float
    #: asserted pairs whose endpoints the evaluation window never saw —
    #: excluded from the precision denominator (0 for any matcher run
    #: on the window's own artifacts).
    n_asserted_outside_window: int = 0

    @property
    def pair_f1(self) -> float:
        """Harmonic mean of pair precision and recall (0 when both are 0)."""
        p, r = self.pair_precision, self.pair_recall
        return 2.0 * p * r / (p + r) if p + r else 0.0

    def __str__(self) -> str:
        return (
            f"{self.method}: pairs P={self.pair_precision:.3f} R={self.pair_recall:.3f} "
            f"jobs P={self.job_precision:.3f} R={self.job_recall:.3f} "
            f"(asserted {self.n_asserted_pairs}, visible truth {self.n_true_pairs_visible})"
        )


def visible_true_pairs(
    truth: GroundTruth,
    jobs: Sequence[JobRecord],
    transfers: Sequence[TransferRecord],
) -> Set[Tuple[int, int]]:
    """True (pandaid, row_id) links whose both endpoints are in the window."""
    job_ids = {j.pandaid for j in jobs}
    out: Set[Tuple[int, int]] = set()
    for t in transfers:
        true_job = truth.true_job_of(t.row_id)
        if true_job and true_job in job_ids:
            out.add((true_job, t.row_id))
    return out


def evaluate_against_truth(
    result: MatchResult,
    truth: GroundTruth,
    jobs: Sequence[JobRecord],
    transfers: Sequence[TransferRecord],
) -> MatchEvaluation:
    asserted = set(result.matched_pairs())
    true_visible = visible_true_pairs(truth, jobs, transfers)

    job_ids = {j.pandaid for j in jobs}
    row_ids = {t.row_id for t in transfers}
    in_window = {p for p in asserted if p[0] in job_ids and p[1] in row_ids}

    correct_pairs = {p for p in in_window if truth.true_job_of(p[1]) == p[0]}
    pair_precision = _ratio(len(correct_pairs), len(in_window))
    pair_recall = _ratio(len(correct_pairs), len(true_visible))

    asserted_jobs = {p[0] for p in in_window}
    correct_jobs = {p[0] for p in correct_pairs}
    true_jobs = {p[0] for p in true_visible}
    job_precision = _ratio(len(correct_jobs & asserted_jobs), len(asserted_jobs))
    job_recall = _ratio(len(correct_jobs & true_jobs), len(true_jobs))

    return MatchEvaluation(
        method=result.method,
        n_asserted_pairs=len(asserted),
        n_true_pairs_visible=len(true_visible),
        pair_precision=pair_precision,
        pair_recall=pair_recall,
        job_precision=job_precision,
        job_recall=job_recall,
        n_asserted_outside_window=len(asserted) - len(in_window),
    )


@dataclass(frozen=True)
class SiteRecovery:
    """RM2-style site-label recovery scored against ground truth (§4.3).

    When a matcher asserts a pair whose transfer lost its relevant
    endpoint label (download destination / upload source recorded empty
    or ``UNKNOWN``), the match *implies* that endpoint was the job's
    computing site.  The simulator knows the true endpoints, so the
    implication can be scored.
    """

    method: str
    #: asserted pairs whose relevant endpoint label was missing/unknown
    n_recoverable: int
    #: of those, implications matching the true endpoint
    n_correct: int

    @property
    def accuracy(self) -> float:
        return _ratio(self.n_correct, self.n_recoverable)

    def __str__(self) -> str:
        return (
            f"{self.method}: recovered {self.n_correct}/{self.n_recoverable} "
            f"unknown site labels ({self.accuracy:.1%})"
        )


def recover_unknown_sites(result: MatchResult, truth: GroundTruth) -> SiteRecovery:
    """Score the site labels a method's matches imply for unknown endpoints."""
    n_recoverable = 0
    n_correct = 0
    for m in result.matches:
        site = m.job.computingsite
        for t in m.transfers:
            if t.is_download:
                label, pick = t.destination_site, 1  # true (src, dst)[1]
            elif t.is_upload:
                label, pick = t.source_site, 0
            else:
                continue
            if label and label != UNKNOWN_SITE:
                continue
            true_sites = truth.true_sites.get(t.row_id)
            if true_sites is None:
                continue
            n_recoverable += 1
            if true_sites[pick] == site:
                n_correct += 1
    return SiteRecovery(result.method, n_recoverable, n_correct)
