"""Scoring matchers against the simulator's ground truth.

The paper cannot validate its matching because production telemetry has
no truth labels; the simulator does.  For each method we report:

* **pair precision** — of the (job, transfer) pairs the matcher
  asserts, what fraction are truly linked;
* **pair recall** — of the true job→transfer links *visible in the
  degraded window* (both endpoints survived degradation and
  pre-selection), what fraction were recovered;
* **job precision/recall** — same at job granularity (a job counts as
  correctly matched when at least one asserted transfer is truly its).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set, Tuple

from repro.core.matching.base import MatchResult
from repro.telemetry.groundtruth import GroundTruth
from repro.telemetry.records import JobRecord, TransferRecord


@dataclass(frozen=True)
class MatchEvaluation:
    method: str
    n_asserted_pairs: int
    n_true_pairs_visible: int
    pair_precision: float
    pair_recall: float
    job_precision: float
    job_recall: float

    def __str__(self) -> str:
        return (
            f"{self.method}: pairs P={self.pair_precision:.3f} R={self.pair_recall:.3f} "
            f"jobs P={self.job_precision:.3f} R={self.job_recall:.3f} "
            f"(asserted {self.n_asserted_pairs}, visible truth {self.n_true_pairs_visible})"
        )


def visible_true_pairs(
    truth: GroundTruth,
    jobs: Sequence[JobRecord],
    transfers: Sequence[TransferRecord],
) -> Set[Tuple[int, int]]:
    """True (pandaid, row_id) links whose both endpoints are in the window."""
    job_ids = {j.pandaid for j in jobs}
    out: Set[Tuple[int, int]] = set()
    for t in transfers:
        true_job = truth.true_job_of(t.row_id)
        if true_job and true_job in job_ids:
            out.add((true_job, t.row_id))
    return out


def evaluate_against_truth(
    result: MatchResult,
    truth: GroundTruth,
    jobs: Sequence[JobRecord],
    transfers: Sequence[TransferRecord],
) -> MatchEvaluation:
    asserted = set(result.matched_pairs())
    true_visible = visible_true_pairs(truth, jobs, transfers)

    correct_pairs = {p for p in asserted if truth.true_job_of(p[1]) == p[0]}
    pair_precision = len(correct_pairs) / len(asserted) if asserted else 0.0
    pair_recall = (
        len(correct_pairs & true_visible) / len(true_visible) if true_visible else 0.0
    )

    asserted_jobs = {p[0] for p in asserted}
    correct_jobs = {p[0] for p in correct_pairs}
    true_jobs = {p[0] for p in true_visible}
    job_precision = len(correct_jobs & asserted_jobs) / len(asserted_jobs) if asserted_jobs else 0.0
    job_recall = len(correct_jobs & true_jobs) / len(true_jobs) if true_jobs else 0.0

    return MatchEvaluation(
        method=result.method,
        n_asserted_pairs=len(asserted),
        n_true_pairs_visible=len(true_visible),
        pair_precision=pair_precision,
        pair_recall=pair_recall,
        job_precision=job_precision,
        job_recall=job_recall,
    )
