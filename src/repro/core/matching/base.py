"""Shared matcher machinery.

All three matchers share the candidate-generation stage of Algorithm 1
— the hash join jobs → files → transfers over
``(jeditaskid, lfn, dataset, proddblock, scope, file_size)`` — and
differ only in the final per-job filtering.  The join is built on dict
indices so the whole pass is O(|J| + |F| + |T|) instead of the naive
O(|J|·|T|): the "scalable matching algorithms" §4 requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.telemetry.records import FileRecord, JobRecord, TransferRecord


class TransferClass(enum.Enum):
    """Locality classification of a matched job's transfer set (Table 2b)."""

    ALL_LOCAL = "all_local"
    ALL_REMOTE = "all_remote"
    MIXED = "mixed"


@dataclass
class JobMatch:
    """One element of the output mapping set M: a job and its transfers."""

    job: JobRecord
    transfers: List[TransferRecord]

    @property
    def n_transfers(self) -> int:
        return len(self.transfers)

    @property
    def n_local(self) -> int:
        return sum(1 for t in self.transfers if t.is_local)

    @property
    def n_remote(self) -> int:
        return len(self.transfers) - self.n_local

    @property
    def transfer_class(self) -> TransferClass:
        local = self.n_local
        if local == len(self.transfers):
            return TransferClass.ALL_LOCAL
        if local == 0:
            return TransferClass.ALL_REMOTE
        return TransferClass.MIXED

    def downloads(self) -> List[TransferRecord]:
        return [t for t in self.transfers if t.is_download]

    def uploads(self) -> List[TransferRecord]:
        return [t for t in self.transfers if t.is_upload]


@dataclass
class MatchResult:
    """Output of one matcher over one pre-selected window."""

    method: str
    matches: List[JobMatch]
    n_jobs_considered: int
    n_transfers_considered: int

    #: Lazily computed transfer-id set; every pair-level metric calls
    #: :meth:`matched_transfer_ids`, so rebuilding it per access made
    #: result summarization quadratic-feeling on big windows.
    _transfer_ids: Optional[FrozenSet[int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    #: Columnar lowering of this result (``repro.columnar.frame``).
    #: The columnar engine attaches it eagerly from its candidate
    #: arrays; otherwise :meth:`frame` lowers the rows on first use.
    _frame: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    def frame(self):
        """The :class:`~repro.columnar.frame.MatchFrame` of this result."""
        if self._frame is None:
            from repro.columnar.frame import MatchFrame

            self._frame = MatchFrame.from_matches(self.matches)
        return self._frame

    def matched_jobs(self) -> List[JobMatch]:
        return [m for m in self.matches if m.transfers]

    @property
    def n_matched_jobs(self) -> int:
        return len(self.matched_jobs())

    def matched_transfer_ids(self) -> FrozenSet[int]:
        if self._transfer_ids is None:
            self._transfer_ids = frozenset(
                t.row_id for m in self.matches for t in m.transfers
            )
        return self._transfer_ids

    @property
    def n_matched_transfers(self) -> int:
        return len(self.matched_transfer_ids())

    def matched_pairs(self) -> List[Tuple[int, int]]:
        """(pandaid, transfer row_id) pairs — the evaluation unit.

        Deduplicated defensively: a matcher that ever returned the same
        transfer twice for one job would otherwise inflate every
        pair-level metric downstream.  First-occurrence order is kept,
        so serial and parallel execution emit identical lists.
        """
        seen: Set[Tuple[int, int]] = set()
        out: List[Tuple[int, int]] = []
        for m in self.matches:
            for t in m.transfers:
                pair = (m.job.pandaid, t.row_id)
                if pair not in seen:
                    seen.add(pair)
                    out.append(pair)
        return out

    def jobs_by_class(self) -> Dict[TransferClass, int]:
        out = {c: 0 for c in TransferClass}
        for m in self.matched_jobs():
            out[m.transfer_class] += 1
        return out

    def local_remote_split(self) -> Tuple[int, int]:
        """(local, remote) counts over matched transfers (deduplicated)."""
        seen: Set[int] = set()
        local = remote = 0
        for m in self.matches:
            for t in m.transfers:
                if t.row_id in seen:
                    continue
                seen.add(t.row_id)
                if t.is_local:
                    local += 1
                else:
                    remote += 1
        return local, remote


@dataclass
class MatchingReport:
    """All methods over one window, plus the pre-selection sizes."""

    window: Tuple[float, float]
    n_jobs: int
    n_transfers: int
    n_transfers_with_taskid: int
    results: Dict[str, MatchResult]

    def __getitem__(self, method: str) -> MatchResult:
        return self.results[method]

    @property
    def methods(self) -> List[str]:
        return list(self.results)


class CandidateIndex:
    """The jobs → files → transfers hash join of Algorithm 1.

    Built once per window; each matcher queries
    :meth:`candidates_for_job` to get T'_j.
    """

    #: Process-wide construction counter.  The artifact cache
    #: (``repro.exec.artifacts``) exists to keep this from growing with
    #: the number of matchers × windows; tests assert on it.
    build_count = 0

    def __init__(
        self,
        files: Sequence[FileRecord],
        transfers: Sequence[TransferRecord],
    ) -> None:
        CandidateIndex.build_count += 1
        # F'_j: file rows grouped by (pandaid, jeditaskid).
        self._files_by_job: Dict[Tuple[int, int], List[FileRecord]] = {}
        for f in files:
            self._files_by_job.setdefault((f.pandaid, f.jeditaskid), []).append(f)

        # Transfer rows by (jeditaskid, lfn); rows without a task id can
        # never be reached by the join (the paper's 77% invisible mass).
        self._transfers_by_key: Dict[Tuple[int, str], List[TransferRecord]] = {}
        for t in transfers:
            if t.jeditaskid:
                self._transfers_by_key.setdefault((t.jeditaskid, t.lfn), []).append(t)

    def files_for_job(self, job: JobRecord) -> List[FileRecord]:
        return self._files_by_job.get((job.pandaid, job.jeditaskid), [])

    def candidates_for_job(self, job: JobRecord) -> List[TransferRecord]:
        """T'_j: transfers attribute-matching any of the job's files.

        Attribute equality covers lfn (via the index key), dataset,
        proddblock, scope, and file_size, exactly as Algorithm 1 lists.
        """
        out: List[TransferRecord] = []
        seen: Set[int] = set()
        for f in self.files_for_job(job):
            for t in self._transfers_by_key.get((job.jeditaskid, f.lfn), []):
                if t.row_id in seen:
                    continue
                if (
                    t.dataset == f.dataset
                    and t.proddblock == f.proddblock
                    and t.scope == f.scope
                    and t.file_size == f.file_size
                ):
                    seen.add(t.row_id)
                    out.append(t)
        return out

    def scored_candidates_for_job(
        self, job: JobRecord
    ) -> List[Tuple[TransferRecord, float]]:
        """The size-relaxed join for scored matchers (RM3).

        Attribute equality *except* ``file_size``: degradation records
        sizes imprecisely (§4.3), so requiring byte equality silently
        drops true pairs at the join.  Each candidate carries its
        relative size mismatch ``|t - f| / max(f, 1)`` against the file
        row that produced it; when several file rows reach the same
        transfer, the first in enumeration order wins (the same
        first-occurrence rule as the dedup above, mirrored exactly by
        the columnar join).
        """
        out: List[Tuple[TransferRecord, float]] = []
        seen: Set[int] = set()
        for f in self.files_for_job(job):
            for t in self._transfers_by_key.get((job.jeditaskid, f.lfn), []):
                if t.row_id in seen:
                    continue
                if (
                    t.dataset == f.dataset
                    and t.proddblock == f.proddblock
                    and t.scope == f.scope
                ):
                    seen.add(t.row_id)
                    rel = float(abs(t.file_size - f.file_size)) / float(
                        max(f.file_size, 1)
                    )
                    out.append((t, rel))
        return out


class BaseMatcher:
    """Template: candidate join + method-specific final filter."""

    #: Overridden by concrete matchers.
    name = "base"

    def __init__(self, known_sites: Optional[Set[str]] = None) -> None:
        #: Site names considered *valid*; anything else counts as an
        #: invalid/unknown label for RM2's relaxation.
        self.known_sites = known_sites or set()

    # -- the filters of Algorithm 1, as overridable pieces ---------------------

    def time_ok(self, t: TransferRecord, job: JobRecord) -> bool:
        """Condition (1): the transfer started before the job's end."""
        return job.endtime is not None and t.starttime < job.endtime

    def site_ok(self, t: TransferRecord, job: JobRecord) -> bool:
        """Condition (3): download dest / upload source = computing site."""
        if t.is_download:
            return t.destination_site == job.computingsite
        if t.is_upload:
            return t.source_site == job.computingsite
        return False

    def size_ok(self, total: int, job: JobRecord) -> bool:
        """Condition (2): whole-set size equals input or output bytes."""
        return total == job.ninputfilebytes or total == job.noutputfilebytes

    #: Whether this matcher applies the whole-set size check.
    use_size_check = True

    #: Scored matchers (RM3) set this to join without file-size
    #: equality; ``run`` then feeds (candidate, size mismatch) pairs
    #: through ``match_job_scored`` instead of ``match_job``.
    size_tolerant_join = False

    def match_job(self, job: JobRecord, candidates: List[TransferRecord]) -> List[TransferRecord]:
        """Final filtering of T'_j for one job."""
        end = job.endtime
        if end is None:
            # Hoisted from time_ok: no candidate can pass condition (1),
            # so skip the per-candidate loop entirely.
            return []
        kept = [t for t in candidates if t.starttime < end and self.site_ok(t, job)]
        return self.select_job(job, kept)

    def select_job(self, job: JobRecord, kept: List[TransferRecord]) -> List[TransferRecord]:
        """Set-level decision over the time/site-filtered candidates.

        The default applies the whole-set size rule; matchers that make
        a different set-level choice (e.g. subset selection) override
        this instead of :meth:`match_job`, which also lets the columnar
        engine reuse its vectorized time/site filters for them.
        """
        if not kept:
            return []
        if self.use_size_check:
            total = sum(t.file_size for t in kept)
            if not self.size_ok(total, job):
                return []
        return kept

    # -- driving the whole window -------------------------------------------------

    def run(
        self,
        jobs: Sequence[JobRecord],
        index: CandidateIndex,
        n_transfers_considered: int,
    ) -> MatchResult:
        matches: List[JobMatch] = []
        for job in jobs:
            if self.size_tolerant_join:
                pairs = index.scored_candidates_for_job(job)
                kept = self.match_job_scored(job, pairs) if pairs else []
            else:
                candidates = index.candidates_for_job(job)
                kept = self.match_job(job, candidates) if candidates else []
            if kept:
                matches.append(JobMatch(job=job, transfers=kept))
        return MatchResult(
            method=self.name,
            matches=matches,
            n_jobs_considered=len(jobs),
            n_transfers_considered=n_transfers_considered,
        )
