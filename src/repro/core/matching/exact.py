"""Exact matching — Algorithm 1 of the paper.

For each job J_j:

1. F'_j — the job's file rows (pandaid + jeditaskid agreement);
2. T'_j — transfers attribute-matching those files on
   (lfn, dataset, proddblock, scope, file_size);
3. keep transfers satisfying all of:
   (1) ``starttime < J_j.endtime``;
   (2) the *whole-set* size ``S_j = Σ file_size`` equals
       ``ninputfilebytes`` or ``noutputfilebytes`` — the set-level test
       the paper uses "rather than solving the underlying NP-hard
       problem of subset selection";
   (3) downloads land at the computing site; uploads leave from it.

Steps 1-2 live in :class:`~repro.core.matching.base.CandidateIndex`;
this class supplies the strict final filter.
"""

from __future__ import annotations

from repro.core.matching.base import BaseMatcher


class ExactMatcher(BaseMatcher):
    """The strict matcher: all three conditions enforced."""

    name = "exact"
    use_size_check = True
