"""The paper's primary contribution: job ↔ transfer matching and the
analyses built on top of it.

Subpackages
-----------
``matching``
    Algorithm 1 (exact matching) and the relaxed variants RM1/RM2,
    the time-window pipeline, and ground-truth evaluation.
``analysis``
    Matching summaries (Tables 1-2), queuing-time breakdowns
    (Figs 5-6), bandwidth series (Figs 7-8), the site transfer matrix
    (Fig 3), the status/threshold sweep (Fig 9), and per-job timelines
    (Figs 10-12).
``anomaly``
    Detectors for the systemic inefficiencies §5 uncovers: redundant
    transfers, prolonged staging, bandwidth under-utilization,
    site-level imbalance, and unknown-site inference.
"""

from repro.core.matching import (
    ExactMatcher,
    RM1Matcher,
    RM2Matcher,
    MatchingPipeline,
    MatchResult,
    JobMatch,
)

__all__ = [
    "ExactMatcher",
    "RM1Matcher",
    "RM2Matcher",
    "MatchingPipeline",
    "MatchResult",
    "JobMatch",
]
