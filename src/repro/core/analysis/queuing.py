"""Queuing-time / transfer-time analysis (§5.1, Figs 5-6).

"File transfer time is defined as the cumulative duration during the
job's queuing time phase in which at least one associated file was
actively transferring" — i.e. the length of the union of the matched
transfers' intervals clipped to [creation, start-of-execution].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence

import numpy as np

from repro.core.matching.base import JobMatch, MatchResult, TransferClass
from repro.panda.harvester import interval_union_length


@dataclass(frozen=True)
class JobTransferTiming:
    """Fig 5/6 row: one matched job's queuing breakdown."""

    pandaid: int
    status: str  # "D" completed / "F" failed, as the paper labels them
    taskstatus: str
    queuing_time: float
    transfer_time: float  # within the queuing phase
    transfer_bytes: int
    transfer_class: TransferClass
    n_transfers: int

    @property
    def transfer_pct(self) -> float:
        """Percent of queuing time spent with a transfer active."""
        if self.queuing_time <= 0:
            return 0.0
        return 100.0 * self.transfer_time / self.queuing_time

    @property
    def other_time(self) -> float:
        return max(0.0, self.queuing_time - self.transfer_time)

    @property
    def label(self) -> str:
        """Paper-style data label: job status / task status."""
        j = "D" if self.status == "finished" else "F"
        t = "D" if self.taskstatus == "finished" else "F"
        return f"{j}/{t}"


def compute_timing(match: JobMatch) -> Optional[JobTransferTiming]:
    """Timing breakdown for one matched job; None when it never started."""
    job = match.job
    if job.starttime is None:
        return None
    intervals = [(t.starttime, t.endtime) for t in match.transfers]
    transfer_time = interval_union_length(intervals, job.creationtime, job.starttime)
    return JobTransferTiming(
        pandaid=job.pandaid,
        status=job.status,
        taskstatus=job.taskstatus,
        queuing_time=job.starttime - job.creationtime,
        transfer_time=transfer_time,
        transfer_bytes=sum(t.file_size for t in match.transfers),
        transfer_class=match.transfer_class,
        n_transfers=len(match.transfers),
    )


def timings_for_result(result: MatchResult) -> List[JobTransferTiming]:
    out = []
    for m in result.matched_jobs():
        t = compute_timing(m)
        if t is not None:
            out.append(t)
    return out


def top_jobs_breakdown(
    timings: Sequence[JobTransferTiming],
    locality: Literal["local", "remote"],
    min_transfer_pct: float = 10.0,
    top: int = 40,
) -> List[JobTransferTiming]:
    """Figs 5-6: the ``top`` longest-queuing jobs of one locality class
    whose transfers occupied at least ``min_transfer_pct`` of queue time."""
    wanted = TransferClass.ALL_LOCAL if locality == "local" else TransferClass.ALL_REMOTE
    eligible = [
        t
        for t in timings
        if t.transfer_class is wanted and t.transfer_pct >= min_transfer_pct
    ]
    eligible.sort(key=lambda t: -t.queuing_time)
    return eligible[:top]


def mean_transfer_pct(timings: Sequence[JobTransferTiming]) -> float:
    """Arithmetic mean of the transfer-time percentages (§5.1's 8.43%)."""
    if not timings:
        return 0.0
    return float(np.mean([t.transfer_pct for t in timings]))


def geomean_transfer_pct(timings: Sequence[JobTransferTiming], floor: float = 1e-3) -> float:
    """Geometric mean (§5.1's 1.942%); zero percentages are floored so
    the geomean stays defined, matching the paper's strictly positive
    report."""
    if not timings:
        return 0.0
    vals = np.maximum([t.transfer_pct for t in timings], floor)
    return float(np.exp(np.mean(np.log(vals))))


def correlation_size_vs_time(timings: Sequence[JobTransferTiming]) -> float:
    """Pearson correlation between transferred bytes and queuing time.

    The paper "found no significant correlation between total transfer
    size and either queuing time or file transfer time" (Fig 5
    discussion); the Fig-5 benchmark asserts this stays weak.
    """
    if len(timings) < 3:
        return 0.0
    x = np.array([t.transfer_bytes for t in timings], dtype=float)
    y = np.array([t.queuing_time for t in timings], dtype=float)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
