"""Queuing-time / transfer-time analysis (§5.1, Figs 5-6).

"File transfer time is defined as the cumulative duration during the
job's queuing time phase in which at least one associated file was
actively transferring" — i.e. the length of the union of the matched
transfers' intervals clipped to [creation, start-of-execution].

Two implementations share this module.  The row path
(:func:`compute_timing` over ``JobMatch`` objects) is the reference;
the columnar path lowers the result's :class:`MatchFrame` into a
:class:`TimingTable` — every per-job breakdown as parallel arrays, with
the interval unions computed by one sorted-boundary sweep over the CSR
ragged mapping (:func:`repro.columnar.kernels.interval_union_lengths`).
Both produce bit-identical numbers; ``tests/test_analysis_frame.py``
property-tests the equality.  :func:`timings_for_result` dispatches on
the ``frame`` name (default :data:`repro.columnar.DEFAULT_FRAME`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence

import numpy as np

from repro.columnar import DEFAULT_FRAME, validate_frame
from repro.columnar.frame import CLASS_ORDER, MatchFrame
from repro.columnar.kernels import interval_union_lengths
from repro.core.matching.base import JobMatch, MatchResult, TransferClass
from repro.panda.harvester import interval_union_length


@dataclass(frozen=True)
class JobTransferTiming:
    """Fig 5/6 row: one matched job's queuing breakdown."""

    pandaid: int
    status: str  # "D" completed / "F" failed, as the paper labels them
    taskstatus: str
    queuing_time: float
    transfer_time: float  # within the queuing phase
    transfer_bytes: int
    transfer_class: TransferClass
    n_transfers: int

    @property
    def transfer_pct(self) -> float:
        """Percent of queuing time spent with a transfer active."""
        if self.queuing_time <= 0:
            return 0.0
        return 100.0 * self.transfer_time / self.queuing_time

    @property
    def other_time(self) -> float:
        return max(0.0, self.queuing_time - self.transfer_time)

    @property
    def label(self) -> str:
        """Paper-style data label: job status / task status."""
        j = "D" if self.status == "finished" else "F"
        t = "D" if self.taskstatus == "finished" else "F"
        return f"{j}/{t}"


def compute_timing(match: JobMatch) -> Optional[JobTransferTiming]:
    """Timing breakdown for one matched job; None when it never started."""
    job = match.job
    if job.starttime is None:
        return None
    intervals = [(t.starttime, t.endtime) for t in match.transfers]
    transfer_time = interval_union_length(intervals, job.creationtime, job.starttime)
    return JobTransferTiming(
        pandaid=job.pandaid,
        status=job.status,
        taskstatus=job.taskstatus,
        queuing_time=job.starttime - job.creationtime,
        transfer_time=transfer_time,
        transfer_bytes=sum(t.file_size for t in match.transfers),
        transfer_class=match.transfer_class,
        n_transfers=len(match.transfers),
    )


@dataclass
class TimingTable:
    """The Fig 5/6/9 per-job breakdown as parallel arrays (started jobs).

    One row per matched job that started execution, in match order —
    the columnar counterpart of the ``JobTransferTiming`` list, used
    directly by the vectorized threshold sweep and headline statistics
    and materialized to row dataclasses only on demand (:meth:`rows`).
    """

    interner: "object"  # StringInterner (status/taskstatus codes)
    pandaid: np.ndarray  # int64
    status: np.ndarray  # int64 codes
    taskstatus: np.ndarray  # int64 codes
    queuing_time: np.ndarray  # float64
    transfer_time: np.ndarray  # float64
    transfer_bytes: np.ndarray  # int64
    n_transfers: np.ndarray  # int64
    class_code: np.ndarray  # int64, position into CLASS_ORDER
    transfer_pct: np.ndarray  # float64

    def __len__(self) -> int:
        return len(self.pandaid)

    @classmethod
    def from_frame(cls, frame: MatchFrame) -> "TimingTable":
        """Lower every timing row at once from the match frame.

        The per-job interval unions — the row path's dominant cost —
        become one sweep over the frame's ragged transfer arrays; jobs
        that never started (NaN ``start``) are dropped afterwards,
        mirroring ``compute_timing``'s ``None``.
        """
        union = interval_union_lengths(
            frame.creation, frame.start, frame.job_offsets, frame.t_start, frame.t_end
        )
        started = ~np.isnan(frame.start)
        qt = (frame.start - frame.creation)[started]
        tt = union[started]
        with np.errstate(divide="ignore", invalid="ignore"):
            pct = np.where(qt > 0, (100.0 * tt) / qt, 0.0)
        return cls(
            interner=frame.interner,
            pandaid=frame.pandaid[started],
            status=frame.status[started],
            taskstatus=frame.taskstatus[started],
            queuing_time=qt,
            transfer_time=tt,
            transfer_bytes=frame.transfer_bytes[started],
            n_transfers=frame.n_transfers[started],
            class_code=frame.class_code[started],
            transfer_pct=pct,
        )

    def rows(self) -> List[JobTransferTiming]:
        """Materialize the per-row dataclasses (the thin row view)."""
        decode = self.interner.decode
        return [
            JobTransferTiming(
                pandaid=pid,
                status=decode(st),
                taskstatus=decode(ts),
                queuing_time=qt,
                transfer_time=tt,
                transfer_bytes=tb,
                transfer_class=CLASS_ORDER[cc],
                n_transfers=nt,
            )
            for pid, st, ts, qt, tt, tb, cc, nt in zip(
                self.pandaid.tolist(),
                self.status.tolist(),
                self.taskstatus.tolist(),
                self.queuing_time.tolist(),
                self.transfer_time.tolist(),
                self.transfer_bytes.tolist(),
                self.class_code.tolist(),
                self.n_transfers.tolist(),
            )
        ]

    def top_jobs(
        self,
        locality: Literal["local", "remote"],
        min_transfer_pct: float = 10.0,
        top: int = 40,
    ) -> List[JobTransferTiming]:
        """Vectorized :func:`top_jobs_breakdown` over the table."""
        wanted = 0 if locality == "local" else 1  # CLASS_ORDER positions
        eligible = np.flatnonzero(
            (self.class_code == wanted) & (self.transfer_pct >= min_transfer_pct)
        )
        order = np.argsort(-self.queuing_time[eligible], kind="stable")
        chosen = eligible[order[:top]]
        decode = self.interner.decode
        return [
            JobTransferTiming(
                pandaid=int(self.pandaid[i]),
                status=decode(int(self.status[i])),
                taskstatus=decode(int(self.taskstatus[i])),
                queuing_time=float(self.queuing_time[i]),
                transfer_time=float(self.transfer_time[i]),
                transfer_bytes=int(self.transfer_bytes[i]),
                transfer_class=CLASS_ORDER[int(self.class_code[i])],
                n_transfers=int(self.n_transfers[i]),
            )
            for i in chosen.tolist()
        ]


def timing_table(result: MatchResult) -> TimingTable:
    """The result's timing table, cached on its match frame."""
    frame = result.frame()
    if frame._timing is None:
        frame._timing = TimingTable.from_frame(frame)
    return frame._timing


def timings_for_result(
    result: MatchResult, frame: Optional[str] = None
) -> List[JobTransferTiming]:
    """Fig 5/6 rows for one result, via the chosen analysis dataplane.

    ``frame`` is ``"row"`` (reference loop over ``JobMatch`` objects)
    or ``"columnar"`` (lower once to the :class:`TimingTable`, then
    materialize); ``None`` picks :data:`repro.columnar.DEFAULT_FRAME`.
    """
    choice = validate_frame(frame) if frame is not None else DEFAULT_FRAME
    if choice == "columnar":
        return timing_table(result).rows()
    out = []
    for m in result.matched_jobs():
        t = compute_timing(m)
        if t is not None:
            out.append(t)
    return out


def top_jobs_breakdown(
    timings: Sequence[JobTransferTiming],
    locality: Literal["local", "remote"],
    min_transfer_pct: float = 10.0,
    top: int = 40,
) -> List[JobTransferTiming]:
    """Figs 5-6: the ``top`` longest-queuing jobs of one locality class
    whose transfers occupied at least ``min_transfer_pct`` of queue time."""
    wanted = TransferClass.ALL_LOCAL if locality == "local" else TransferClass.ALL_REMOTE
    eligible = [
        t
        for t in timings
        if t.transfer_class is wanted and t.transfer_pct >= min_transfer_pct
    ]
    eligible.sort(key=lambda t: -t.queuing_time)
    return eligible[:top]


def mean_transfer_pct(timings) -> float:
    """Arithmetic mean of the transfer-time percentages (§5.1's 8.43%).

    Accepts a timings sequence or a :class:`TimingTable`.
    """
    pcts = _pct_values(timings)
    if len(pcts) == 0:
        return 0.0
    return float(np.mean(pcts))


def geomean_transfer_pct(timings, floor: float = 1e-3) -> float:
    """Geometric mean (§5.1's 1.942%); zero percentages are floored so
    the geomean stays defined, matching the paper's strictly positive
    report.  Accepts a timings sequence or a :class:`TimingTable`."""
    pcts = _pct_values(timings)
    if len(pcts) == 0:
        return 0.0
    vals = np.maximum(pcts, floor)
    return float(np.exp(np.mean(np.log(vals))))


def correlation_size_vs_time(timings) -> float:
    """Pearson correlation between transferred bytes and queuing time.

    The paper "found no significant correlation between total transfer
    size and either queuing time or file transfer time" (Fig 5
    discussion); the Fig-5 benchmark asserts this stays weak.  Accepts
    a timings sequence or a :class:`TimingTable`.
    """
    if isinstance(timings, TimingTable):
        x = timings.transfer_bytes.astype(float)
        y = timings.queuing_time.astype(float)
    else:
        x = np.array([t.transfer_bytes for t in timings], dtype=float)
        y = np.array([t.queuing_time for t in timings], dtype=float)
    if len(x) < 3:
        return 0.0
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def _pct_values(timings) -> np.ndarray:
    """Transfer percentages as one float64 array, from either shape.

    ``np.mean`` and friends see identical values in identical order
    whether the floats come from the table's array or from a list of
    ``JobTransferTiming.transfer_pct`` — the bit-identity hinge.
    """
    if isinstance(timings, TimingTable):
        return timings.transfer_pct
    return np.array([t.transfer_pct for t in timings], dtype=np.float64)
