"""Temporal imbalance analysis.

§3.2 observes that the WLCG moves data "with significant spatial and
temporal imbalance".  The spatial half is the Fig 3 matrix
(:mod:`repro.core.analysis.matrix`); this module quantifies the
temporal half: per-interval transfer volume series, peak-to-trough
ratios, busiest-hour concentration, and a temporal Gini coefficient —
plus the same measures for job submissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.columnar.kernels import bucket_accumulate
from repro.columnar.packs import WindowColumns
from repro.core.anomaly.imbalance import gini_coefficient
from repro.telemetry.records import JobRecord, TransferRecord


@dataclass
class TemporalProfile:
    """Volume/count per uniform time bucket, with imbalance measures."""

    t0: float
    bucket_seconds: float
    volume: np.ndarray  # bytes (or counts) per bucket

    @property
    def n_buckets(self) -> int:
        return len(self.volume)

    @property
    def total(self) -> float:
        return float(self.volume.sum())

    def peak_to_mean(self) -> float:
        active = self.volume[self.volume > 0]
        if len(active) == 0:
            return 0.0
        return float(self.volume.max() / active.mean())

    def peak_to_trough(self) -> float:
        """Max over min across *active* buckets."""
        active = self.volume[self.volume > 0]
        if len(active) < 2:
            return 1.0
        return float(active.max() / active.min())

    def temporal_gini(self) -> float:
        return gini_coefficient(self.volume)

    def busiest_share(self, fraction: float = 0.1) -> float:
        """Share of total carried by the busiest ``fraction`` of buckets."""
        if self.total == 0:
            return 0.0
        k = max(1, int(np.ceil(fraction * len(self.volume))))
        top = np.sort(self.volume)[::-1][:k]
        return float(top.sum() / self.total)

    def hour_of_day_profile(self) -> np.ndarray:
        """Mean volume per hour-of-day (24 values) — the diurnal shape."""
        hours = ((self.t0 + np.arange(len(self.volume)) * self.bucket_seconds)
                 / 3600.0) % 24
        out = np.zeros(24)
        counts = np.zeros(24)
        for h, v in zip(hours.astype(int), self.volume):
            out[h] += v
            counts[h] += 1
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, out / np.maximum(counts, 1), 0.0)
        return means


def transfer_volume_profile(
    transfers: Sequence[TransferRecord],
    t0: float,
    t1: float,
    bucket_seconds: float = 3600.0,
    columns: Optional[WindowColumns] = None,
) -> TemporalProfile:
    """Bytes whose transfer *started* in each bucket.

    With ``columns`` (packs parallel to ``transfers``), the bucket
    assignment and byte accumulation run as one vectorized pass
    (``bucket_accumulate``: same floor-divide, same input-order float
    additions as the loop).
    """
    if t1 <= t0:
        raise ValueError("empty window")
    n = int(np.ceil((t1 - t0) / bucket_seconds))
    if columns is not None:
        tp = columns.transfers
        volume = bucket_accumulate(tp.starttime, tp.size, t0, bucket_seconds, n)
        return TemporalProfile(t0=t0, bucket_seconds=bucket_seconds, volume=volume)
    volume = np.zeros(n)
    for t in transfers:
        k = int((t.starttime - t0) // bucket_seconds)
        if 0 <= k < n:
            volume[k] += t.file_size
    return TemporalProfile(t0=t0, bucket_seconds=bucket_seconds, volume=volume)


def submission_profile(
    jobs: Sequence[JobRecord],
    t0: float,
    t1: float,
    bucket_seconds: float = 3600.0,
    columns: Optional[WindowColumns] = None,
) -> TemporalProfile:
    """Job submissions per bucket."""
    if t1 <= t0:
        raise ValueError("empty window")
    n = int(np.ceil((t1 - t0) / bucket_seconds))
    if columns is not None:
        jp = columns.jobs
        counts = bucket_accumulate(
            jp.creation, np.ones(len(jp), dtype=np.float64), t0, bucket_seconds, n
        )
        return TemporalProfile(t0=t0, bucket_seconds=bucket_seconds, volume=counts)
    counts = np.zeros(n)
    for j in jobs:
        k = int((j.creationtime - t0) // bucket_seconds)
        if 0 <= k < n:
            counts[k] += 1
    return TemporalProfile(t0=t0, bucket_seconds=bucket_seconds, volume=counts)
