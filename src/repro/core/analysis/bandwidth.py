"""Bandwidth usage over time (Figs 7-8).

The paper plots, per site-pair (remote) or per site (local), the
"accumulated bandwidth usage of matched transfers" over consecutive
time buckets.  Each transfer's bytes are spread uniformly across its
[start, end] interval and accumulated into the buckets it overlaps —
an exact discretisation of the instantaneous aggregate rate, computed
vectorised over bucket arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.telemetry.records import TransferRecord
from repro.units import MB


@dataclass
class BandwidthSeries:
    """Aggregate throughput per bucket for one link/site selection."""

    label: str
    bucket_seconds: float
    t0: float
    #: bytes moved per bucket (len = n buckets)
    bytes_per_bucket: np.ndarray

    @cached_property
    def mbps(self) -> np.ndarray:
        """Per-bucket mean rate in the paper's MBps.

        Cached: ``peak_mbps``/``mean_mbps``/``active_buckets``/
        ``fluctuation`` all derive from it, and each used to redo the
        division over the whole series on every access.
        """
        return self.bytes_per_bucket / self.bucket_seconds / MB

    @property
    def peak_mbps(self) -> float:
        return float(self.mbps.max()) if len(self.bytes_per_bucket) else 0.0

    @property
    def mean_mbps(self) -> float:
        return float(self.mbps.mean()) if len(self.bytes_per_bucket) else 0.0

    def active_buckets(self) -> np.ndarray:
        return self.mbps[self.mbps > 0]

    @property
    def fluctuation(self) -> float:
        """Coefficient of variation over active buckets — the paper's
        "fluctuate noticeably even within relatively short intervals"."""
        act = self.active_buckets()
        if len(act) < 2 or act.mean() == 0:
            return 0.0
        return float(act.std() / act.mean())

    def times(self) -> np.ndarray:
        """Bucket start times (absolute)."""
        return self.t0 + np.arange(len(self.bytes_per_bucket)) * self.bucket_seconds


def bandwidth_series(
    transfers: Sequence[TransferRecord],
    t0: float,
    t1: float,
    bucket_seconds: float = 300.0,
    label: str = "",
) -> BandwidthSeries:
    """Accumulate the transfers' bytes into uniform buckets over [t0, t1)."""
    if t1 <= t0:
        raise ValueError("empty window")
    n = int(np.ceil((t1 - t0) / bucket_seconds))
    buckets = np.zeros(n)
    for t in transfers:
        dur = t.endtime - t.starttime
        if dur <= 1e-9:
            # Instantaneous (or sub-nanosecond: the byte rate would
            # overflow) bookkeeping event: drop all bytes in one bucket.
            k = int((t.starttime - t0) // bucket_seconds)
            if 0 <= k < n:
                buckets[k] += t.file_size
            continue
        rate = t.file_size / dur
        first = max(0, int((t.starttime - t0) // bucket_seconds))
        last = min(n - 1, int((t.endtime - t0) // bucket_seconds))
        for k in range(first, last + 1):
            lo = max(t.starttime, t0 + k * bucket_seconds)
            hi = min(t.endtime, t0 + (k + 1) * bucket_seconds)
            if hi > lo:
                buckets[k] += rate * (hi - lo)
    return BandwidthSeries(
        label=label, bucket_seconds=bucket_seconds, t0=t0, bytes_per_bucket=buckets
    )


def bandwidth_series_fast(
    transfers: Sequence[TransferRecord],
    t0: float,
    t1: float,
    bucket_seconds: float = 300.0,
    label: str = "",
) -> BandwidthSeries:
    """Sweep-based equivalent of :func:`bandwidth_series`.

    Instead of walking each transfer's bucket span (O(Σ span)), build a
    rate *difference* series — +rate at each start, −rate at each end —
    and integrate the running rate across bucket boundaries in one
    vectorised sweep: O(n log n + buckets).  Differentially tested
    against the reference implementation (hypothesis); preferred for
    large windows with long transfers.
    """
    if t1 <= t0:
        raise ValueError("empty window")
    n = int(np.ceil((t1 - t0) / bucket_seconds))
    buckets = np.zeros(n)

    times: list[float] = []
    deltas: list[float] = []
    for t in transfers:
        dur = t.endtime - t.starttime
        if dur <= 1e-9:
            k = int((t.starttime - t0) // bucket_seconds)
            if 0 <= k < n:
                buckets[k] += t.file_size
            continue
        rate = t.file_size / dur
        times.extend((t.starttime, t.endtime))
        deltas.extend((rate, -rate))

    if times:
        order = np.argsort(times, kind="stable")
        ev_t = np.asarray(times, dtype=float)[order]
        ev_d = np.asarray(deltas, dtype=float)[order]
        # Merge rate-change events with bucket boundaries and integrate.
        edges = t0 + np.arange(n + 1) * bucket_seconds
        all_t = np.concatenate([ev_t, edges])
        all_d = np.concatenate([ev_d, np.zeros(n + 1)])
        order = np.argsort(all_t, kind="stable")
        all_t, all_d = all_t[order], all_d[order]
        rate_after = np.cumsum(all_d)
        seg_len = np.diff(all_t)
        seg_bytes = rate_after[:-1] * seg_len
        # Bucket edges are themselves events, so every segment lies in
        # exactly one bucket; classify by the segment *midpoint*, which
        # sits strictly inside and is immune to edge rounding.
        seg_mid = (all_t[:-1] + all_t[1:]) / 2.0
        seg_bucket = np.floor((seg_mid - t0) / bucket_seconds).astype(int)
        valid = (seg_bucket >= 0) & (seg_bucket < n) & (seg_len > 0)
        np.add.at(buckets, seg_bucket[valid], seg_bytes[valid])

    return BandwidthSeries(
        label=label, bucket_seconds=bucket_seconds, t0=t0, bytes_per_bucket=buckets
    )


def busiest_links(
    transfers: Sequence[TransferRecord],
    kind: str = "remote",
    top: int = 6,
) -> List[Tuple[Tuple[str, str], int]]:
    """The ``top`` most active (src, dst) pairs by transfer count.

    ``kind`` is ``"remote"`` (src != dst, both known) or ``"local"``
    (src == dst) — the selections behind Figs 7 and 8 respectively.
    """
    counts: Dict[Tuple[str, str], int] = {}
    for t in transfers:
        if t.has_unknown_site:
            continue
        is_local = t.source_site == t.destination_site
        if (kind == "local") != is_local:
            continue
        key = (t.source_site, t.destination_site)
        counts[key] = counts.get(key, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]


def link_transfers(
    transfers: Sequence[TransferRecord], src: str, dst: str
) -> List[TransferRecord]:
    return [t for t in transfers if t.source_site == src and t.destination_site == dst]


def directional_asymmetry(
    transfers: Sequence[TransferRecord], a: str, b: str, t0: float, t1: float,
    bucket_seconds: float = 300.0,
) -> Tuple[BandwidthSeries, BandwidthSeries]:
    """Fig 7a/7b: the two directions of one site pair, for comparing
    peak usage asymmetry."""
    fwd = bandwidth_series(link_transfers(transfers, a, b), t0, t1, bucket_seconds, f"{a}->{b}")
    rev = bandwidth_series(link_transfers(transfers, b, a), t0, t1, bucket_seconds, f"{b}->{a}")
    return fwd, rev
