"""Analyses over matched jobs and degraded transfer records.

Each module maps to specific paper exhibits:

* :mod:`summary` — Table 1 (activity breakdown), Table 2 (method
  comparison), §5.1 headline statistics.
* :mod:`queuing` — Figs 5-6 (queuing-time breakdowns of top jobs).
* :mod:`bandwidth` — Figs 7-8 (bandwidth variation over time).
* :mod:`matrix` — Fig 3 (site-to-site transfer volume matrix).
* :mod:`thresholds` — Fig 9 (status counts under transfer-time-%
  thresholds).
* :mod:`timeline` — Figs 10-12 (per-job matching timelines and case
  studies).
"""

from repro.core.analysis.queuing import (
    JobTransferTiming,
    TimingTable,
    compute_timing,
    timing_table,
    timings_for_result,
    top_jobs_breakdown,
)
from repro.core.analysis.summary import (
    ActivityRow,
    activity_breakdown,
    headline_stats,
    method_comparison_jobs,
    method_comparison_transfers,
)
from repro.core.analysis.bandwidth import BandwidthSeries, bandwidth_series, busiest_links
from repro.core.analysis.matrix import TransferMatrix, build_transfer_matrix
from repro.core.analysis.thresholds import (
    StatusCombo,
    threshold_sweep,
    threshold_sweep_result,
)
from repro.core.analysis.timeline import JobTimeline, build_timeline
from repro.core.analysis.errors import (
    ErrorFamily,
    ErrorMix,
    ErrorShift,
    compare_error_mixes,
    error_mix,
    site_error_profiles,
)
from repro.core.analysis.temporal import (
    TemporalProfile,
    submission_profile,
    transfer_volume_profile,
)

__all__ = [
    "JobTransferTiming",
    "TimingTable",
    "compute_timing",
    "timing_table",
    "timings_for_result",
    "top_jobs_breakdown",
    "ActivityRow",
    "activity_breakdown",
    "headline_stats",
    "method_comparison_jobs",
    "method_comparison_transfers",
    "BandwidthSeries",
    "bandwidth_series",
    "busiest_links",
    "TransferMatrix",
    "build_transfer_matrix",
    "StatusCombo",
    "threshold_sweep",
    "threshold_sweep_result",
    "JobTimeline",
    "build_timeline",
    "ErrorFamily",
    "ErrorMix",
    "ErrorShift",
    "compare_error_mixes",
    "error_mix",
    "site_error_profiles",
    "TemporalProfile",
    "submission_profile",
    "transfer_volume_profile",
]
