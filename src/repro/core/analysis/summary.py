"""Matching summaries: Table 1, Table 2, and the §5.1 headline numbers.

Every function here has a row path (reference loops over records and
``JobMatch`` objects) and a columnar path over the result's
:class:`~repro.columnar.frame.MatchFrame` / the window's
:class:`~repro.columnar.packs.WindowColumns` — integer counting either
way, so the outputs are identical, not merely close.  The ``frame``
keyword picks the dataplane (default
:data:`repro.columnar.DEFAULT_FRAME`); Table 1 additionally takes the
window's ``columns`` because its totals run over *all* transfers, not
just matched ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.columnar import DEFAULT_FRAME, validate_frame
from repro.columnar.packs import WindowColumns
from repro.core.analysis.queuing import (
    geomean_transfer_pct,
    mean_transfer_pct,
    timing_table,
    timings_for_result,
)
from repro.core.matching.base import MatchResult, TransferClass
from repro.core.matching.pipeline import MatchingReport
from repro.rucio.activities import TABLE1_ORDER, TransferActivity
from repro.telemetry.records import TransferRecord
from repro.units import ratio_pct


def _resolve(frame: Optional[str]) -> str:
    return validate_frame(frame) if frame is not None else DEFAULT_FRAME


@dataclass(frozen=True)
class ActivityRow:
    """One row of Table 1."""

    activity: str
    matched: int
    total: int

    @property
    def pct(self) -> float:
        return ratio_pct(self.matched, self.total)


def activity_breakdown(
    result: MatchResult,
    transfers: Sequence[TransferRecord],
    columns: Optional[WindowColumns] = None,
) -> List[ActivityRow]:
    """Table 1: matched vs total transfers (with jeditaskid) per activity.

    With ``columns`` (the window's pre-lowered packs, parallel to
    ``transfers``), the tallies are two bincounts over activity codes
    plus one sorted-membership test against the frame's matched row
    ids; otherwise the reference per-record loop runs.
    """
    if columns is not None:
        return _activity_breakdown_columnar(result, columns)
    matched_ids = result.matched_transfer_ids()
    totals: Dict[str, int] = {}
    matched: Dict[str, int] = {}
    for t in transfers:
        if not t.has_jeditaskid:
            continue
        totals[t.activity] = totals.get(t.activity, 0) + 1
        if t.row_id in matched_ids:
            matched[t.activity] = matched.get(t.activity, 0) + 1
    rows = [
        ActivityRow(activity=a.value, matched=matched.get(a.value, 0), total=totals.get(a.value, 0))
        for a in TABLE1_ORDER
    ]
    # §5.1: "nearly all transfers that have jeditaskid fall to the
    # following activities" — aggregate the small residue (e.g. tape
    # staging done under a task-scoped rule) so Total covers everything.
    named = {a.value for a in TABLE1_ORDER}
    other_total = sum(n for act, n in totals.items() if act not in named)
    other_matched = sum(n for act, n in matched.items() if act not in named)
    if other_total:
        rows.append(ActivityRow(activity="Other", matched=other_matched, total=other_total))
    rows.append(
        ActivityRow(
            activity="Total",
            matched=sum(r.matched for r in rows),
            total=sum(r.total for r in rows),
        )
    )
    return rows


def _activity_breakdown_columnar(
    result: MatchResult, columns: WindowColumns
) -> List[ActivityRow]:
    tp, it = columns.transfers, columns.interner
    with_task = tp.jeditaskid > 0
    acts = tp.activity[with_task]
    vocab = len(it)
    totals = np.bincount(acts, minlength=vocab) if len(acts) else np.zeros(vocab, np.int64)
    is_matched = np.isin(tp.row_id[with_task], result.frame().matched_row_ids())
    matched = (
        np.bincount(acts[is_matched], minlength=vocab)
        if is_matched.any()
        else np.zeros(vocab, np.int64)
    )
    rows = []
    named_codes = []
    for a in TABLE1_ORDER:
        code = it.code_of(a.value)
        if code >= 0:
            named_codes.append(code)
        rows.append(
            ActivityRow(
                activity=a.value,
                matched=int(matched[code]) if code >= 0 else 0,
                total=int(totals[code]) if code >= 0 else 0,
            )
        )
    other_total = int(totals.sum()) - sum(int(totals[c]) for c in named_codes)
    other_matched = int(matched.sum()) - sum(int(matched[c]) for c in named_codes)
    if other_total:
        rows.append(ActivityRow(activity="Other", matched=other_matched, total=other_total))
    rows.append(
        ActivityRow(
            activity="Total",
            matched=sum(r.matched for r in rows),
            total=sum(r.total for r in rows),
        )
    )
    return rows


@dataclass(frozen=True)
class MethodTransferRow:
    """One row of Table 2a."""

    method: str
    local: int
    remote: int

    @property
    def total(self) -> int:
        return self.local + self.remote


@dataclass(frozen=True)
class MethodJobRow:
    """One row of Table 2b."""

    method: str
    all_local: int
    all_remote: int
    mixed: int

    @property
    def total(self) -> int:
        return self.all_local + self.all_remote + self.mixed


def method_comparison_transfers(
    report: MatchingReport, frame: Optional[str] = None
) -> List[MethodTransferRow]:
    """Table 2a: matched transfer counts by method and locality."""
    columnar = _resolve(frame) == "columnar"
    rows = []
    for method in report.methods:
        result = report[method]
        local, remote = (
            result.frame().local_remote_split() if columnar else result.local_remote_split()
        )
        rows.append(MethodTransferRow(method=method, local=local, remote=remote))
    return rows


def method_comparison_jobs(
    report: MatchingReport, frame: Optional[str] = None
) -> List[MethodJobRow]:
    """Table 2b: matched job counts by method and transfer class."""
    columnar = _resolve(frame) == "columnar"
    rows = []
    for method in report.methods:
        result = report[method]
        by_class = result.frame().jobs_by_class() if columnar else result.jobs_by_class()
        rows.append(
            MethodJobRow(
                method=method,
                all_local=by_class[TransferClass.ALL_LOCAL],
                all_remote=by_class[TransferClass.ALL_REMOTE],
                mixed=by_class[TransferClass.MIXED],
            )
        )
    return rows


@dataclass(frozen=True)
class HeadlineStats:
    """§5.1's summary numbers for the exact method."""

    n_jobs: int
    n_transfers: int
    n_transfers_with_taskid: int
    n_matched_jobs: int
    n_matched_transfers: int
    mean_transfer_pct: float
    geomean_transfer_pct: float

    @property
    def job_match_pct(self) -> float:
        return ratio_pct(self.n_matched_jobs, self.n_jobs)

    @property
    def transfer_match_pct(self) -> float:
        return ratio_pct(self.n_matched_transfers, self.n_transfers_with_taskid)


def headline_stats(
    report: MatchingReport, method: str = "exact", frame: Optional[str] = None
) -> HeadlineStats:
    result = report[method]
    if _resolve(frame) == "columnar":
        f = result.frame()
        table = timing_table(result)
        n_matched_jobs = len(f)
        n_matched_transfers = f.n_matched_transfers
        timings = table
    else:
        n_matched_jobs = result.n_matched_jobs
        n_matched_transfers = result.n_matched_transfers
        timings = timings_for_result(result, frame="row")
    return HeadlineStats(
        n_jobs=report.n_jobs,
        n_transfers=report.n_transfers,
        n_transfers_with_taskid=report.n_transfers_with_taskid,
        n_matched_jobs=n_matched_jobs,
        n_matched_transfers=n_matched_transfers,
        mean_transfer_pct=mean_transfer_pct(timings),
        geomean_transfer_pct=geomean_transfer_pct(timings),
    )


def headline_series(
    pipeline,
    plans,
    method: str = "exact",
    executor=None,
    frame: Optional[str] = None,
) -> List[HeadlineStats]:
    """§5.1 headline numbers over many windows, one executor sweep.

    Consumes :class:`MatchingReport`\\ s through the pipeline's
    executor instead of re-running the pipeline per window: the sweep
    materializes each window's pre-selection once (shared with any
    other analysis on the same cache) and fans across cores when the
    executor is parallel.
    """
    reports = pipeline.sweep(plans, executor=executor)
    return [headline_stats(report, method=method, frame=frame) for report in reports]
