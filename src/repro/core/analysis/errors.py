"""Error-pattern analysis.

§3.1: "minimizing input data movement reduces network traffic but can
overload compute resources at a single site, thereby degrading job
throughput and **shifting failure patterns from the network to the
compute infrastructure**."  §5.3 adds that "transfer-related error
patterns may shift when alternative sites are used."

This module classifies job errors into network/storage-side
(stage-in/out) vs compute-side (payload) families, profiles them per
site, and compares error mixes between job populations — the tool
needed to *observe* the shift the paper hypothesises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.panda.errors import ErrorCode
from repro.telemetry.records import JobRecord
from repro.units import ratio_pct


class ErrorFamily(enum.Enum):
    NONE = "none"
    DATA = "data"          # stage-in/out, i.e. network/storage side
    COMPUTE = "compute"    # payload execution side
    SITE = "site"          # site service problems
    OTHER = "other"


#: error code -> family
ERROR_FAMILIES: Dict[int, ErrorFamily] = {
    0: ErrorFamily.NONE,
    int(ErrorCode.STAGEIN_FAILED): ErrorFamily.DATA,
    int(ErrorCode.STAGEIN_TIMEOUT): ErrorFamily.DATA,
    int(ErrorCode.STAGEOUT_FAILED): ErrorFamily.DATA,
    int(ErrorCode.PAYLOAD_OVERLAY): ErrorFamily.COMPUTE,
    int(ErrorCode.PAYLOAD_SEGFAULT): ErrorFamily.COMPUTE,
    int(ErrorCode.PAYLOAD_BAD_OUTPUT): ErrorFamily.COMPUTE,
    int(ErrorCode.SITE_SERVICE_ERROR): ErrorFamily.SITE,
    int(ErrorCode.LOST_HEARTBEAT): ErrorFamily.SITE,
}


def family_of(error_code: int) -> ErrorFamily:
    return ERROR_FAMILIES.get(error_code, ErrorFamily.OTHER)


@dataclass(frozen=True)
class ErrorMix:
    """Failure composition of one job population."""

    n_jobs: int
    n_failed: int
    by_family: Dict[ErrorFamily, int]
    by_code: Dict[int, int]

    @property
    def failure_rate(self) -> float:
        return self.n_failed / self.n_jobs if self.n_jobs else 0.0

    def family_share(self, family: ErrorFamily) -> float:
        """Share of *failures* attributed to the family."""
        if not self.n_failed:
            return 0.0
        return self.by_family.get(family, 0) / self.n_failed

    def dominant_family(self) -> ErrorFamily:
        failures = {f: n for f, n in self.by_family.items() if f is not ErrorFamily.NONE}
        if not failures:
            return ErrorFamily.NONE
        return max(failures, key=lambda f: failures[f])


def error_mix(jobs: Sequence[JobRecord]) -> ErrorMix:
    by_family: Dict[ErrorFamily, int] = {}
    by_code: Dict[int, int] = {}
    failed = 0
    for j in jobs:
        if j.succeeded:
            continue
        failed += 1
        fam = family_of(j.error_code)
        by_family[fam] = by_family.get(fam, 0) + 1
        by_code[j.error_code] = by_code.get(j.error_code, 0) + 1
    return ErrorMix(n_jobs=len(jobs), n_failed=failed, by_family=by_family, by_code=by_code)


@dataclass(frozen=True)
class SiteErrorProfile:
    site: str
    mix: ErrorMix

    @property
    def failure_rate(self) -> float:
        return self.mix.failure_rate


def site_error_profiles(
    jobs: Sequence[JobRecord], min_jobs: int = 10
) -> List[SiteErrorProfile]:
    """Per-site failure composition, highest failure rate first."""
    by_site: Dict[str, List[JobRecord]] = {}
    for j in jobs:
        by_site.setdefault(j.computingsite, []).append(j)
    profiles = [
        SiteErrorProfile(site=s, mix=error_mix(js))
        for s, js in by_site.items()
        if len(js) >= min_jobs
    ]
    profiles.sort(key=lambda p: -p.failure_rate)
    return profiles


@dataclass(frozen=True)
class ErrorShift:
    """Comparison of two populations' failure composition (§3.1)."""

    baseline: ErrorMix
    alternative: ErrorMix

    def family_delta(self, family: ErrorFamily) -> float:
        """Change in the family's share of failures (alternative - baseline)."""
        return self.alternative.family_share(family) - self.baseline.family_share(family)

    @property
    def shifted_toward_compute(self) -> bool:
        """The paper's predicted direction under aggressive locality."""
        return self.family_delta(ErrorFamily.COMPUTE) > 0

    def summary(self) -> str:
        lines = [
            f"failure rate: {self.baseline.failure_rate:.1%} -> "
            f"{self.alternative.failure_rate:.1%}"
        ]
        for fam in (ErrorFamily.DATA, ErrorFamily.COMPUTE, ErrorFamily.SITE):
            lines.append(
                f"  {fam.value:<8s} share: {self.baseline.family_share(fam):.1%} -> "
                f"{self.alternative.family_share(fam):.1%} "
                f"({self.family_delta(fam):+.1%})"
            )
        return "\n".join(lines)


def compare_error_mixes(
    baseline_jobs: Sequence[JobRecord], alternative_jobs: Sequence[JobRecord]
) -> ErrorShift:
    return ErrorShift(
        baseline=error_mix(baseline_jobs),
        alternative=error_mix(alternative_jobs),
    )


def top_error_codes(mix: ErrorMix, top: int = 5) -> List[tuple[int, int, float]]:
    """(code, count, % of failures), most frequent first."""
    ranked = sorted(mix.by_code.items(), key=lambda kv: -kv[1])
    return [(code, n, ratio_pct(n, mix.n_failed)) for code, n in ranked[:top]]
