"""Job-level provenance graphs.

§6 closes with the suggestion that "future iterations of challenges and
demonstrations incorporate **job-level provenance** and correlation to
target end-to-end performance rather than transfer throughput alone."

Given matched jobs, this module builds the provenance graph connecting
jobs ← transfers ← source sites (and onwards to destination sites), so
end-to-end questions become graph queries: which storage fed this
job?  which sites feed the most failed work?  how concentrated is the
feeding structure (a resilience risk)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.core.matching.base import JobMatch
from repro.telemetry.records import UNKNOWN_SITE

#: node kind attribute values
KIND_JOB = "job"
KIND_TRANSFER = "transfer"
KIND_SITE = "site"


def build_provenance_graph(matches: Sequence[JobMatch]) -> nx.DiGraph:
    """Directed graph: source site → transfer → job.

    Node names: ``site:<name>``, ``xfer:<row_id>``, ``job:<pandaid>``.
    Edges carry ``bytes`` where meaningful.
    """
    g = nx.DiGraph()
    for m in matches:
        job_node = f"job:{m.job.pandaid}"
        g.add_node(job_node, kind=KIND_JOB, status=m.job.status,
                   site=m.job.computingsite)
        for t in m.transfers:
            xfer_node = f"xfer:{t.row_id}"
            g.add_node(xfer_node, kind=KIND_TRANSFER, bytes=t.file_size,
                       activity=t.activity)
            src_node = f"site:{t.source_site or UNKNOWN_SITE}"
            g.add_node(src_node, kind=KIND_SITE)
            g.add_edge(src_node, xfer_node, bytes=t.file_size)
            g.add_edge(xfer_node, job_node, bytes=t.file_size)
    return g


def feeding_sites(g: nx.DiGraph, pandaid: int) -> List[str]:
    """Which sites' storage fed this job (2 hops upstream)."""
    job_node = f"job:{pandaid}"
    if job_node not in g:
        return []
    sites = set()
    for xfer in g.predecessors(job_node):
        for site in g.predecessors(xfer):
            sites.add(site.split(":", 1)[1])
    return sorted(sites)


def site_feed_stats(g: nx.DiGraph) -> Dict[str, Tuple[int, float]]:
    """Per source site: (jobs fed, bytes served)."""
    out: Dict[str, Tuple[int, float]] = {}
    for node, data in g.nodes(data=True):
        if data.get("kind") != KIND_SITE:
            continue
        site = node.split(":", 1)[1]
        jobs = set()
        total = 0.0
        for xfer in g.successors(node):
            total += g.nodes[xfer].get("bytes", 0)
            jobs.update(g.successors(xfer))
        out[site] = (len(jobs), total)
    return out


def failed_feed_fraction(g: nx.DiGraph, site: str) -> float:
    """Fraction of the jobs fed by ``site`` that failed — a per-source
    risk measure."""
    node = f"site:{site}"
    if node not in g:
        return 0.0
    jobs = set()
    for xfer in g.successors(node):
        jobs.update(g.successors(xfer))
    if not jobs:
        return 0.0
    failed = sum(1 for j in jobs if g.nodes[j].get("status") == "failed")
    return failed / len(jobs)


@dataclass(frozen=True)
class ProvenanceSummary:
    n_jobs: int
    n_transfers: int
    n_source_sites: int
    #: share of served bytes from the single busiest source
    top_source_share: float
    #: mean number of distinct sources per job
    mean_sources_per_job: float


def summarize(g: nx.DiGraph) -> ProvenanceSummary:
    jobs = [n for n, d in g.nodes(data=True) if d.get("kind") == KIND_JOB]
    transfers = [n for n, d in g.nodes(data=True) if d.get("kind") == KIND_TRANSFER]
    stats = site_feed_stats(g)
    total_bytes = sum(b for _, b in stats.values())
    top_share = (
        max(b for _, b in stats.values()) / total_bytes
        if stats and total_bytes else 0.0
    )
    per_job = []
    for j in jobs:
        pid = int(j.split(":", 1)[1])
        per_job.append(len(feeding_sites(g, pid)))
    return ProvenanceSummary(
        n_jobs=len(jobs),
        n_transfers=len(transfers),
        n_source_sites=len(stats),
        top_source_share=top_share,
        mean_sources_per_job=float(sum(per_job) / len(per_job)) if per_job else 0.0,
    )
