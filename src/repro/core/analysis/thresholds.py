"""The status / transfer-time-percentage threshold sweep (Fig 9).

Fig 9 counts exactly-matched jobs in four (job status, task status)
combinations, bucketed by whether their transfer-time percentage falls
below a varying threshold T.  The paper reads the plot cumulatively:
"913 jobs had a transfer-time percentage below 1%, while another 525
jobs fell within the 1%-2% interval".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.columnar import DEFAULT_FRAME, validate_frame
from repro.core.analysis.queuing import (
    JobTransferTiming,
    timing_table,
    timings_for_result,
)
from repro.core.matching.base import MatchResult


class StatusCombo(enum.Enum):
    """The four (job, task) status combinations of Fig 9."""

    JOB_OK_TASK_OK = "job finished / task finished"
    JOB_FAIL_TASK_OK = "job failed / task finished"
    JOB_OK_TASK_FAIL = "job finished / task failed"
    JOB_FAIL_TASK_FAIL = "job failed / task failed"

    @classmethod
    def of(cls, timing: JobTransferTiming) -> "StatusCombo":
        job_ok = timing.status == "finished"
        task_ok = timing.taskstatus == "finished"
        if job_ok and task_ok:
            return cls.JOB_OK_TASK_OK
        if not job_ok and task_ok:
            return cls.JOB_FAIL_TASK_OK
        if job_ok and not task_ok:
            return cls.JOB_OK_TASK_FAIL
        return cls.JOB_FAIL_TASK_FAIL


#: The threshold grid of Fig 9 (percent).
DEFAULT_THRESHOLDS = [1, 2, 5, 10, 25, 50, 75, 100]


@dataclass
class ThresholdSweep:
    """Cumulative job counts per status combo per threshold."""

    thresholds: List[float]
    #: combo -> list aligned with thresholds: jobs with pct <= T
    cumulative: Dict[StatusCombo, List[int]]
    n_jobs: int

    def below(self, combo: StatusCombo, threshold: float) -> int:
        i = self.thresholds.index(threshold)
        return self.cumulative[combo][i]

    def above(self, combo: StatusCombo, threshold: float) -> int:
        """Jobs of the combo strictly above the threshold — the extreme
        tail (72 jobs above T=75% in the paper)."""
        total = self.cumulative[combo][-1] if self.thresholds[-1] >= 100 else None
        if total is None:
            raise ValueError("threshold grid must end at 100 for tail queries")
        return total - self.below(combo, threshold)

    def tail_total(self, threshold: float) -> int:
        return sum(self.above(c, threshold) for c in StatusCombo)

    def success_fraction(self) -> float:
        """Fraction of matched jobs that succeeded (paper: 80.5%)."""
        if self.n_jobs == 0:
            return 0.0
        ok = (
            self.cumulative[StatusCombo.JOB_OK_TASK_OK][-1]
            + self.cumulative[StatusCombo.JOB_OK_TASK_FAIL][-1]
        )
        return ok / self.n_jobs

    def failure_enrichment(self, threshold: float) -> float:
        """Failed-job share above the threshold divided by the overall
        failed share — >1 means failures concentrate in the tail, the
        paper's central Fig 9 observation."""
        overall_failed = self.n_jobs - (
            self.cumulative[StatusCombo.JOB_OK_TASK_OK][-1]
            + self.cumulative[StatusCombo.JOB_OK_TASK_FAIL][-1]
        )
        tail = self.tail_total(threshold)
        if tail == 0 or overall_failed == 0 or self.n_jobs == 0:
            return 0.0
        tail_failed = self.above(StatusCombo.JOB_FAIL_TASK_OK, threshold) + self.above(
            StatusCombo.JOB_FAIL_TASK_FAIL, threshold
        )
        return (tail_failed / tail) / (overall_failed / self.n_jobs)


def threshold_sweep(
    timings: Sequence[JobTransferTiming],
    thresholds: Sequence[float] = tuple(DEFAULT_THRESHOLDS),
) -> ThresholdSweep:
    ths = sorted(float(t) for t in thresholds)
    cumulative: Dict[StatusCombo, List[int]] = {c: [] for c in StatusCombo}
    by_combo: Dict[StatusCombo, List[float]] = {c: [] for c in StatusCombo}
    for t in timings:
        by_combo[StatusCombo.of(t)].append(t.transfer_pct)
    for combo, pcts in by_combo.items():
        pcts.sort()
        for th in ths:
            cumulative[combo].append(sum(1 for p in pcts if p <= th))
    return ThresholdSweep(thresholds=ths, cumulative=cumulative, n_jobs=len(timings))


def threshold_sweep_result(
    result: MatchResult,
    thresholds: Sequence[float] = tuple(DEFAULT_THRESHOLDS),
    frame: Optional[str] = None,
) -> ThresholdSweep:
    """Fig 9 sweep straight from a match result, on either dataplane.

    The columnar path runs the whole grid as one cumulative pass: sort
    each status combo's percentage vector once, then every threshold
    count is a ``searchsorted`` (``side="right"`` ≡ the reference's
    ``p <= th`` tally) — no per-threshold rescan of the timings.
    """
    choice = validate_frame(frame) if frame is not None else DEFAULT_FRAME
    if choice == "row":
        return threshold_sweep(timings_for_result(result, frame="row"), thresholds)
    table = timing_table(result)
    ths = sorted(float(t) for t in thresholds)
    tharr = np.asarray(ths, dtype=np.float64)
    finished = table.interner.code_of("finished")
    job_ok = table.status == finished
    task_ok = table.taskstatus == finished
    masks = {
        StatusCombo.JOB_OK_TASK_OK: job_ok & task_ok,
        StatusCombo.JOB_FAIL_TASK_OK: ~job_ok & task_ok,
        StatusCombo.JOB_OK_TASK_FAIL: job_ok & ~task_ok,
        StatusCombo.JOB_FAIL_TASK_FAIL: ~job_ok & ~task_ok,
    }
    cumulative = {
        combo: np.searchsorted(
            np.sort(table.transfer_pct[mask]), tharr, side="right"
        ).tolist()
        for combo, mask in masks.items()
    }
    return ThresholdSweep(thresholds=ths, cumulative=cumulative, n_jobs=len(table))
