"""Per-job matching timelines (Figs 10-12) and case-study selection.

A :class:`JobTimeline` renders one matched job the way the paper's case
studies do: creation / start / end markers with every matched transfer's
interval, throughput, and phase attribution — enough to diagnose
sequential staging (Fig 10), queue+wall-spanning transfers (Fig 11),
and duplicated transfer sets (Fig 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.matching.base import JobMatch
from repro.telemetry.records import TransferRecord


@dataclass(frozen=True)
class TimelineTransfer:
    """One transfer placed on the job's time axis (relative seconds)."""

    index: int
    rel_start: float
    rel_end: float
    file_size: int
    throughput: float
    source_site: str
    destination_site: str
    activity: str

    @property
    def duration(self) -> float:
        return self.rel_end - self.rel_start


@dataclass
class JobTimeline:
    """Fig 10/11/12-style view of one matched job."""

    pandaid: int
    status: str
    error_code: int
    error_message: str
    queuing_time: float
    wall_time: float
    transfers: List[TimelineTransfer]

    @property
    def lifetime(self) -> float:
        return self.queuing_time + self.wall_time

    @property
    def total_transfer_bytes(self) -> int:
        return sum(t.file_size for t in self.transfers)

    def throughput_spread(self) -> float:
        """Max/min achieved throughput across transfers — Fig 10's 17.7x
        evidence of inconsistent local bandwidth."""
        rates = [t.throughput for t in self.transfers if t.throughput > 0]
        if len(rates) < 2:
            return 1.0
        return max(rates) / min(rates)

    def transfers_are_sequential(self, tolerance: float = 1.0) -> bool:
        """True when no two transfers overlap by *more than* ``tolerance``
        seconds — Fig 10's "transfers occurred sequentially rather than
        in parallel" signature.

        Closed semantics at the edge: an overlap of exactly
        ``tolerance`` still counts as sequential.  The overlap is
        measured directly (``e1 - s2``) rather than via a shifted bound
        (``s2 < e1 - tolerance``), which rounds differently for large
        offsets and made the equality edge depend on the spans'
        magnitudes.
        """
        spans = sorted((t.rel_start, t.rel_end) for t in self.transfers)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            if e1 - s2 > tolerance:
                return False
        return True

    def transfers_spanning_execution(self) -> List[TimelineTransfer]:
        """Transfers crossing from the queuing phase into wall time —
        the Fig 11 anomaly ("span across both the job queuing time and
        execution time")."""
        return [
            t
            for t in self.transfers
            if t.rel_start < self.queuing_time < t.rel_end
        ]

    def queue_transfer_fraction(self) -> float:
        """Union transfer time within the queue / queuing time."""
        if self.queuing_time <= 0:
            return 0.0
        clipped = sorted(
            (max(0.0, t.rel_start), min(self.queuing_time, t.rel_end))
            for t in self.transfers
            if min(self.queuing_time, t.rel_end) > max(0.0, t.rel_start)
        )
        total, cur_s, cur_e = 0.0, None, 0.0
        for a, b in clipped:
            if cur_s is None:
                cur_s, cur_e = a, b
            elif a <= cur_e:
                cur_e = max(cur_e, b)
            else:
                total += cur_e - cur_s
                cur_s, cur_e = a, b
        if cur_s is not None:
            total += cur_e - cur_s
        return total / self.queuing_time


def build_timeline(match: JobMatch) -> Optional[JobTimeline]:
    """Timeline for one matched job; None when lifecycle times missing."""
    job = match.job
    if job.starttime is None or job.endtime is None:
        return None
    t0 = job.creationtime
    transfers = [
        TimelineTransfer(
            index=i,
            rel_start=t.starttime - t0,
            rel_end=t.endtime - t0,
            file_size=t.file_size,
            throughput=t.throughput,
            source_site=t.source_site,
            destination_site=t.destination_site,
            activity=t.activity,
        )
        for i, t in enumerate(sorted(match.transfers, key=lambda t: t.starttime))
    ]
    return JobTimeline(
        pandaid=job.pandaid,
        status=job.status,
        error_code=job.error_code,
        error_message=job.error_message,
        queuing_time=job.starttime - job.creationtime,
        wall_time=job.endtime - job.starttime,
        transfers=transfers,
    )


# -- case-study selectors ------------------------------------------------------


def find_high_staging_success(
    matches: Sequence[JobMatch], min_fraction: float = 0.5
) -> List[JobTimeline]:
    """Fig 10 candidates: successful jobs whose queue was dominated by
    (local) transfers, sorted by staging fraction descending."""
    out = []
    for m in matches:
        if m.job.status != "finished":
            continue
        tl = build_timeline(m)
        if tl is None or len(tl.transfers) < 2:
            continue
        if tl.queue_transfer_fraction() >= min_fraction:
            out.append(tl)
    out.sort(key=lambda t: -t.queue_transfer_fraction())
    return out


def find_failed_with_overlap(matches: Sequence[JobMatch]) -> List[JobTimeline]:
    """Fig 11 candidates: failed jobs with a transfer spanning queue and
    wall time, sorted by the spanning transfer's share of the lifetime."""
    out = []
    for m in matches:
        if m.job.status != "failed":
            continue
        tl = build_timeline(m)
        if tl is None:
            continue
        spanning = tl.transfers_spanning_execution()
        if spanning:
            out.append(tl)
    out.sort(
        key=lambda t: -max(
            (x.duration for x in t.transfers_spanning_execution()), default=0.0
        )
    )
    return out


def find_sequential_underutilized(
    matches: Sequence[JobMatch], min_spread: float = 5.0
) -> List[JobTimeline]:
    """Jobs showing both sequential staging and a large throughput
    spread — the combined Fig 10 signature."""
    out = []
    for m in matches:
        tl = build_timeline(m)
        if tl is None or len(tl.transfers) < 2:
            continue
        if tl.transfers_are_sequential() and tl.throughput_spread() >= min_spread:
            out.append(tl)
    out.sort(key=lambda t: -t.throughput_spread())
    return out
