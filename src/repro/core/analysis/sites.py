"""Per-site operational dashboards.

Aggregates everything an operator needs per site — job throughput and
failure rates, queuing statistics, inbound/outbound traffic, and error
composition — in one pass over the degraded records.  This is the
"site view" that turns the paper's global diagnoses (hot spots,
imbalance, shifted error patterns) into actionable per-site facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.columnar.kernels import group_boundaries
from repro.columnar.packs import WindowColumns
from repro.core.analysis.errors import ErrorFamily, ErrorMix, error_mix
from repro.telemetry.records import JobRecord, TransferRecord, UNKNOWN_SITE


@dataclass
class SiteDashboard:
    """One site's operational summary."""

    site: str
    n_jobs: int = 0
    n_failed: int = 0
    queue_times: List[float] = field(default_factory=list)
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    bytes_local: float = 0.0
    error_mix: ErrorMix = field(
        default_factory=lambda: ErrorMix(0, 0, {}, {}))

    @property
    def failure_rate(self) -> float:
        return self.n_failed / self.n_jobs if self.n_jobs else 0.0

    @property
    def mean_queue(self) -> float:
        return float(np.mean(self.queue_times)) if self.queue_times else 0.0

    @property
    def p95_queue(self) -> float:
        return float(np.percentile(self.queue_times, 95)) if self.queue_times else 0.0

    @property
    def net_flow(self) -> float:
        """Positive = net importer of data."""
        return self.bytes_in - self.bytes_out

    @property
    def dominant_error_family(self) -> ErrorFamily:
        return self.error_mix.dominant_family()


def build_dashboards(
    jobs: Sequence[JobRecord],
    transfers: Sequence[TransferRecord],
    columns: Optional[WindowColumns] = None,
) -> Dict[str, SiteDashboard]:
    """One pass over both record sets; returns site -> dashboard.

    With ``columns`` (packs parallel to the record lists), the counts
    and byte totals come from bincounts/``np.add.at`` over site codes
    — identical values in identical dict insertion order, so even
    tie-breaking in :func:`hottest_sites` is unchanged.  Error mixes
    still walk the per-site job records (they inspect error codes the
    packs don't carry), grouped by one stable argsort.
    """
    if columns is not None:
        return _build_dashboards_columnar(jobs, transfers, columns)
    boards: Dict[str, SiteDashboard] = {}

    def board(site: str) -> SiteDashboard:
        if site not in boards:
            boards[site] = SiteDashboard(site=site)
        return boards[site]

    jobs_by_site: Dict[str, List[JobRecord]] = {}
    for j in jobs:
        site = j.computingsite or UNKNOWN_SITE
        b = board(site)
        b.n_jobs += 1
        if not j.succeeded:
            b.n_failed += 1
        q = j.queuing_time
        if q is not None:
            b.queue_times.append(q)
        jobs_by_site.setdefault(site, []).append(j)

    for site, js in jobs_by_site.items():
        boards[site].error_mix = error_mix(js)

    for t in transfers:
        src = t.source_site or UNKNOWN_SITE
        dst = t.destination_site or UNKNOWN_SITE
        if src == dst:
            board(src).bytes_local += t.file_size
        else:
            board(src).bytes_out += t.file_size
            board(dst).bytes_in += t.file_size

    return boards


def _build_dashboards_columnar(
    jobs: Sequence[JobRecord],
    transfers: Sequence[TransferRecord],
    columns: WindowColumns,
) -> Dict[str, SiteDashboard]:
    jp, tp, it = columns.jobs, columns.transfers, columns.interner
    # Canonical site codes: the empty label folds into UNKNOWN (the
    # reference's ``site or UNKNOWN_SITE``).  When UNKNOWN itself was
    # never interned, a synthetic code one past the vocabulary stands
    # in for it.
    unk = it.code_of(UNKNOWN_SITE)
    synthetic_unk = unk < 0
    if synthetic_unk:
        unk = len(it)
    empty = it.code_of("")

    def canon(codes: np.ndarray) -> np.ndarray:
        return np.where(codes == empty, unk, codes) if empty >= 0 else codes

    j_site = canon(jp.site)
    t_src = canon(tp.src)
    t_dst = canon(tp.dst)

    # Reproduce the reference's dict insertion order: jobs first, then
    # each transfer's source before its destination.  (A local transfer
    # only touches its source board, but since src == dst there, the
    # interleaved sequence has the same first appearances.)
    pair = np.stack([t_src, t_dst], axis=1).ravel() if len(t_src) else t_src
    seq = np.concatenate([j_site, pair])
    uniq, first_pos = np.unique(seq, return_index=True)
    site_codes = uniq[np.argsort(first_pos)]
    n_sites = len(site_codes)
    lut = np.full(unk + 1 if synthetic_unk else len(it), -1, dtype=np.int64)
    lut[site_codes] = np.arange(n_sites, dtype=np.int64)

    j_idx = lut[j_site]
    n_jobs = np.bincount(j_idx, minlength=n_sites) if len(j_idx) else np.zeros(n_sites, np.int64)
    failed = jp.status != it.code_of("finished")
    n_failed = (
        np.bincount(j_idx[failed], minlength=n_sites)
        if failed.any()
        else np.zeros(n_sites, np.int64)
    )

    bytes_in = np.zeros(n_sites, dtype=np.float64)
    bytes_out = np.zeros(n_sites, dtype=np.float64)
    bytes_local = np.zeros(n_sites, dtype=np.float64)
    if len(t_src):
        local = t_src == t_dst
        sizes = tp.size
        np.add.at(bytes_local, lut[t_src[local]], sizes[local])
        np.add.at(bytes_out, lut[t_src[~local]], sizes[~local])
        np.add.at(bytes_in, lut[t_dst[~local]], sizes[~local])

    started = ~np.isnan(jp.start)
    queue = jp.start - jp.creation

    # Per-site job groups in record order (stable argsort), for the
    # queue-time lists and the error mixes.
    order = np.argsort(j_idx, kind="stable")
    starts = group_boundaries(j_idx[order])
    groups: Dict[int, np.ndarray] = {}
    for i, lo in enumerate(starts.tolist()):
        hi = starts[i + 1] if i + 1 < len(starts) else len(order)
        members = order[lo:int(hi)]
        groups[int(j_idx[members[0]])] = members

    boards: Dict[str, SiteDashboard] = {}
    for k, code in enumerate(site_codes.tolist()):
        name = UNKNOWN_SITE if (synthetic_unk and code == unk) else it.decode(code)
        board = SiteDashboard(
            site=name,
            n_jobs=int(n_jobs[k]),
            n_failed=int(n_failed[k]),
            bytes_in=float(bytes_in[k]),
            bytes_out=float(bytes_out[k]),
            bytes_local=float(bytes_local[k]),
        )
        members = groups.get(k)
        if members is not None:
            board.queue_times = queue[members[started[members]]].tolist()
            board.error_mix = error_mix([jobs[i] for i in members.tolist()])
        boards[name] = board
    return boards


def hottest_sites(
    boards: Dict[str, SiteDashboard], by: str = "failure_rate", top: int = 5,
    min_jobs: int = 10,
) -> List[SiteDashboard]:
    """Rank sites by a dashboard attribute (failure_rate, p95_queue, ...)."""
    eligible = [b for b in boards.values() if b.n_jobs >= min_jobs]
    return sorted(eligible, key=lambda b: -getattr(b, by))[:top]


def importers_and_exporters(
    boards: Dict[str, SiteDashboard], top: int = 5
) -> tuple[List[SiteDashboard], List[SiteDashboard]]:
    """Largest net data importers and exporters."""
    ranked = sorted(boards.values(), key=lambda b: b.net_flow)
    exporters = [b for b in ranked[:top] if b.net_flow < 0]
    importers = [b for b in ranked[::-1][:top] if b.net_flow > 0]
    return importers, exporters
