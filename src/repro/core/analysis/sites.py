"""Per-site operational dashboards.

Aggregates everything an operator needs per site — job throughput and
failure rates, queuing statistics, inbound/outbound traffic, and error
composition — in one pass over the degraded records.  This is the
"site view" that turns the paper's global diagnoses (hot spots,
imbalance, shifted error patterns) into actionable per-site facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.analysis.errors import ErrorFamily, ErrorMix, error_mix
from repro.telemetry.records import JobRecord, TransferRecord, UNKNOWN_SITE


@dataclass
class SiteDashboard:
    """One site's operational summary."""

    site: str
    n_jobs: int = 0
    n_failed: int = 0
    queue_times: List[float] = field(default_factory=list)
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    bytes_local: float = 0.0
    error_mix: ErrorMix = field(
        default_factory=lambda: ErrorMix(0, 0, {}, {}))

    @property
    def failure_rate(self) -> float:
        return self.n_failed / self.n_jobs if self.n_jobs else 0.0

    @property
    def mean_queue(self) -> float:
        return float(np.mean(self.queue_times)) if self.queue_times else 0.0

    @property
    def p95_queue(self) -> float:
        return float(np.percentile(self.queue_times, 95)) if self.queue_times else 0.0

    @property
    def net_flow(self) -> float:
        """Positive = net importer of data."""
        return self.bytes_in - self.bytes_out

    @property
    def dominant_error_family(self) -> ErrorFamily:
        return self.error_mix.dominant_family()


def build_dashboards(
    jobs: Sequence[JobRecord],
    transfers: Sequence[TransferRecord],
) -> Dict[str, SiteDashboard]:
    """One pass over both record sets; returns site -> dashboard."""
    boards: Dict[str, SiteDashboard] = {}

    def board(site: str) -> SiteDashboard:
        if site not in boards:
            boards[site] = SiteDashboard(site=site)
        return boards[site]

    jobs_by_site: Dict[str, List[JobRecord]] = {}
    for j in jobs:
        site = j.computingsite or UNKNOWN_SITE
        b = board(site)
        b.n_jobs += 1
        if not j.succeeded:
            b.n_failed += 1
        q = j.queuing_time
        if q is not None:
            b.queue_times.append(q)
        jobs_by_site.setdefault(site, []).append(j)

    for site, js in jobs_by_site.items():
        boards[site].error_mix = error_mix(js)

    for t in transfers:
        src = t.source_site or UNKNOWN_SITE
        dst = t.destination_site or UNKNOWN_SITE
        if src == dst:
            board(src).bytes_local += t.file_size
        else:
            board(src).bytes_out += t.file_size
            board(dst).bytes_in += t.file_size

    return boards


def hottest_sites(
    boards: Dict[str, SiteDashboard], by: str = "failure_rate", top: int = 5,
    min_jobs: int = 10,
) -> List[SiteDashboard]:
    """Rank sites by a dashboard attribute (failure_rate, p95_queue, ...)."""
    eligible = [b for b in boards.values() if b.n_jobs >= min_jobs]
    return sorted(eligible, key=lambda b: -getattr(b, by))[:top]


def importers_and_exporters(
    boards: Dict[str, SiteDashboard], top: int = 5
) -> tuple[List[SiteDashboard], List[SiteDashboard]]:
    """Largest net data importers and exporters."""
    ranked = sorted(boards.values(), key=lambda b: b.net_flow)
    exporters = [b for b in ranked[:top] if b.net_flow < 0]
    importers = [b for b in ranked[::-1][:top] if b.net_flow > 0]
    return importers, exporters
