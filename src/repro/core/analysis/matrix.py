"""The site-to-site transfer volume matrix (Fig 3, §3.2).

Cell (i, j) holds the total bytes moved from source site i to
destination site j over the window.  The UNKNOWN pseudo-site gets its
own row/column, aggregating "all transfers with either an unidentified
source or destination" exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.packs import WindowColumns
from repro.telemetry.records import UNKNOWN_SITE, TransferRecord


@dataclass
class TransferMatrix:
    """The Fig 3 heat-map data plus the summary statistics §3.2 quotes."""

    site_names: List[str]
    volume: np.ndarray  # bytes, shape (n, n)

    def __post_init__(self) -> None:
        n = len(self.site_names)
        if self.volume.shape != (n, n):
            raise ValueError(f"matrix shape {self.volume.shape} != ({n}, {n})")

    @property
    def n_sites(self) -> int:
        return len(self.site_names)

    @property
    def total_volume(self) -> float:
        return float(self.volume.sum())

    @property
    def local_volume(self) -> float:
        """Diagonal mass — PanDA's locality principle makes it dominate."""
        return float(np.trace(self.volume))

    @property
    def remote_volume(self) -> float:
        return self.total_volume - self.local_volume

    @property
    def local_fraction(self) -> float:
        total = self.total_volume
        return self.local_volume / total if total else 0.0

    def mean_pair_volume(self, active_only: bool = True) -> float:
        """Average volume across site pairs (§3.2's 77.75 TB average)."""
        if active_only:
            vals = self.volume[self.volume > 0]
            return float(vals.mean()) if len(vals) else 0.0
        return float(self.volume.mean())

    def geometric_mean_pair_volume(self) -> float:
        """Geometric mean over *active* pairs (§3.2's 1.11 TB geomean —
        orders of magnitude below the arithmetic mean: the imbalance)."""
        vals = self.volume[self.volume > 0]
        if len(vals) == 0:
            return 0.0
        return float(np.exp(np.mean(np.log(vals))))

    def outliers(self, threshold: float) -> List[Tuple[str, str, float]]:
        """Cells exceeding ``threshold`` bytes, largest first."""
        out = []
        idx = np.argwhere(self.volume > threshold)
        for i, j in idx:
            out.append((self.site_names[i], self.site_names[j], float(self.volume[i, j])))
        out.sort(key=lambda x: -x[2])
        return out

    def unknown_volume(self) -> float:
        """Mass on the UNKNOWN row + column (double counting the corner once)."""
        if UNKNOWN_SITE not in self.site_names:
            return 0.0
        k = self.site_names.index(UNKNOWN_SITE)
        return float(self.volume[k, :].sum() + self.volume[:, k].sum() - self.volume[k, k])

    def sites_with_traffic(self) -> int:
        """Number of sites appearing as source or destination of any bytes."""
        active = (self.volume.sum(axis=0) > 0) | (self.volume.sum(axis=1) > 0)
        return int(active.sum())

    def imbalance_ratio(self) -> float:
        """Arithmetic-to-geometric mean ratio over active pairs — the
        paper's quantitative signature of extreme imbalance (~70x)."""
        g = self.geometric_mean_pair_volume()
        return self.mean_pair_volume() / g if g > 0 else 0.0


def build_transfer_matrix(
    transfers: Sequence[TransferRecord],
    site_names: Sequence[str],
    columns: Optional[WindowColumns] = None,
) -> TransferMatrix:
    """Accumulate transfer volumes into the site matrix.

    ``site_names`` must include ``UNKNOWN`` to receive mislabelled
    endpoints; records naming sites outside the list are folded into
    UNKNOWN as well (invalid labels, §4.3).  With ``columns`` (packs
    parallel to ``transfers``), the per-record dict lookups become one
    code → matrix-index table gather over the interned site columns.
    """
    names = list(site_names)
    index: Dict[str, int] = {n: i for i, n in enumerate(names)}
    if UNKNOWN_SITE not in index:
        raise ValueError("site_names must include the UNKNOWN pseudo-site")
    unk = index[UNKNOWN_SITE]
    n = len(names)
    if not transfers and (columns is None or len(columns.transfers) == 0):
        return TransferMatrix(site_names=names, volume=np.zeros((n, n)))
    # Vectorised accumulation: map each record to a flat (src*n + dst)
    # cell id and bincount the byte weights — O(records) with no Python
    # arithmetic in the loop body beyond the dict lookups.
    if columns is not None:
        tp, it = columns.transfers, columns.interner
        lut = np.full(len(it), unk, dtype=np.int64)
        for name, i in index.items():
            code = it.code_of(name)
            if code >= 0:
                lut[code] = i
        src = lut[tp.src]
        dst = lut[tp.dst]
        sizes = tp.size.astype(np.float64)
    else:
        src = np.fromiter(
            (index.get(t.source_site, unk) for t in transfers), dtype=np.int64,
            count=len(transfers),
        )
        dst = np.fromiter(
            (index.get(t.destination_site, unk) for t in transfers), dtype=np.int64,
            count=len(transfers),
        )
        sizes = np.fromiter(
            (t.file_size for t in transfers), dtype=np.float64, count=len(transfers),
        )
    flat = np.bincount(src * n + dst, weights=sizes, minlength=n * n)
    return TransferMatrix(site_names=names, volume=flat.reshape(n, n))
