"""Workload profiles: the statistical shape of tasks and jobs.

Numbers are chosen to reproduce the paper's observed *shapes*: analysis
input files of a few GB (the case studies move 2.1-20.5 GB files),
heavy-tailed walltimes, a dominant direct-local-read population (so
fewer than a few percent of jobs generate matchable transfer events),
and a small uploading minority (Table 1's Analysis Upload count is tiny
but almost fully matched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.panda.job import DataAccessMode


@dataclass(frozen=True)
class WorkloadProfile:
    """Distributional parameters for one job population.

    Sizes in bytes, times in seconds.  All draws are lognormal with a
    target arithmetic mean (see :func:`repro.rng.lognormal_with_mean`)
    unless stated otherwise.
    """

    name: str
    #: files per input dataset: uniform integer range (inclusive).
    files_per_dataset: tuple[int, int] = (2, 8)
    #: mean and sigma of per-file size.
    file_size_mean: float = 3.5e9
    file_size_sigma: float = 0.8
    #: mean and sigma of payload walltime.
    walltime_mean: float = 5400.0
    walltime_sigma: float = 1.0
    #: jobs per task: uniform integer range (inclusive).
    jobs_per_task: tuple[int, int] = (1, 6)
    #: access-mode mix (must sum to 1).
    access_mode_mix: Dict[DataAccessMode, float] = field(
        default_factory=lambda: {
            DataAccessMode.DIRECT_LOCAL: 0.88,
            DataAccessMode.COPY_TO_SCRATCH: 0.05,
            DataAccessMode.DIRECT_IO: 0.07,
        }
    )
    #: probability a job uploads outputs through the transfer system.
    upload_probability: float = 0.03
    #: mean output volume per uploading job.
    output_bytes_mean: float = 1.2e9
    output_bytes_sigma: float = 0.7
    #: replicas of each input dataset pre-placed on the grid.
    initial_replicas: tuple[int, int] = (1, 3)

    def __post_init__(self) -> None:
        total = sum(self.access_mode_mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"profile {self.name}: access-mode mix sums to {total}, not 1")
        if self.files_per_dataset[0] < 1 or self.files_per_dataset[0] > self.files_per_dataset[1]:
            raise ValueError(f"profile {self.name}: bad files_per_dataset range")
        if self.jobs_per_task[0] < 1 or self.jobs_per_task[0] > self.jobs_per_task[1]:
            raise ValueError(f"profile {self.name}: bad jobs_per_task range")


#: Default user-analysis population.
ANALYSIS_DEFAULT = WorkloadProfile(name="analysis")

#: Default production population: bigger datasets, longer jobs, every
#: job uploads (Table 1's Production Upload dwarfs Production Download),
#: and all reads are direct-local after task-level pre-staging.
PRODUCTION_DEFAULT = WorkloadProfile(
    name="production",
    files_per_dataset=(6, 20),
    file_size_mean=4.5e9,
    file_size_sigma=0.6,
    walltime_mean=10800.0,
    walltime_sigma=0.8,
    jobs_per_task=(10, 60),
    access_mode_mix={
        DataAccessMode.DIRECT_LOCAL: 1.0,
        DataAccessMode.COPY_TO_SCRATCH: 0.0,
        DataAccessMode.DIRECT_IO: 0.0,
    },
    upload_probability=1.0,
    output_bytes_mean=2.5e9,
    output_bytes_sigma=0.5,
    initial_replicas=(1, 2),
)
