"""Workload generator: tasks, datasets, jobs, and background movement.

Drives the whole simulated campaign:

* **Analysis tasks** — a user submits a task against an input dataset
  that already exists somewhere on the grid; the task's jobs arrive in
  a short burst and are brokered individually.
* **Production tasks** — inputs are pre-staged to the processing sites
  through replication rules (*Production Download*, task-level, not
  job-level), jobs read locally, and every job uploads outputs to the
  task's aggregation point (*Production Upload*).
* **Background movement** — Rucio-autonomous rebalancing and
  consolidation transfers that carry no task identity at all; they are
  the reason only ~23% of the paper's transfer events have a
  ``jeditaskid``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.grid.rse import RseKind, rse_name
from repro.grid.tier import Tier
from repro.grid.topology import GridTopology
from repro.ids import IdFactory
from repro.panda.job import DataAccessMode, Job, JobKind
from repro.panda.server import PandaServer
from repro.panda.task import JediTask
from repro.rng import lognormal_with_mean
from repro.rucio.activities import TransferActivity
from repro.rucio.client import RucioClient
from repro.rucio.did import DID, DatasetDid, FileDid
from repro.rucio.rules import RuleEngine
from repro.rucio.transfer import TransferRequest
from repro.sim.engine import Engine

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.idds.delivery import DeliveryService
from repro.workload.arrival import DiurnalPoissonArrivals
from repro.workload.profiles import ANALYSIS_DEFAULT, PRODUCTION_DEFAULT, WorkloadProfile


@dataclass
class WorkloadConfig:
    """Campaign intensity and mix."""

    duration: float = 86400.0 * 8  # the paper's 8-day window
    analysis_tasks_per_hour: float = 4.0
    production_tasks_per_hour: float = 0.8
    background_transfers_per_hour: float = 300.0
    analysis_profile: WorkloadProfile = field(default_factory=lambda: ANALYSIS_DEFAULT)
    production_profile: WorkloadProfile = field(default_factory=lambda: PRODUCTION_DEFAULT)
    #: delay between a production task's pre-staging start and its jobs.
    production_staging_lead: float = 4 * 3600.0
    #: number of distinct analysis users.
    n_users: int = 40
    #: share of background movements that stay intra-site (Fig 3's
    #: diagonal dominance: 737.85 of 957.98 PB were local).
    local_background_fraction: float = 0.77
    #: share of production inputs whose custodial copy lives on TAPE
    #: (Data Carousel processing).
    production_tape_fraction: float = 0.4
    #: release production jobs through iDDS-style fine-grained delivery
    #: instead of a fixed staging lead.
    use_idds: bool = False


class WorkloadGenerator:
    """Creates and schedules the whole campaign on the engine."""

    def __init__(
        self,
        engine: Engine,
        topology: GridTopology,
        rucio: RucioClient,
        rules: RuleEngine,
        panda: PandaServer,
        ids: IdFactory,
        rng: np.random.Generator,
        config: Optional[WorkloadConfig] = None,
        delivery: Optional["DeliveryService"] = None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.rucio = rucio
        self.rules = rules
        self.panda = panda
        self.ids = ids
        self.rng = rng
        self.config = config or WorkloadConfig()
        self.delivery = delivery
        if self.config.use_idds and delivery is None:
            raise ValueError("use_idds requires a DeliveryService")

        self._placement_sites = self.topology.real_sites()
        weights = np.array(
            [
                {Tier.T0: 10.0, Tier.T1: 6.0, Tier.T2: 1.0, Tier.T3: 0.2}[s.tier]
                for s in self._placement_sites
            ]
        )
        self._placement_weights = weights / weights.sum()

        self.n_analysis_tasks = 0
        self.n_production_tasks = 0
        self.n_background = 0
        #: files known to have at least one durable replica — maintained
        #: incrementally so background sampling is O(1), not O(|files|).
        self._placed_files: List[FileDid] = []
        #: demand signal: rebalancing prefers recently-used datasets.
        from repro.rucio.popularity import PopularityTracker

        self.popularity = PopularityTracker()

    # -- campaign scheduling -----------------------------------------------------

    def prime(self) -> None:
        """Schedule every arrival for the configured duration."""
        cfg = self.config
        ana = DiurnalPoissonArrivals(cfg.analysis_tasks_per_hour, self.rng)
        prod = DiurnalPoissonArrivals(cfg.production_tasks_per_hour, self.rng, amplitude=0.2)
        bg = DiurnalPoissonArrivals(cfg.background_transfers_per_hour, self.rng, amplitude=0.3)
        for t in ana.sample(0.0, cfg.duration):
            self.engine.schedule_at(t, self._spawn_analysis_task, label="task:analysis")
        for t in prod.sample(0.0, cfg.duration):
            self.engine.schedule_at(t, self._spawn_production_task, label="task:production")
        for t in bg.sample(0.0, cfg.duration):
            self.engine.schedule_at(t, self._spawn_background_transfer, label="bg-transfer")

    # -- dataset fabrication ---------------------------------------------------------

    def _pick_sites(self, n: int, tier_max: Optional[int] = None) -> List[str]:
        sites = self._placement_sites
        weights = self._placement_weights
        if tier_max is not None:
            mask = np.array([s.tier.value <= tier_max for s in sites])
            weights = weights * mask
            if weights.sum() == 0:
                raise RuntimeError("no sites satisfy the tier filter")
            weights = weights / weights.sum()
        idx = self.rng.choice(len(sites), size=min(n, len(sites)), replace=False, p=weights)
        return [sites[int(i)].name for i in np.atleast_1d(idx)]

    def _make_dataset(
        self, scope: str, jeditaskid: int, profile: WorkloadProfile, blocked: bool
    ) -> DatasetDid:
        """Register a dataset and its files.

        ``blocked`` datasets carry block-level ``proddblock`` names
        (``<dataset>_subNNN``) on their files — production style.
        Analysis inputs use the dataset name itself as the block.
        """
        name = self.ids.make_dataset_name(scope, jeditaskid)
        ds = DatasetDid(did=DID(scope=scope, name=name), jeditaskid=jeditaskid)
        lo, hi = profile.files_per_dataset
        n_files = int(self.rng.integers(lo, hi + 1))
        files: List[FileDid] = []
        for i in range(n_files):
            size = int(lognormal_with_mean(self.rng, profile.file_size_mean, profile.file_size_sigma))
            block = f"{name}_sub{i // 4:03d}" if blocked else name
            f = FileDid(
                did=DID(scope=scope, name=self.ids.make_lfn(scope)),
                size=max(1, size),
                dataset_name=name,
                proddblock=block,
            )
            self.rucio.catalog.register_file(f)
            files.append(f)
            ds.file_dids.append(f.did)
        self.rucio.catalog.register_dataset(ds)
        return ds

    def _place_dataset(self, ds: DatasetDid, sites: List[str], kind: RseKind) -> None:
        """Materialise replicas directly (pre-existing data, no transfers)."""
        now = self.engine.now
        files = self.rucio.catalog.dataset_files(ds.did)
        for site in sites:
            rse = rse_name(site, kind)
            for f in files:
                if self.rucio.replicas.get(f.did, rse) is None:
                    self.rucio.replicas.add(f.did, rse, f.size, now=now)
        self._placed_files.extend(files)

    # -- analysis tasks ---------------------------------------------------------------

    def _spawn_analysis_task(self) -> None:
        cfg = self.config
        profile = cfg.analysis_profile
        self.n_analysis_tasks += 1
        user = f"user.u{int(self.rng.integers(cfg.n_users)):03d}"
        jeditaskid = self.ids.next_jeditaskid()

        ds = self._make_dataset(user, jeditaskid, profile, blocked=False)
        lo, hi = profile.initial_replicas
        n_rep = int(self.rng.integers(lo, hi + 1))
        self._place_dataset(ds, self._pick_sites(n_rep), RseKind.DATADISK)

        modes = list(profile.access_mode_mix)
        probs = np.array([profile.access_mode_mix[m] for m in modes])
        mode = modes[int(self.rng.choice(len(modes), p=probs))]

        task = JediTask(
            jeditaskid=jeditaskid, kind=JobKind.ANALYSIS, scope=user,
            access_mode=mode, input_dataset=ds.did, created_at=self.engine.now,
        )
        self.panda.register_task(task)

        chunks = self._partition_files(ds, profile)
        self.popularity.record_access(ds.did, self.engine.now, weight=len(chunks))
        # Users who copy/stream inputs rarely also register outputs
        # through Rucio (their workflows keep outputs on local scratch);
        # upload jobs are predominantly direct-local readers.
        p_up = profile.upload_probability * (1.0 if mode is DataAccessMode.DIRECT_LOCAL else 0.25)
        uploads = self.rng.random(len(chunks)) < p_up
        for k, chunk in enumerate(chunks):
            delay = float(self.rng.exponential(120.0)) * (k + 1)
            self.engine.schedule_in(
                delay,
                lambda m=mode, u=bool(uploads[k]), tid=jeditaskid, d=ds.did, c=chunk, sc=user: (
                    self._submit_job(JobKind.ANALYSIS, m, tid, d, c, sc, u, profile)
                ),
                label="job:analysis",
            )

    def _partition_files(self, ds: DatasetDid, profile: WorkloadProfile):
        """Split the dataset's files into per-job chunks (JEDI-style).

        Draws a target job count from the profile, then hands each job a
        contiguous slice; a task never has more jobs than files.
        """
        files = self.rucio.catalog.dataset_files(ds.did)
        n_jobs = int(self.rng.integers(profile.jobs_per_task[0], profile.jobs_per_task[1] + 1))
        n_jobs = max(1, min(n_jobs, len(files)))
        bounds = np.linspace(0, len(files), n_jobs + 1).astype(int)
        return [files[bounds[i]: bounds[i + 1]] for i in range(n_jobs) if bounds[i] < bounds[i + 1]]

    def _submit_job(
        self,
        kind: JobKind,
        mode: DataAccessMode,
        jeditaskid: int,
        dataset: DID,
        chunk: List[FileDid],
        scope: str,
        uploads: bool,
        profile: WorkloadProfile,
        output_destination: str = "",
    ) -> None:
        out_bytes = 0
        if uploads:
            out_bytes = max(
                1,
                int(lognormal_with_mean(self.rng, profile.output_bytes_mean, profile.output_bytes_sigma)),
            )
        job = Job(
            pandaid=self.ids.next_pandaid(),
            jeditaskid=jeditaskid,
            kind=kind,
            access_mode=mode,
            input_dataset=dataset,
            input_file_dids=[f.did for f in chunk],
            ninputfilebytes=sum(f.size for f in chunk),
            noutputfilebytes=out_bytes,
            creation_time=self.engine.now,
            scope=scope,
            payload_walltime=max(
                60.0, float(lognormal_with_mean(self.rng, profile.walltime_mean, profile.walltime_sigma))
            ),
            uploads_output=uploads,
            output_destination=output_destination,
        )
        self.panda.submit(job)

    # -- production tasks ----------------------------------------------------------------

    def _spawn_production_task(self) -> None:
        cfg = self.config
        profile = cfg.production_profile
        self.n_production_tasks += 1
        scope = "mc23_13p6TeV"
        jeditaskid = self.ids.next_jeditaskid()

        ds = self._make_dataset(scope, jeditaskid, profile, blocked=True)
        # Custodial copy lives at Tier-0/1; a fraction sits on TAPE only
        # (Data Carousel processing — recalls precede any transfer).
        source = self._pick_sites(1, tier_max=1)
        on_tape = self.rng.random() < cfg.production_tape_fraction
        self._place_dataset(ds, source, RseKind.TAPE if on_tape else RseKind.DATADISK)

        # Task-level pre-staging to a processing site (Production
        # Download: jeditaskid set, no pandaid — these are task-driven).
        # Half the campaigns process where the custodial copy already
        # sits; tape-resident inputs always need a staging rule.
        if not on_tape and self.rng.random() < 0.5:
            proc_sites = source
        else:
            proc_sites = source if self.rng.random() < 0.5 else self._pick_sites(1, tier_max=2)
            for site in proc_sites:
                self.rules.pin_dataset_at_site(
                    ds.did, site, self.engine.now,
                    lifetime=cfg.duration,
                    activity=TransferActivity.PRODUCTION_DOWNLOAD,
                    jeditaskid=jeditaskid,
                )

        task = JediTask(
            jeditaskid=jeditaskid, kind=JobKind.PRODUCTION, scope=scope,
            access_mode=DataAccessMode.DIRECT_LOCAL, input_dataset=ds.did,
            output_destination=source[0], created_at=self.engine.now,
        )
        self.panda.register_task(task)

        chunks = self._partition_files(ds, profile)
        if cfg.use_idds:
            self._deliver_with_idds(jeditaskid, ds, chunks, proc_sites[0], profile, source[0])
        else:
            for k, chunk in enumerate(chunks):
                delay = cfg.production_staging_lead + float(self.rng.exponential(300.0)) * (k + 1)
                self.engine.schedule_in(
                    delay,
                    lambda tid=jeditaskid, d=ds.did, c=chunk, dest=source[0]: self._submit_job(
                        JobKind.PRODUCTION, DataAccessMode.DIRECT_LOCAL, tid, d, c,
                        "mc23_13p6TeV", True, profile, output_destination=dest,
                    ),
                    label="job:production",
                )

    def _deliver_with_idds(self, jeditaskid, ds, chunks, proc_site, profile, dest) -> None:
        """Release each job the moment its input chunk has landed."""
        from repro.idds.delivery import DeliveryPlan

        assert self.delivery is not None

        def on_ready(idx, chunk, tid=jeditaskid, d=ds.did):
            self._submit_job(
                JobKind.PRODUCTION, DataAccessMode.DIRECT_LOCAL, tid, d, list(chunk),
                "mc23_13p6TeV", True, profile, output_destination=dest,
            )

        self.delivery.submit(DeliveryPlan(
            jeditaskid=jeditaskid, site=proc_site,
            chunks=[list(c) for c in chunks], on_chunk_ready=on_ready,
        ))

    # -- background movement -----------------------------------------------------------------

    def _spawn_background_transfer(self) -> None:
        """One Rucio-autonomous movement.

        Most background byte volume on the real grid is *intra-site*
        (storage consolidation, tape recalls, staging between disk
        classes) — that local mass is what puts Fig 3's weight on the
        diagonal.  A ``local_background_fraction`` of events therefore
        copy a file within the site that already holds it; the rest
        rebalance to a random remote site.
        """
        if not self._placed_files:
            return
        # Half of the rebalancing follows demand (popular datasets get
        # extra copies, Rucio-style); the rest is uniform housekeeping.
        f: Optional[FileDid] = None
        if self.rng.random() < 0.5:
            popular = self.popularity.pick_weighted(self.engine.now, self.rng)
            if popular is not None:
                files = self.rucio.catalog.dataset_files(popular)
                if files:
                    f = files[int(self.rng.integers(len(files)))]
        if f is None:
            f = self._placed_files[int(self.rng.integers(len(self._placed_files)))]
        if not self.rucio.replicas.replicas_of(f.did):
            return
        self.n_background += 1

        if self.rng.random() < self.config.local_background_fraction:
            # Local consolidation: move within a site that holds the file.
            holders = sorted(self.rucio.replicas.sites_with_file(f.did))
            if not holders:
                return
            site = holders[int(self.rng.integers(len(holders)))]
            self.rucio.transfers.submit(
                TransferRequest(
                    request_id=self.ids.next_transferid(),
                    file_did=f.did,
                    size=f.size,
                    dest_rse=rse_name(site, RseKind.SCRATCHDISK),
                    activity=TransferActivity.DATA_CONSOLIDATION,
                    dataset_name=f.dataset_name,
                    proddblock=f.proddblock,
                    ephemeral=True,
                )
            )
            return

        dest_site = self._pick_sites(1)[0]
        dest_rse = rse_name(dest_site, RseKind.DATADISK)
        if self.rucio.replicas.get(f.did, dest_rse) is not None:
            return
        self.rucio.transfers.submit(
            TransferRequest(
                request_id=self.ids.next_transferid(),
                file_did=f.did,
                size=f.size,
                dest_rse=dest_rse,
                activity=TransferActivity.DATA_REBALANCING,
                dataset_name=f.dataset_name,
                proddblock=f.proddblock,
            )
        )
