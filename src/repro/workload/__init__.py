"""Workload generation.

Synthesises the job and data population the paper observes: user
analysis tasks (the 966k user jobs of §5.1), production campaigns
(whose transfers carry ``jeditaskid`` but never match, Table 1), and
the Rucio-autonomous background movement (rebalancing/consolidation)
that makes up the bulk of the 6.8M transfer events.
"""

from repro.workload.profiles import WorkloadProfile, ANALYSIS_DEFAULT, PRODUCTION_DEFAULT
from repro.workload.arrival import ArrivalProcess, DiurnalPoissonArrivals
from repro.workload.generator import WorkloadGenerator, WorkloadConfig
from repro.workload.scale import ScaleConfig, ScaleDataset, synthesize

__all__ = [
    "WorkloadProfile",
    "ANALYSIS_DEFAULT",
    "PRODUCTION_DEFAULT",
    "ArrivalProcess",
    "DiurnalPoissonArrivals",
    "WorkloadGenerator",
    "WorkloadConfig",
    "ScaleConfig",
    "ScaleDataset",
    "synthesize",
]
