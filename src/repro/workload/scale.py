"""Vectorized paper-scale workload synthesis.

The event-driven simulator (:mod:`repro.workload.generator`) produces
richly correlated telemetry but pays Python-level cost per event — fine
at the 3.6k-job study scale, hopeless at the paper's 966k-job window.
This module synthesizes telemetry *directly in columnar form*: every
column is built by NumPy array programs, string vocabularies are
bounded pools interned once, and the result is a
:class:`~repro.metastore.packsource.PackSource` — no million-record
Python materialization ever happens.

The population is shaped so the matching ladder behaves like §4.3's:

* a ``matched_fraction`` of jobs have site/time-consistent download
  transfers for *all* their input files (exact-matchable);
* a ``partial_fraction`` of those lose one file's transfer, breaking
  the whole-set size check (RM1 recovers them);
* an ``unknown_site_fraction`` have their downloads recorded against
  ``UNKNOWN`` destinations (RM2 recovers them);
* a ``late_fraction`` have transfers starting after job end (no method
  may recover them);
* the remaining transfer volume is task-anonymous background movement
  (``jeditaskid = 0``), which the candidate join excludes by
  construction — matching the paper's ~77% of transfers without task
  identity.

Because the join key is ``(jeditaskid, lfn)`` and lfns are unique
within a task, the expected per-method matched-job counts are exact,
not probabilistic — the parity/scale tests assert them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

import numpy as np

from repro.columnar.interner import StringInterner
from repro.columnar.packs import FilePack, JobPack, TransferPack, WindowColumns
from repro.metastore.packsource import PackSource, SidecarColumns
from repro.obs import get_obs
from repro.telemetry.records import UNKNOWN_SITE


@dataclass(frozen=True)
class ScaleConfig:
    """One rung of the scale ladder."""

    n_jobs: int = 3600
    seed: int = 2025
    days: float = 8.0
    n_sites: int = 32
    files_per_job_min: int = 2
    files_per_job_max: int = 4  # inclusive
    jobs_per_task: int = 12
    user_fraction: float = 0.95
    matched_fraction: float = 0.45
    partial_fraction: float = 0.12
    unknown_site_fraction: float = 0.10
    late_fraction: float = 0.05
    transfers_per_job: float = 6.5
    failed_fraction: float = 0.08
    lfn_pool: int = 250_000
    shard_seconds: float = 86400.0

    @property
    def window(self) -> Tuple[float, float]:
        return (0.0, self.days * 86400.0)


@dataclass
class ScaleDataset:
    """Synthesized telemetry plus the ground truth the shape implies."""

    source: PackSource
    config: ScaleConfig
    known_sites: Set[str]
    n_jobs: int
    n_user_jobs: int
    n_files: int
    n_transfers: int
    n_transfers_with_taskid: int
    #: Expected matched *user* job counts per method (exact by
    #: construction; see module docstring).
    expected_matches: Dict[str, int] = field(default_factory=dict)

    @property
    def window(self) -> Tuple[float, float]:
        return self.config.window


def _lognormal_int(rng, mean: float, sigma: float, n: int, lo: int) -> np.ndarray:
    out = rng.lognormal(mean=np.log(mean), sigma=sigma, size=n)
    return np.maximum(out.astype(np.int64), lo)


def synthesize(config: ScaleConfig) -> ScaleDataset:
    """Build one rung's telemetry as a sharded :class:`PackSource`."""
    with get_obs().tracer.span("workload.scale_synthesize", cat="workload") as sp:
        ds = _synthesize_inner(config)
        sp.set("n_jobs", ds.n_jobs)
        sp.set("n_files", ds.n_files)
        sp.set("n_transfers", ds.n_transfers)
    return ds


def _synthesize_inner(config: ScaleConfig) -> ScaleDataset:
    rng = np.random.default_rng(config.seed)
    n = int(config.n_jobs)
    if n <= 0:
        raise ValueError("n_jobs must be positive")
    t0, t1 = config.window
    w = t1 - t0
    n_tasks = (n + config.jobs_per_task - 1) // config.jobs_per_task

    # -- vocabulary (bounded pools, interned once, codes are arrays) ---------
    it = StringInterner()
    site_names = [f"SITE-{i:03d}" for i in range(config.n_sites)]
    site_codes = np.array([it.intern(s) for s in site_names], dtype=np.int64)
    unknown_code = it.intern(UNKNOWN_SITE)
    code_finished = it.intern("finished")
    code_failed = it.intern("failed")
    code_user = it.intern("user")
    code_managed = it.intern("managed")
    code_download = it.intern("Analysis Download")
    bg_activity_codes = np.array(
        [it.intern(s) for s in ("Production Input", "Data Consolidation", "Data Rebalancing")],
        dtype=np.int64,
    )
    code_empty = it.intern("")
    code_input = it.intern("input")
    scope_user = np.array(
        [it.intern(f"user.u{i:04d}") for i in range(min(500, n_tasks))], dtype=np.int64
    )
    scope_managed = it.intern("mc23_13p6TeV")
    ds_codes = np.array(
        [it.intern(f"ds.task{t:07d}") for t in range(n_tasks)], dtype=np.int64
    )
    pool = min(config.lfn_pool, n * config.files_per_job_max)
    lfn_pool_codes = np.array(
        [it.intern(f"lfn{i:08d}") for i in range(pool)], dtype=np.int64
    )

    # -- jobs ----------------------------------------------------------------
    end = np.sort(rng.uniform(t0 + 0.05 * w, t1 - 1.0, size=n))
    duration = rng.lognormal(np.log(5400.0), 0.8, size=n)
    start = np.maximum(end - duration, 0.0)
    queuing = rng.lognormal(np.log(600.0), 1.0, size=n)
    creation = np.maximum(start - queuing, 0.0)
    task_idx = np.arange(n) // config.jobs_per_task
    pandaid = 1_000_000 + np.arange(n, dtype=np.int64)
    jeditaskid = 1 + task_idx.astype(np.int64)
    task_is_user = rng.random(n_tasks) < config.user_fraction
    is_user = task_is_user[task_idx]
    site_idx = rng.integers(0, config.n_sites, size=n)
    failed = rng.random(n) < config.failed_fraction
    status = np.where(failed, code_failed, code_finished)

    # -- files ---------------------------------------------------------------
    k = rng.integers(config.files_per_job_min, config.files_per_job_max + 1, size=n)
    n_files = int(k.sum())
    file_job = np.repeat(np.arange(n), k)  # file row -> job row
    offsets = np.concatenate([[0], np.cumsum(k)[:-1]])
    file_size = _lognormal_int(rng, 1.2e8, 1.0, n_files, lo=1024)
    # lfns unique within a task: consecutive global file rows share a
    # task only in runs far shorter than the pool, so modular indexing
    # never collides inside one task.
    file_lfn = lfn_pool_codes[np.arange(n_files) % pool]
    file_ds = ds_codes[task_idx[file_job]]
    file_scope = np.where(
        is_user[file_job],
        scope_user[task_idx[file_job] % len(scope_user)],
        scope_managed,
    )
    nin = np.add.reduceat(file_size, offsets)
    nout = np.zeros(n, dtype=np.int64)

    # -- matched (task-identified) download transfers ------------------------
    u = rng.random(n)
    matched = u < config.matched_fraction
    v = rng.random(n)
    p1 = config.partial_fraction
    p2 = p1 + config.unknown_site_fraction
    p3 = p2 + config.late_fraction
    partial = matched & (v < p1)
    unknown = matched & (v >= p1) & (v < p2)
    late = matched & (v >= p2) & (v < p3)

    within = np.arange(n_files) - offsets[file_job]
    f_matched = matched[file_job]
    # partial jobs stage all but their last input file
    dropped = partial[file_job] & (within == (k[file_job] - 1))
    tf = np.flatnonzero(f_matched & ~dropped)  # file rows with a transfer
    tj = file_job[tf]  # their job rows

    m = len(tf)
    lead = rng.uniform(600.0, 6 * 3600.0, size=m)
    m_start = np.maximum(end[tj] - lead, 0.5)
    is_late = late[tj]
    late_start = np.minimum(end[tj] + rng.uniform(60.0, 3600.0, size=m), t1 - 0.5)
    m_start = np.where(is_late, np.maximum(late_start, end[tj]), m_start)
    m_end = m_start + rng.uniform(30.0, 1800.0, size=m)
    m_dst = np.where(unknown[tj], unknown_code, site_codes[site_idx[tj]])
    m_src = site_codes[rng.integers(0, config.n_sites, size=m)]

    # -- background (task-anonymous) transfers -------------------------------
    n_bg = max(0, int(round(n * config.transfers_per_job)) - m)
    bg_lfn = lfn_pool_codes[rng.integers(0, pool, size=n_bg)]
    bg_ds = ds_codes[rng.integers(0, n_tasks, size=n_bg)]
    bg_scope = np.where(
        rng.random(n_bg) < 0.5,
        scope_user[rng.integers(0, len(scope_user), size=n_bg)],
        scope_managed,
    )
    bg_size = _lognormal_int(rng, 8.0e8, 1.2, n_bg, lo=1024)
    bg_src = site_codes[rng.integers(0, config.n_sites, size=n_bg)]
    bg_dst = site_codes[rng.integers(0, config.n_sites, size=n_bg)]
    bg_dst = np.where(rng.random(n_bg) < 0.05, unknown_code, bg_dst)
    bg_start = rng.uniform(t0, t1 - 1.0, size=n_bg)
    bg_end = bg_start + rng.uniform(30.0, 7200.0, size=n_bg)
    bg_dir = rng.random(n_bg)
    bg_down = bg_dir < 0.6
    bg_up = (bg_dir >= 0.6) & (bg_dir < 0.8)

    # -- assemble transfer columns in starttime order ------------------------
    nt = m + n_bg
    t_start = np.concatenate([m_start, bg_start])
    order = np.argsort(t_start, kind="stable")
    t_start = t_start[order]

    def merge(a: np.ndarray, b: np.ndarray, dtype=None) -> np.ndarray:
        out = np.concatenate([a, b])
        if dtype is not None:
            out = out.astype(dtype)
        return out[order]

    transfers = TransferPack(
        row_id=np.arange(nt, dtype=np.int64),
        jeditaskid=merge(jeditaskid[tj], np.zeros(n_bg, dtype=np.int64)),
        lfn=merge(file_lfn[tf], bg_lfn),
        dataset=merge(file_ds[tf], bg_ds),
        proddblock=merge(file_ds[tf], bg_ds),
        scope=merge(file_scope[tf], bg_scope),
        size=merge(file_size[tf], bg_size),
        src=merge(m_src, bg_src),
        dst=merge(m_dst, bg_dst),
        is_download=merge(np.ones(m, dtype=bool), bg_down),
        is_upload=merge(np.zeros(m, dtype=bool), bg_up),
        starttime=t_start,
        endtime=merge(m_end, bg_end),
        activity=merge(
            np.full(m, code_download, dtype=np.int64),
            bg_activity_codes[rng.integers(0, len(bg_activity_codes), size=n_bg)],
        ),
    )
    jobs = JobPack(
        pandaid=pandaid,
        jeditaskid=jeditaskid,
        site=site_codes[site_idx],
        endtime=end,
        nin=nin,
        nout=nout,
        status=status,
        taskstatus=status,
        creation=creation,
        start=start,
    )
    files = FilePack(
        pandaid=pandaid[file_job],
        jeditaskid=jeditaskid[file_job],
        lfn=file_lfn,
        dataset=file_ds,
        proddblock=file_ds,
        scope=file_scope,
        size=file_size,
    )
    sidecar = SidecarColumns(
        job_label=np.where(is_user, code_user, code_managed),
        job_error_code=np.zeros(n, dtype=np.int64),
        job_error_message=np.full(n, code_empty, dtype=np.int64),
        file_ftype=np.full(n_files, code_input, dtype=np.int64),
        transfer_success=np.ones(nt, dtype=bool),
    )
    columns = WindowColumns(interner=it, jobs=jobs, files=files, transfers=transfers)
    source = PackSource(columns, sidecar, shard_seconds=config.shard_seconds)

    clean = matched & ~partial & ~unknown & ~late
    expected = {
        "exact": int(np.sum(is_user & clean)),
        "rm1": int(np.sum(is_user & (clean | partial))),
        "rm2": int(np.sum(is_user & (clean | partial | unknown))),
    }
    return ScaleDataset(
        source=source,
        config=config,
        known_sites=set(site_names),
        n_jobs=n,
        n_user_jobs=int(np.sum(is_user)),
        n_files=n_files,
        n_transfers=nt,
        n_transfers_with_taskid=m,
        expected_matches=expected,
    )
