"""The three-month transfer-matrix study (§3.2, Fig 3).

The paper's Fig 3 aggregates 92 days of site-to-site transfer volume
(957.98 PB total, 737.85 PB local, with Tier-0/1 outliers above 30 PB
and a 42.4 PB CERN→UNKNOWN cell).  We run a campaign over a
(configurable, default shorter) window and build the same matrix from
*degraded* records — the UNKNOWN row/column appears exactly the way it
does in production, via mislabelled endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.telemetry.degradation import DegradationConfig, DegradedTelemetry
from repro.workload.generator import WorkloadConfig


@dataclass
class ThreeMonthConfig:
    """Scale knobs.  ``days`` defaults below 92 to keep runs fast; the
    matrix's structure (local dominance, tier outliers, heavy tail) is
    already stable after a few simulated days."""

    seed: int = 92
    days: float = 6.0
    analysis_tasks_per_hour: float = 6.0
    production_tasks_per_hour: float = 1.5
    background_transfers_per_hour: float = 260.0
    degradation: DegradationConfig = field(default_factory=DegradationConfig)

    def harness_config(self) -> HarnessConfig:
        wl = WorkloadConfig(
            duration=self.days * 86400.0,
            analysis_tasks_per_hour=self.analysis_tasks_per_hour,
            production_tasks_per_hour=self.production_tasks_per_hour,
            background_transfers_per_hour=self.background_transfers_per_hour,
        )
        return HarnessConfig(seed=self.seed, workload=wl, degradation=self.degradation)


class ThreeMonthStudy:
    """Simulate the campaign and expose the degraded transfer population."""

    def __init__(self, config: Optional[ThreeMonthConfig] = None) -> None:
        self.config = config or ThreeMonthConfig()
        self.harness = SimulationHarness(self.config.harness_config())

    def run(self) -> "ThreeMonthStudy":
        self.harness.run()
        return self

    @property
    def telemetry(self) -> DegradedTelemetry:
        return self.harness.telemetry()

    def site_names(self) -> list[str]:
        return self.harness.topology.site_names()
