"""Ready-made experiment scenarios.

* :mod:`repro.scenarios.runtime` — the harness wiring engine, grid,
  Rucio, PanDA, workload, and telemetry together.
* :mod:`repro.scenarios.eightday` — the §5 study: an 8-day campaign,
  degraded telemetry, and the matching pipeline over the full window.
* :mod:`repro.scenarios.threemonth` — the §3.2 transfer-matrix study.
* :mod:`repro.scenarios.growth` — the Fig 2 multi-year volume curve.
* :mod:`repro.scenarios.scale` — the 10x scale ladder up to the
  paper-scale window (~1M jobs, ~6.5M transfers).
"""

from repro.scenarios.runtime import SimulationHarness, HarnessConfig
from repro.scenarios.eightday import EightDayStudy, EightDayConfig
from repro.scenarios.threemonth import ThreeMonthStudy, ThreeMonthConfig
from repro.scenarios.growth import GrowthModel, GrowthConfig
from repro.scenarios.scale import DEFAULT_RUNGS, PAPER_RUNG, run_rung, scale_ladder

__all__ = [
    "SimulationHarness",
    "HarnessConfig",
    "EightDayStudy",
    "EightDayConfig",
    "ThreeMonthStudy",
    "ThreeMonthConfig",
    "GrowthModel",
    "GrowthConfig",
    "DEFAULT_RUNGS",
    "PAPER_RUNG",
    "run_rung",
    "scale_ladder",
]
