"""Closed-loop co-optimization sweep: policy ladder × telemetry quality.

Runs the :class:`~repro.coopt.loop.ControlLoop` across the registered
policy ladder and a range of metadata-degradation severities, always
against the same seeded campaign, and reports the deltas the paper's
§7 says are at stake: makespan, transfer volume, queue-wait tail, and
failure retries — each relative to the non-aware baseline *at the same
severity*.  Severity scales every probabilistic degradation knob, so
the sweep doubles as a measurement of how much closed-loop value
survives worsening telemetry: the loop only ever sees the degraded
stream, never ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.coopt.loop import ControlLoop, ControlLoopResult
from repro.coopt.policies import POLICY_LADDER
from repro.obs import Obs, use_obs
from repro.scenarios.runtime import HarnessConfig
from repro.telemetry.degradation import DegradationConfig
from repro.workload.generator import WorkloadConfig


@dataclass
class CoOptConfig:
    """One sweep's shape.

    Defaults reproduce the benchmark's *congested* scenario — a small
    overloaded grid whose queues back up — because steering is a no-op
    on an idle grid; closed-loop value only shows where there is load
    to shed.
    """

    seed: int = 11
    days: float = 0.5
    drain_hours: float = 12.0
    analysis_tasks_per_hour: float = 60.0
    production_tasks_per_hour: float = 0.2
    background_transfers_per_hour: float = 20.0
    #: small congested grid (None = the full 111-site preset)
    n_tier2: Optional[int] = 4
    n_tier3: Optional[int] = 2
    grid_scale: float = 0.08
    epoch_hours: float = 2.0
    #: matcher whose matched output feeds the awareness folds
    method: str = "rm2"
    policies: Sequence[str] = POLICY_LADDER
    #: degradation severities (1.0 = the paper's calibrated losses)
    severities: Sequence[float] = (1.0,)

    def harness_config(self, severity: float = 1.0) -> HarnessConfig:
        from repro.grid.presets import WlcgPresetConfig

        grid = (
            WlcgPresetConfig(
                n_tier2=self.n_tier2, n_tier3=self.n_tier3, scale=self.grid_scale
            )
            if self.n_tier2 is not None
            else None
        )
        return HarnessConfig(
            seed=self.seed,
            workload=WorkloadConfig(
                duration=self.days * 86400.0,
                analysis_tasks_per_hour=self.analysis_tasks_per_hour,
                production_tasks_per_hour=self.production_tasks_per_hour,
                background_transfers_per_hour=self.background_transfers_per_hour,
            ),
            grid=grid,
            drain=self.drain_hours * 3600.0,
            degradation=DegradationConfig().scaled(severity),
        )


@dataclass
class SweepCell:
    """One (policy, severity) run plus its deltas vs that severity's baseline."""

    severity: float
    result: ControlLoopResult
    #: positive = the policy improved on the baseline
    makespan_delta: float = 0.0
    transfer_delta: float = 0.0
    queue_p95_delta: float = 0.0
    retries_delta: int = 0

    def row(self) -> Dict[str, object]:
        out = {"severity": self.severity}
        out.update(self.result.row())
        out.update(
            {
                "makespan_delta_s": round(self.makespan_delta, 1),
                "transfer_delta_GB": round(self.transfer_delta / 1e9, 3),
                "queue_p95_delta_s": round(self.queue_p95_delta, 1),
                "retries_delta": self.retries_delta,
            }
        )
        return out


@dataclass
class SweepResult:
    config: CoOptConfig
    cells: List[SweepCell] = field(default_factory=list)

    def baseline(self, severity: float) -> Optional[SweepCell]:
        for c in self.cells:
            if c.severity == severity and c.result.policy == "baseline":
                return c
        return None

    def cell(self, policy: str, severity: float) -> Optional[SweepCell]:
        for c in self.cells:
            if c.severity == severity and c.result.policy == policy:
                return c
        return None

    def rows(self) -> List[Dict[str, object]]:
        return [c.row() for c in self.cells]

    def table(self) -> str:
        header = (
            f"{'policy':<16} {'sev':>4} {'makespan_h':>10} {'vol_TB':>8} "
            f"{'q95_s':>8} {'succ':>6} {'re':>4} {'pre':>4} {'sup':>4} "
            f"{'d_makespan':>10} {'d_vol_GB':>9}"
        )
        lines = [header, "-" * len(header)]
        for c in self.cells:
            r = c.result
            lines.append(
                f"{r.policy:<16} {c.severity:>4.1f} {r.makespan / 3600:>10.2f} "
                f"{r.transfer_volume / 1e12:>8.3f} {r.queue_p95:>8.0f} "
                f"{r.success_rate:>6.3f} {r.rebrokered:>4d} {r.prestaged:>4d} "
                f"{r.suppressed:>4d} {c.makespan_delta:>10.0f} "
                f"{c.transfer_delta / 1e9:>9.2f}"
            )
        return "\n".join(lines)


def run_policy(
    config: CoOptConfig,
    policy: str,
    severity: float = 1.0,
    obs: Optional[Obs] = None,
) -> ControlLoopResult:
    """One (policy, severity) control-loop campaign."""
    loop = ControlLoop(
        config.harness_config(severity),
        policy,
        epoch_seconds=config.epoch_hours * 3600.0,
        method=config.method,
        obs=obs,
    )
    return loop.run()


def run_sweep(
    config: Optional[CoOptConfig] = None, obs: Optional[Obs] = None
) -> SweepResult:
    """The full ladder × severity grid, with per-cell baseline deltas."""
    cfg = config or CoOptConfig()
    sweep = SweepResult(config=cfg)
    with use_obs(obs) as active:
        with active.tracer.span("coopt.sweep", cat="coopt") as sp:
            sp.set("policies", len(list(cfg.policies)))
            sp.set("severities", len(list(cfg.severities)))
            for severity in cfg.severities:
                base: Optional[ControlLoopResult] = None
                for policy in cfg.policies:
                    result = run_policy(cfg, policy, severity, obs=obs)
                    cell = SweepCell(severity=severity, result=result)
                    if policy == "baseline":
                        base = result
                    if base is not None:
                        cell.makespan_delta = base.makespan - result.makespan
                        cell.transfer_delta = (
                            base.transfer_volume - result.transfer_volume
                        )
                        cell.queue_p95_delta = base.queue_p95 - result.queue_p95
                        cell.retries_delta = base.retries - result.retries
                    sweep.cells.append(cell)
    return sweep
