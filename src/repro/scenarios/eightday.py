"""The 8-day study (§5).

Runs a campaign shaped like the paper's 04/01-04/09/2025 window —
user analysis plus production plus heavy background movement — then
degrades telemetry, ingests it into the query layer, and runs the
matching pipeline.  Every Table-1/2 and Fig-5..12 analysis consumes
this study's outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.columnar import validate_frame
from repro.core.matching.pipeline import MatchingPipeline, MatchingReport
from repro.exec.analysis import DEFAULT_ANALYSES, run_analyses
from repro.exec.executor import Executor, make_executor
from repro.metastore.opensearch import OpenSearchLike
from repro.obs import Obs, use_obs
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.telemetry.degradation import DegradationConfig, DegradedTelemetry
from repro.workload.generator import WorkloadConfig


@dataclass
class EightDayConfig:
    """Scale knobs for the study.

    The default runs a laptop-scale campaign (thousands of jobs, tens
    of thousands of transfers); ``intensity`` scales all arrival rates
    together for bigger runs.  All reported quantities are ratios and
    shapes, which are stable under this scaling.
    """

    seed: int = 2025
    days: float = 8.0
    intensity: float = 1.0
    analysis_tasks_per_hour: float = 6.0
    production_tasks_per_hour: float = 1.2
    background_transfers_per_hour: float = 220.0
    #: compute-capacity multiplier; below 1 the grid runs hot, producing
    #: the site-level slot contention behind §5.3's "heavy site-level
    #: queuing delays despite using local transfers".
    grid_scale: float = 0.35
    degradation: DegradationConfig = field(default_factory=DegradationConfig)

    def harness_config(self) -> HarnessConfig:
        from repro.grid.presets import WlcgPresetConfig

        wl = WorkloadConfig(
            duration=self.days * 86400.0,
            analysis_tasks_per_hour=self.analysis_tasks_per_hour * self.intensity,
            production_tasks_per_hour=self.production_tasks_per_hour * self.intensity,
            background_transfers_per_hour=self.background_transfers_per_hour * self.intensity,
        )
        grid = WlcgPresetConfig(seed=self.seed, scale=self.grid_scale)
        return HarnessConfig(
            seed=self.seed, workload=wl, degradation=self.degradation, grid=grid
        )


class EightDayStudy:
    """End-to-end §5 reproduction: simulate → degrade → query → match.

    ``engine`` selects the matching join implementation (``"row"`` or
    ``"columnar"``) and ``frame`` the analysis dataplane (row loops vs
    ``MatchFrame`` kernels); reports and analyses are bit-identical
    either way, so both are pure performance knobs.

    ``obs`` threads an observability bundle through every study phase:
    simulation, ingest, matching, analyses, and stream replay each run
    under ``use_obs(self.obs)`` with a ``cat="study"`` span around
    them.  Instrumentation reads no RNG and mutates no observed state,
    so results stay bit-identical with or without it.
    """

    def __init__(
        self,
        config: Optional[EightDayConfig] = None,
        engine: Optional[str] = None,
        frame: Optional[str] = None,
        obs: Optional[Obs] = None,
        shard_seconds: Optional[float] = None,
    ) -> None:
        self.config = config or EightDayConfig()
        self.engine = engine
        self.frame = validate_frame(frame) if frame is not None else None
        self.obs = obs
        self.shard_seconds = shard_seconds
        self.harness = SimulationHarness(self.config.harness_config())
        self._source: Optional[OpenSearchLike] = None
        self._pipeline: Optional[MatchingPipeline] = None
        self._report: Optional[MatchingReport] = None

    def run(self) -> "EightDayStudy":
        with use_obs(self.obs) as obs:
            with obs.tracer.span("study.simulate", cat="study") as sp:
                self.harness.run()
                sp.set("days", self.config.days)
        return self

    @property
    def telemetry(self) -> DegradedTelemetry:
        return self.harness.telemetry()

    @property
    def source(self) -> OpenSearchLike:
        if self._source is None:
            with use_obs(self.obs) as obs:
                with obs.tracer.span("study.ingest", cat="study"):
                    self._source = OpenSearchLike.from_telemetry(
                        self.telemetry, shard_seconds=self.shard_seconds
                    )
        return self._source

    @property
    def pipeline(self) -> MatchingPipeline:
        """One pipeline (and artifact cache) shared by every analysis.

        Table-1/2 and Fig-5..12 consumers all replay the full window;
        going through this pipeline means the pre-selection and
        candidate join are materialized once for all of them.
        """
        if self._pipeline is None:
            self._pipeline = MatchingPipeline(
                self.source,
                known_sites=self.harness.known_site_names(),
                engine=self.engine,
                obs=self.obs,
            )
        return self._pipeline

    def matching_report(
        self,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        engine: Optional[str] = None,
        matchers: Optional[Sequence] = None,
    ) -> MatchingReport:
        """The method-ladder comparison over the full window.

        ``workers`` (or an explicit ``executor``) fans the methods
        across processes; ``engine`` overrides the study's join engine.
        Serial/parallel and row/columnar runs all produce identical
        reports, so the cache does not distinguish them.  ``matchers``
        overrides the default Exact/RM1/RM2 ladder (e.g. adding RM3 at
        a chosen threshold); only the default ladder's report is
        cached — explicit matcher lists may carry per-instance tuning,
        so they always run (the window artifacts stay cached either
        way).
        """
        if matchers is None and self._report is not None:
            return self._report
        t0, t1 = self.harness.window
        ex = executor if executor is not None else make_executor(workers)
        try:
            with use_obs(self.obs) as obs:
                with obs.tracer.span("study.match", cat="study") as sp:
                    sp.set("workers", ex.workers)
                    report = self.pipeline.run(
                        t0, t1, matchers=matchers, executor=ex, engine=engine
                    )
        finally:
            if executor is None:
                ex.close()
        if matchers is None:
            self._report = report
        return report

    def stream(
        self,
        batch_seconds: Optional[float] = None,
        batch_events: Optional[int] = None,
        lateness: float = 0.0,
        matchers: Optional[Sequence] = None,
    ):
        """Replay the full window through the streaming dataplane.

        Builds the sequenced event log from this study's telemetry and
        drains it through a :class:`~repro.stream.StreamProcessor` in
        deterministic micro-batches (six-hour spans unless overridden).
        The returned processor's ``report()`` is bit-identical to
        :meth:`matching_report` for any columnar-lowerable ``matchers``
        (default Exact/RM1/RM2; RM3 qualifies), and its folds hold the
        running §5.1 headline / Fig-9 accumulators.
        """
        from repro.stream import replay_window

        t0, t1 = self.harness.window
        with use_obs(self.obs) as obs:
            with obs.tracer.span("study.stream", cat="study"):
                return replay_window(
                    self.telemetry,
                    t0,
                    t1,
                    known_sites=self.harness.known_site_names(),
                    matchers=matchers,
                    batch_seconds=batch_seconds,
                    batch_events=batch_events,
                    lateness=lateness,
                )

    def analyses(
        self,
        specs: Sequence = DEFAULT_ANALYSES,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        engine: Optional[str] = None,
        frame: Optional[str] = None,
    ) -> Dict[str, object]:
        """The §5 analysis batch over the full window.

        Fans one task per spec across the executor's persistent pool
        when parallel (see :func:`repro.exec.analysis.run_analyses`);
        ``frame`` overrides the study's analysis dataplane.  Results
        are bit-identical across every (workers, engine, frame)
        combination.
        """
        specs = list(specs)
        t0, t1 = self.harness.window
        ex = executor if executor is not None else make_executor(workers)
        try:
            with use_obs(self.obs) as obs:
                with obs.tracer.span("study.analyze", cat="study") as sp:
                    sp.set("n_specs", len(specs))
                    sp.set("workers", ex.workers)
                    return run_analyses(
                        self.source,
                        self.pipeline.plan(t0, t1),
                        specs,
                        known_sites=self.harness.known_site_names(),
                        executor=ex,
                        engine=engine or self.engine,
                        frame=frame if frame is not None else self.frame,
                    )
        finally:
            if executor is None:
                ex.close()
