"""Multi-year managed-volume growth (Fig 2).

Fig 2 shows the cumulative ATLAS volume managed by Rucio from 2009 to
mid-2024, approaching 1 exabyte and "more than a doubling of the data
volume since 2018".  Rather than simulating fifteen years of transfers,
we model the archive as a birth-death process of datasets: per-year
ingest grows with the LHC run schedule (shutdown years ingest less),
and a fraction of older, unprotected data is retired each year.  The
model is calibrated so the 2024 total lands near 1 EB and the
2018→2024 ratio exceeds 2×, and the benchmark checks both shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.units import PB

#: Years with no/low beam (LHC long shutdowns): ingest is depressed.
LOW_INGEST_YEARS = {2013, 2014, 2019, 2020, 2025}


@dataclass
class GrowthConfig:
    start_year: int = 2009
    end_year: int = 2024
    #: ingest in the first year (bytes)
    initial_ingest: float = 12.0 * PB
    #: year-on-year ingest growth during run years
    run_growth: float = 1.25
    #: ingest multiplier during shutdown years
    shutdown_factor: float = 0.45
    #: fraction of the standing archive retired per year
    retirement_rate: float = 0.045
    seed: int = 0
    #: relative jitter applied to each year's ingest
    jitter: float = 0.05


@dataclass
class GrowthPoint:
    year: int
    ingested: float
    retired: float
    cumulative: float


class GrowthModel:
    """Produces the Fig 2 cumulative-volume series."""

    def __init__(self, config: GrowthConfig | None = None) -> None:
        self.config = config or GrowthConfig()

    def series(self) -> List[GrowthPoint]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        points: List[GrowthPoint] = []
        ingest = cfg.initial_ingest
        total = 0.0
        for year in range(cfg.start_year, cfg.end_year + 1):
            year_ingest = ingest
            if year in LOW_INGEST_YEARS:
                year_ingest *= cfg.shutdown_factor
            year_ingest *= float(1.0 + rng.normal(0.0, cfg.jitter))
            retired = total * cfg.retirement_rate
            total = total + year_ingest - retired
            points.append(
                GrowthPoint(year=year, ingested=year_ingest, retired=retired, cumulative=total)
            )
            ingest *= cfg.run_growth
        return points

    def cumulative_by_year(self) -> Dict[int, float]:
        return {p.year: p.cumulative for p in self.series()}

    def doubling_ratio(self, from_year: int, to_year: int) -> float:
        c = self.cumulative_by_year()
        return c[to_year] / c[from_year]
