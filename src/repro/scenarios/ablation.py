"""Brokerage ablation: locality-only vs co-optimized.

Runs the same seeded campaign twice — once under the production
data-locality heuristic, once under the co-optimized broker — and
compares the end-to-end metrics the paper says are at stake: queuing
delay, success rate, load balance across sites, and remote movement
volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.coopt.loop import ControlLoop
from repro.obs import Obs
from repro.panda.job import Job
from repro.scenarios.runtime import HarnessConfig, SimulationHarness
from repro.workload.generator import WorkloadConfig


@dataclass
class BrokerageMetrics:
    """Outcome metrics of one campaign."""

    broker: str
    n_jobs: int
    success_rate: float
    mean_queuing: float
    p95_queuing: float
    remote_bytes: float
    local_bytes: float
    #: std-dev of per-site job shares — lower = better balanced
    load_imbalance: float
    #: share of failures attributable to data movement vs compute —
    #: §3.1 predicts the mix shifts when the brokerage strategy changes
    data_error_share: float = 0.0
    compute_error_share: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.broker}: {self.n_jobs} jobs, success {self.success_rate:.1%}, "
            f"queue mean {self.mean_queuing:.0f}s p95 {self.p95_queuing:.0f}s, "
            f"remote {self.remote_bytes / 1e12:.2f} TB, imbalance {self.load_imbalance:.3f}, "
            f"errors data/compute {self.data_error_share:.0%}/{self.compute_error_share:.0%}"
        )


@dataclass
class AblationConfig:
    seed: int = 11
    days: float = 2.0
    analysis_tasks_per_hour: float = 8.0
    production_tasks_per_hour: float = 1.0
    background_transfers_per_hour: float = 60.0

    def harness_config(self) -> HarnessConfig:
        return HarnessConfig(
            seed=self.seed,
            workload=WorkloadConfig(
                duration=self.days * 86400.0,
                analysis_tasks_per_hour=self.analysis_tasks_per_hour,
                production_tasks_per_hour=self.production_tasks_per_hour,
                background_transfers_per_hour=self.background_transfers_per_hour,
            ),
        )


def _metrics(harness: SimulationHarness, broker_name: str) -> BrokerageMetrics:
    jobs: List[Job] = harness.panda.terminal_jobs()
    queuing = np.array([j.queuing_time for j in jobs if j.queuing_time is not None])
    remote = local = 0.0
    for ev in harness.collector.transfer_events:
        if ev.source_site and ev.source_site == ev.destination_site:
            local += ev.file_size
        else:
            remote += ev.file_size
    per_site: Dict[str, int] = {}
    for j in jobs:
        per_site[j.computing_site] = per_site.get(j.computing_site, 0) + 1
    shares = np.array(list(per_site.values()), dtype=float)
    shares = shares / shares.sum() if shares.sum() else shares

    # Failure composition (§3.1's error-pattern shift observable).
    from repro.core.analysis.errors import ErrorFamily, family_of

    failed_codes = [j.error_code for j in jobs if not j.succeeded]
    n_failed = len(failed_codes)
    data_share = (
        sum(1 for c in failed_codes if family_of(c) is ErrorFamily.DATA) / n_failed
        if n_failed else 0.0
    )
    compute_share = (
        sum(1 for c in failed_codes if family_of(c) is ErrorFamily.COMPUTE) / n_failed
        if n_failed else 0.0
    )

    return BrokerageMetrics(
        broker=broker_name,
        n_jobs=len(jobs),
        success_rate=harness.panda.success_fraction(),
        mean_queuing=float(queuing.mean()) if len(queuing) else 0.0,
        p95_queuing=float(np.percentile(queuing, 95)) if len(queuing) else 0.0,
        remote_bytes=remote,
        local_bytes=local,
        load_imbalance=float(shares.std()) if len(shares) else 0.0,
        data_error_share=data_share,
        compute_error_share=compute_share,
    )


def run_locality(config: Optional[AblationConfig] = None) -> BrokerageMetrics:
    cfg = config or AblationConfig()
    harness = SimulationHarness(cfg.harness_config())
    harness.run()
    return _metrics(harness, "locality")


def run_coopt(
    config: Optional[AblationConfig] = None, obs: Optional[Obs] = None
) -> BrokerageMetrics:
    """Awareness-driven brokerage, now via the closed control loop.

    Runs the ``aware`` ladder rung: the broker's shared state is
    refreshed each epoch from the *degraded telemetry stream* (folded
    snapshots), not from ground-truth sinks — the honest digital-twin
    setting.  Steering interventions (dedup, re-brokerage, pre-staging)
    stay off so this remains a pure brokerage ablation.
    """
    cfg = config or AblationConfig()
    loop = ControlLoop(cfg.harness_config(), "aware", obs=obs)
    loop.run()
    return _metrics(loop.harness, "coopt")


@dataclass
class AblationResult:
    locality: BrokerageMetrics
    coopt: BrokerageMetrics

    @property
    def queue_speedup(self) -> float:
        """Mean-queuing improvement factor of co-optimization."""
        if self.coopt.mean_queuing == 0:
            return 1.0
        return self.locality.mean_queuing / self.coopt.mean_queuing

    @property
    def balance_gain(self) -> float:
        """Relative reduction of load imbalance (positive = better)."""
        if self.locality.load_imbalance == 0:
            return 0.0
        return 1.0 - self.coopt.load_imbalance / self.locality.load_imbalance


def run_ablation(
    config: Optional[AblationConfig] = None, obs: Optional[Obs] = None
) -> AblationResult:
    return AblationResult(locality=run_locality(config), coopt=run_coopt(config, obs=obs))
