"""The scale ladder: walking the dataplane up to paper scale.

Each *rung* synthesizes an 8-day telemetry window (10x the previous
rung's job count), runs the full match ladder (Exact / RM1 / RM2) and
the §5 analysis summaries over it, and records throughput, memory, and
shard-count artifacts.  The top rung is the paper's §5.5 window itself:
~1M jobs and ~6.5M transfers, end to end.

``python -m repro scale`` drives this and writes
``benchmarks/results/scale_ladder.json``; the CI smoke gate pins the
36k rung's throughput floor and memory ceiling
(``benchmarks/bench_scale_ladder.py``).
"""

from __future__ import annotations

import dataclasses
import resource
import time
from typing import List, Optional, Sequence

from repro.core.analysis.summary import (
    headline_stats,
    method_comparison_jobs,
    method_comparison_transfers,
)
from repro.exec.executor import make_executor
from repro.exec.plan import WindowPlan
from repro.obs import get_obs
from repro.workload.scale import ScaleConfig, ScaleDataset, synthesize

#: The default ladder: 10x rungs from study scale toward §5.5 scale.
DEFAULT_RUNGS = (3_600, 36_000, 360_000)

#: The paper-scale rung (§5.5: 966k user jobs, 6.8M transfers).
PAPER_RUNG = 1_000_000


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (monotone over the process lifetime)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _current_rss_mb() -> float:
    """Instantaneous RSS in MiB (``/proc``; 0.0 where unavailable)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * (resource.getpagesize() / (1024.0 * 1024.0))
    except (OSError, ValueError, IndexError):
        return 0.0


def run_rung(
    config: ScaleConfig,
    workers: int = 1,
    engine: str = "columnar",
    shared_memory: Optional[bool] = None,
    analyses: bool = True,
) -> dict:
    """Synthesize one rung, match it, analyze it; return the artifact row."""
    with get_obs().tracer.span("scale.rung", cat="scenario") as sp:
        sp.set("n_jobs", config.n_jobs)
        t = time.perf_counter()
        ds: ScaleDataset = synthesize(config)
        gen_s = time.perf_counter() - t

        plan = WindowPlan(*ds.window)
        executor = make_executor(workers=workers, engine=engine,
                                 shared_memory=shared_memory)
        t = time.perf_counter()
        with executor:
            report = executor.execute(
                ds.source, [plan], known_sites=ds.known_sites, engine=engine
            )[0]
        match_s = time.perf_counter() - t

        analyze_s = 0.0
        headline = None
        if analyses:
            t = time.perf_counter()
            stats = headline_stats(report, method="exact", frame=engine)
            transfer_rows = method_comparison_transfers(report, frame=engine)
            job_rows = method_comparison_jobs(report, frame=engine)
            analyze_s = time.perf_counter() - t
            headline = {
                "n_matched_jobs": stats.n_matched_jobs,
                "n_matched_transfers": stats.n_matched_transfers,
                "transfer_rows": [dataclasses.asdict(r) for r in transfer_rows],
                "job_rows": [dataclasses.asdict(r) for r in job_rows],
            }

        matched = {m: report[m].n_matched_jobs for m in report.methods}
        row = {
            "n_jobs": ds.n_jobs,
            "n_user_jobs": ds.n_user_jobs,
            "n_files": ds.n_files,
            "n_transfers": ds.n_transfers,
            "n_transfers_with_taskid": ds.n_transfers_with_taskid,
            "shard_seconds": config.shard_seconds,
            "shards": ds.source.shard_counts(),
            "workers": workers,
            "engine": engine,
            "seed_mode": getattr(executor, "seed_mode", "serial") or "serial",
            "generate_seconds": round(gen_s, 3),
            "match_seconds": round(match_s, 3),
            "analyze_seconds": round(analyze_s, 3),
            "match_jobs_per_sec": round(ds.n_user_jobs / match_s, 1) if match_s else 0.0,
            "match_transfers_per_sec": (
                round(ds.n_transfers / match_s, 1) if match_s else 0.0
            ),
            "matched_jobs": matched,
            "expected_matches": ds.expected_matches,
            "rss_mb": round(_current_rss_mb(), 1),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
        }
        if headline is not None:
            row["headline"] = headline
        sp.set("match_seconds", row["match_seconds"])
        sp.set("peak_rss_mb", row["peak_rss_mb"])
        for method, n in matched.items():
            if n != ds.expected_matches.get(method, n):
                raise AssertionError(
                    f"rung {config.n_jobs}: {method} matched {n}, "
                    f"expected {ds.expected_matches[method]}"
                )
        return row


def scale_ladder(
    rungs: Sequence[int] = DEFAULT_RUNGS,
    seed: int = 2025,
    days: float = 8.0,
    shard_seconds: float = 86400.0,
    workers: int = 1,
    engine: str = "columnar",
    shared_memory: Optional[bool] = None,
    analyses: bool = True,
) -> dict:
    """Walk the rungs; return the ``scale_ladder.json`` payload."""
    rows: List[dict] = []
    for n_jobs in rungs:
        config = ScaleConfig(
            n_jobs=int(n_jobs), seed=seed, days=days, shard_seconds=shard_seconds
        )
        rows.append(
            run_rung(
                config,
                workers=workers,
                engine=engine,
                shared_memory=shared_memory,
                analyses=analyses,
            )
        )
    return {
        "paper": {
            "window_days": 8,
            "n_user_jobs": 966_000,
            "n_transfers": 6_800_000,
            "note": "§5.5 scale anchors; the top rung meets or exceeds both.",
        },
        "config": {
            "seed": seed,
            "days": days,
            "shard_seconds": shard_seconds,
            "workers": workers,
            "engine": engine,
        },
        "rungs": rows,
    }
