"""Simulation harness: one object wiring every subsystem together.

The composition mirrors Fig 1's architecture: PanDA (server, brokerage,
Harvester, pilots) on one side, Rucio (catalog, replicas, rules,
transfer service) on the other, the network underneath, telemetry
collection alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.grid.presets import WlcgPresetConfig, build_wlcg
from repro.grid.topology import GridTopology
from repro.ids import IdFactory
from repro.panda.brokerage import Broker, DataLocalityBroker
from repro.panda.errors import FailureModel
from repro.panda.server import PandaServer
from repro.rng import RngRegistry
from repro.rucio.catalog import DidCatalog
from repro.rucio.client import RucioClient
from repro.rucio.fts import TransferService
from repro.idds.delivery import DeliveryService
from repro.rucio.reaper import Reaper
from repro.rucio.replica import ReplicaRegistry
from repro.rucio.rules import RuleEngine
from repro.rucio.tape import TapeSystem
from repro.sim.engine import Engine
from repro.sim.tracing import TraceLog
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.degradation import DegradationConfig, DegradedTelemetry, MetadataDegrader
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@dataclass
class HarnessConfig:
    """Everything needed to assemble and run one simulation."""

    seed: int = 0
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    degradation: DegradationConfig = field(default_factory=DegradationConfig)
    grid: Optional[WlcgPresetConfig] = None
    #: extra settle time after the last arrival so in-flight jobs finish
    drain: float = 86400.0
    link_capacity: int = 12
    transfer_failure_rate: float = 0.015
    enable_trace: bool = False
    #: model tape recalls for tape-resident production inputs
    enable_tape: bool = True
    #: run periodic unprotected-replica deletion sweeps
    enable_reaper: bool = False
    #: automatic re-attempts for failed analysis jobs (0 = off, the
    #: calibrated default; retries add same-task candidate pollution)
    retry_limit: int = 0


class SimulationHarness:
    """Assembled simulation; build → run → degrade → analyse."""

    def __init__(self, config: HarnessConfig, topology: Optional[GridTopology] = None,
                 broker: Optional[Broker] = None,
                 collector_factory: Optional[Callable[[DidCatalog], TelemetryCollector]] = None) -> None:
        self.config = config
        self.rngs = RngRegistry(config.seed)
        self.engine = Engine()
        self.trace = TraceLog(enabled=config.enable_trace)
        self.topology = topology or build_wlcg(config.grid, seed=config.seed)
        self.ids = IdFactory()
        self.catalog = DidCatalog()
        self.replicas = ReplicaRegistry(self.topology)
        # A custom factory lets live consumers tap the sinks as events
        # happen — e.g. repro.stream's StreamingCollector appending to
        # an event log — while inheriting all collector behavior.
        self.collector = (
            collector_factory(self.catalog)
            if collector_factory is not None
            else TelemetryCollector(self.catalog)
        )
        self.fts = TransferService(
            self.engine,
            self.topology,
            self.replicas,
            self.ids,
            self.collector.on_transfer,
            self.rngs.get("fts"),
            trace=self.trace,
            link_capacity=config.link_capacity,
            failure_rate=config.transfer_failure_rate,
        )
        self.tape = (
            TapeSystem(
                self.engine,
                self.topology,
                self.replicas,
                self.ids,
                self.collector.on_transfer,
                self.rngs.get("tape"),
            )
            if config.enable_tape
            else None
        )
        self.rules = RuleEngine(
            self.topology, self.catalog, self.replicas, self.fts, self.ids, tape=self.tape
        )
        self.rucio = RucioClient(
            self.topology, self.catalog, self.replicas, self.fts, self.rules, self.ids
        )
        self.reaper = (
            Reaper(self.engine, self.topology, self.replicas, self.rules)
            if config.enable_reaper
            else None
        )
        self.delivery = DeliveryService(self.engine, self.replicas)
        self.broker = broker or DataLocalityBroker(
            self.topology, self.rucio, self.rngs.get("broker")
        )
        self.panda = PandaServer(
            self.engine,
            self.topology,
            self.rucio,
            self.broker,
            self.rngs.get("panda"),
            failure_model=FailureModel(),
            trace=self.trace,
            retry_limit=config.retry_limit,
            ids=self.ids,
        )
        self.panda.on_job_done(self.collector.on_job_done)
        self.generator = WorkloadGenerator(
            self.engine,
            self.topology,
            self.rucio,
            self.rules,
            self.panda,
            self.ids,
            self.rngs.get("workload"),
            config.workload,
            delivery=self.delivery,
        )
        self._ran = False
        self._telemetry: Optional[DegradedTelemetry] = None

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> "SimulationHarness":
        """Prime the workload and run the campaign plus drain time."""
        if self._ran:
            raise RuntimeError("harness already ran")
        if self.reaper is not None:
            self.reaper.start()
        self.generator.prime()
        horizon = self.config.workload.duration + self.config.drain
        self.engine.run(until=horizon)
        self._ran = True
        return self

    @property
    def window(self) -> tuple[float, float]:
        """The study window: the campaign duration plus drain.

        Jobs completing during the drain are inside the window, matching
        §4.2's requirement that the selected period cover end-to-end job
        lifetimes.
        """
        return (0.0, self.config.workload.duration + self.config.drain)

    def telemetry(self) -> DegradedTelemetry:
        """Degraded records for the whole run (cached)."""
        if not self._ran:
            raise RuntimeError("run() the harness before extracting telemetry")
        if self._telemetry is None:
            degrader = MetadataDegrader(self.config.degradation, self.rngs.get("degradation"))
            self._telemetry = degrader.degrade(self.collector, self.panda.tasks)
        return self._telemetry

    def known_site_names(self) -> set[str]:
        return {s.name for s in self.topology.real_sites()}
