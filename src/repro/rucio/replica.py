"""Replica registry.

A replica is a physical copy of a file at an RSE (§2.2).  The registry
maintains the bidirectional mapping file ↔ RSEs with state tracking
(COPYING while a transfer is in flight, AVAILABLE once landed) and keeps
RSE capacity accounting in sync.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.grid.topology import GridTopology
from repro.rucio.did import DID


class ReplicaState(enum.Enum):
    COPYING = "copying"
    AVAILABLE = "available"


@dataclass
class Replica:
    """One physical copy of one file at one RSE."""

    file_did: DID
    rse_name: str
    size: int
    state: ReplicaState = ReplicaState.AVAILABLE
    created_at: float = 0.0

    @property
    def key(self) -> tuple[DID, str]:
        return (self.file_did, self.rse_name)


class ReplicaRegistry:
    """Tracks every replica on the grid.

    Invariants (checked by tests):
      * at most one replica of a file per RSE;
      * RSE ``used_bytes`` equals the sum of its replicas' sizes;
      * lookups by file and by RSE stay consistent.
    """

    def __init__(self, topology: GridTopology) -> None:
        self.topology = topology
        self._by_file: Dict[DID, Dict[str, Replica]] = {}
        self._by_rse: Dict[str, Set[DID]] = {}

    # -- mutation ----------------------------------------------------------

    def add(
        self,
        file_did: DID,
        rse_name: str,
        size: int,
        state: ReplicaState = ReplicaState.AVAILABLE,
        now: float = 0.0,
    ) -> Replica:
        if rse_name not in self.topology.rses:
            raise KeyError(f"unknown RSE: {rse_name}")
        per_file = self._by_file.setdefault(file_did, {})
        if rse_name in per_file:
            raise ValueError(f"replica already exists: {file_did} @ {rse_name}")
        self.topology.rse(rse_name).allocate(size)
        rep = Replica(file_did=file_did, rse_name=rse_name, size=size, state=state, created_at=now)
        per_file[rse_name] = rep
        self._by_rse.setdefault(rse_name, set()).add(file_did)
        return rep

    def mark_available(self, file_did: DID, rse_name: str) -> None:
        rep = self.get(file_did, rse_name)
        if rep is None:
            raise KeyError(f"no replica: {file_did} @ {rse_name}")
        rep.state = ReplicaState.AVAILABLE

    def remove(self, file_did: DID, rse_name: str) -> None:
        per_file = self._by_file.get(file_did, {})
        rep = per_file.pop(rse_name, None)
        if rep is None:
            raise KeyError(f"no replica: {file_did} @ {rse_name}")
        if not per_file:
            del self._by_file[file_did]
        self._by_rse[rse_name].discard(file_did)
        self.topology.rse(rse_name).release(rep.size)

    # -- queries -------------------------------------------------------------

    def get(self, file_did: DID, rse_name: str) -> Optional[Replica]:
        return self._by_file.get(file_did, {}).get(rse_name)

    def replicas_of(self, file_did: DID) -> List[Replica]:
        return list(self._by_file.get(file_did, {}).values())

    def available_replicas_of(self, file_did: DID) -> List[Replica]:
        return [r for r in self.replicas_of(file_did) if r.state is ReplicaState.AVAILABLE]

    def sites_with_file(self, file_did: DID, available_only: bool = True) -> Set[str]:
        reps = self.available_replicas_of(file_did) if available_only else self.replicas_of(file_did)
        return {self.topology.rse(r.rse_name).site_name for r in reps}

    def has_available_at_site(self, file_did: DID, site_name: str) -> bool:
        return site_name in self.sites_with_file(file_did, available_only=True)

    def files_at_rse(self, rse_name: str) -> Set[DID]:
        return set(self._by_rse.get(rse_name, set()))

    def n_replicas(self) -> int:
        return sum(len(d) for d in self._by_file.values())

    def dataset_complete_at_site(self, file_dids: List[DID], site_name: str) -> bool:
        """True when every file in the list has an available replica at the site."""
        return all(self.has_available_at_site(fd, site_name) for fd in file_dids)

    def missing_at_site(self, file_dids: List[DID], site_name: str) -> List[DID]:
        """Files from the list lacking an available replica at the site."""
        return [fd for fd in file_dids if not self.has_available_at_site(fd, site_name)]
