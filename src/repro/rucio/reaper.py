"""Reaper: replica deletion under Rucio's retention rules.

§2.2: replication rules "protect [replicas] from deletion until all
rules expire".  The reaper is the other half of that contract — a
periodic sweep that removes unprotected replicas: scratch copies past a
grace period, and datadisk copies evicted LRU once a high-watermark
fill fraction is crossed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.grid.rse import RseKind
from repro.grid.topology import GridTopology
from repro.rucio.replica import ReplicaRegistry
from repro.rucio.rules import RuleEngine
from repro.sim.engine import Engine


@dataclass
class ReaperStats:
    sweeps: int = 0
    deleted_replicas: int = 0
    freed_bytes: float = 0.0


class Reaper:
    """Periodic unprotected-replica deletion."""

    def __init__(
        self,
        engine: Engine,
        topology: GridTopology,
        replicas: ReplicaRegistry,
        rules: RuleEngine,
        interval: float = 6 * 3600.0,
        scratch_grace: float = 24 * 3600.0,
        datadisk_watermark: float = 0.85,
        datadisk_target: float = 0.70,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.replicas = replicas
        self.rules = rules
        self.interval = float(interval)
        self.scratch_grace = float(scratch_grace)
        self.datadisk_watermark = float(datadisk_watermark)
        self.datadisk_target = float(datadisk_target)
        self.stats = ReaperStats()
        self._scheduled = False

    def start(self) -> None:
        """Begin periodic sweeps (idempotent)."""
        if self._scheduled:
            return
        self._scheduled = True
        self.engine.schedule_in(self.interval, self._tick, label="reaper")

    def _tick(self) -> None:
        self.sweep()
        self.engine.schedule_in(self.interval, self._tick, label="reaper")

    # -- one sweep ---------------------------------------------------------------

    def sweep(self) -> int:
        """Run one deletion pass; returns replicas removed."""
        now = self.engine.now
        self.rules.expire(now)
        removed = 0
        removed += self._sweep_scratch(now)
        removed += self._sweep_datadisk(now)
        self.stats.sweeps += 1
        return removed

    def _deletable(self, file_did, rse_name: str, now: float) -> bool:
        return not self.rules.is_protected(file_did, rse_name, now)

    def _sweep_scratch(self, now: float) -> int:
        """Scratch copies older than the grace period are purged."""
        removed = 0
        for rse in list(self.topology.rses.values()):
            if rse.kind is not RseKind.SCRATCHDISK:
                continue
            for file_did in list(self.replicas.files_at_rse(rse.name)):
                rep = self.replicas.get(file_did, rse.name)
                if rep is None:
                    continue
                if now - rep.created_at < self.scratch_grace:
                    continue
                if not self._deletable(file_did, rse.name, now):
                    continue
                self._remove(file_did, rse.name, rep.size)
                removed += 1
        return removed

    def _sweep_datadisk(self, now: float) -> int:
        """LRU eviction above the high watermark, down to the target."""
        removed = 0
        for rse in list(self.topology.rses.values()):
            if rse.kind is not RseKind.DATADISK:
                continue
            if rse.fill_fraction <= self.datadisk_watermark:
                continue
            target_bytes = self.datadisk_target * rse.capacity_bytes
            candidates = []
            for file_did in self.replicas.files_at_rse(rse.name):
                rep = self.replicas.get(file_did, rse.name)
                if rep is not None and self._deletable(file_did, rse.name, now):
                    candidates.append(rep)
            candidates.sort(key=lambda r: r.created_at)  # oldest first
            for rep in candidates:
                if rse.used_bytes <= target_bytes:
                    break
                self._remove(rep.file_did, rse.name, rep.size)
                removed += 1
        return removed

    def _remove(self, file_did, rse_name: str, size: float) -> None:
        self.replicas.remove(file_did, rse_name)
        self.stats.deleted_replicas += 1
        self.stats.freed_bytes += size
