"""Transfer activity taxonomy.

Table 1 of the paper breaks matched transfers down by activity.  The
five job-driven activities are modelled exactly; two background
activities (rebalancing / consolidation) represent the large population
of transfers *not* triggered by any job — the reason only a fraction of
transfer events can ever be matched.
"""

from __future__ import annotations

import enum


class TransferActivity(enum.Enum):
    """Why a transfer happened."""

    # Job-driven activities (Table 1)
    ANALYSIS_DOWNLOAD = "Analysis Download"
    ANALYSIS_UPLOAD = "Analysis Upload"
    ANALYSIS_DOWNLOAD_DIRECT_IO = "Analysis Download Direct IO"
    PRODUCTION_DOWNLOAD = "Production Download"
    PRODUCTION_UPLOAD = "Production Upload"

    # Background activities (Rucio-autonomous; no job linkage exists)
    DATA_REBALANCING = "Data Rebalancing"
    DATA_CONSOLIDATION = "Data Consolidation"
    #: Tape recall onto a disk buffer (Data Carousel staging).
    STAGING = "Staging"

    @property
    def is_download(self) -> bool:
        """Download = data moves *to* the computing site before/while a job runs."""
        return self in (
            TransferActivity.ANALYSIS_DOWNLOAD,
            TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO,
            TransferActivity.PRODUCTION_DOWNLOAD,
        )

    @property
    def is_upload(self) -> bool:
        """Upload = outputs move *from* the computing site after a job."""
        return self in (
            TransferActivity.ANALYSIS_UPLOAD,
            TransferActivity.PRODUCTION_UPLOAD,
        )

    @property
    def is_job_driven(self) -> bool:
        return self.is_download or self.is_upload

    @property
    def is_production(self) -> bool:
        return self in (
            TransferActivity.PRODUCTION_DOWNLOAD,
            TransferActivity.PRODUCTION_UPLOAD,
        )

    @property
    def is_analysis(self) -> bool:
        return self in (
            TransferActivity.ANALYSIS_DOWNLOAD,
            TransferActivity.ANALYSIS_UPLOAD,
            TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO,
        )

    @property
    def overlaps_execution(self) -> bool:
        """Direct IO streams files during payload execution (§5.1)."""
        return self is TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO


#: Order in which Table 1 lists activities.
TABLE1_ORDER = [
    TransferActivity.ANALYSIS_DOWNLOAD,
    TransferActivity.ANALYSIS_UPLOAD,
    TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO,
    TransferActivity.PRODUCTION_UPLOAD,
    TransferActivity.PRODUCTION_DOWNLOAD,
]
