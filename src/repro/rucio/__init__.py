"""Rucio-like distributed data management substrate.

Implements the concepts from §2.2 of the paper: the three-tier DID
namespace (file / dataset / container), replicas on Rucio Storage
Elements, replication rules that trigger transfers of missing replicas,
replica source selection, and an FTS-like transfer service that models
queueing, link bandwidth sharing, and per-site stage-in concurrency.
"""

from repro.rucio.activities import TransferActivity
from repro.rucio.did import DID, DidType, FileDid, DatasetDid, ContainerDid
from repro.rucio.catalog import DidCatalog
from repro.rucio.replica import Replica, ReplicaState, ReplicaRegistry
from repro.rucio.rules import ReplicationRule, RuleEngine
from repro.rucio.selector import ReplicaSelector, SourceChoice
from repro.rucio.transfer import TransferRequest, TransferEvent
from repro.rucio.fts import TransferService
from repro.rucio.client import RucioClient

__all__ = [
    "TransferActivity",
    "DID",
    "DidType",
    "FileDid",
    "DatasetDid",
    "ContainerDid",
    "DidCatalog",
    "Replica",
    "ReplicaState",
    "ReplicaRegistry",
    "ReplicationRule",
    "RuleEngine",
    "ReplicaSelector",
    "SourceChoice",
    "TransferRequest",
    "TransferEvent",
    "TransferService",
    "RucioClient",
]
