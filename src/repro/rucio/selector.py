"""Replica source selection.

Implements step (2) of the Rucio transfer workflow (§2.2): choose the
best source replica for a transfer "based on protocol, throughput, and
network performance metrics".  Preference order: a replica already at
the destination site (local copy between RSEs), then same-region
sources, then the source with the highest current effective bandwidth
to the destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.grid.topology import GridTopology
from repro.rucio.did import DID
from repro.rucio.replica import ReplicaRegistry


@dataclass(frozen=True)
class SourceChoice:
    """The selector's verdict for one file transfer."""

    source_rse: str
    source_site: str
    estimated_bandwidth: float


class ReplicaSelector:
    """Scores candidate source replicas for a destination site."""

    def __init__(self, topology: GridTopology, replicas: ReplicaRegistry) -> None:
        self.topology = topology
        self.replicas = replicas

    def choose(
        self,
        file_did: DID,
        dest_site: str,
        now: float,
        exclude_rses: Optional[set[str]] = None,
    ) -> Optional[SourceChoice]:
        """Best source for moving ``file_did`` toward ``dest_site``.

        Returns None when no available replica exists anywhere (the
        caller decides whether that is an error or a wait).
        """
        candidates = self.replicas.available_replicas_of(file_did)
        # Tape copies are not directly transferable: they must be staged
        # to a disk buffer first (see repro.rucio.tape).
        candidates = [
            r for r in candidates if not self.topology.rse(r.rse_name).kind.is_tape
        ]
        if exclude_rses:
            candidates = [r for r in candidates if r.rse_name not in exclude_rses]
        if not candidates:
            return None

        dest_region = self.topology.site(dest_site).region
        network = self.topology.network
        assert network is not None

        best: Optional[SourceChoice] = None
        best_score: tuple[int, float] = (-1, -1.0)
        for rep in candidates:
            src_site = self.topology.rse(rep.rse_name).site_name
            if src_site == dest_site:
                locality = 2
            elif self.topology.site(src_site).region == dest_region:
                locality = 1
            else:
                locality = 0
            bw = network.effective_bandwidth(src_site, dest_site, now)
            score = (locality, bw)
            if score > best_score:
                best_score = score
                best = SourceChoice(
                    source_rse=rep.rse_name, source_site=src_site, estimated_bandwidth=bw
                )
        return best

    def rank(self, file_did: DID, dest_site: str, now: float) -> List[SourceChoice]:
        """All candidate sources, best first (diagnostics / co-optimization)."""
        out: List[SourceChoice] = []
        excluded: set[str] = set()
        while True:
            choice = self.choose(file_did, dest_site, now, exclude_rses=excluded)
            if choice is None:
                return out
            out.append(choice)
            excluded.add(choice.source_rse)
