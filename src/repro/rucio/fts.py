"""FTS-like transfer service.

Executes :class:`TransferRequest`s over the network model: picks a
source replica, waits for link capacity, integrates time-varying
bandwidth into a duration, lands the replica, and emits a ground-truth
:class:`TransferEvent` to the telemetry sink.

Two concurrency mechanisms shape the paper's observations:

* **per-link capacity** — at most ``link_capacity`` simultaneous
  transfers per (source site, destination site) pair; excess requests
  queue FIFO, producing the staging waits of Figs 5-6;
* **per-group parallelism** — a stage-in batch for one job starts at
  most ``parallelism`` of its files concurrently.  Sites whose tooling
  is sequential (``parallelism=1``) serialise their stage-ins, which is
  the bandwidth under-utilization signature of Fig 10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.grid.topology import GridTopology
from repro.ids import IdFactory
from repro.rucio.replica import ReplicaRegistry, ReplicaState
from repro.rucio.selector import ReplicaSelector
from repro.rucio.transfer import TransferEvent, TransferRequest
from repro.sim.engine import Engine
from repro.sim.tracing import TraceLog


@dataclass
class TransferGroup:
    """A batch of transfers that complete (or fail) together.

    Used for a job's stage-in/stage-out set.  ``on_complete`` fires once
    every member has finished, receiving the ordered event list.
    """

    group_id: int
    parallelism: int
    on_complete: Optional[Callable[[List[TransferEvent]], None]] = None
    pending: Deque[TransferRequest] = field(default_factory=deque)
    in_flight: int = 0
    events: List[TransferEvent] = field(default_factory=list)
    failed: bool = False

    @property
    def done(self) -> bool:
        return not self.pending and self.in_flight == 0


class TransferService:
    """The transfer execution engine (Rucio conveyor + FTS, collapsed).

    Parameters
    ----------
    engine, topology, replicas:
        Simulation kernel and state.
    sink:
        Callable receiving each ground-truth :class:`TransferEvent`.
    link_capacity:
        Max simultaneous transfers per directed site pair.
    failure_rate:
        Baseline probability that a transfer fails in flight.
    """

    def __init__(
        self,
        engine: Engine,
        topology: GridTopology,
        replicas: ReplicaRegistry,
        ids: IdFactory,
        sink: Callable[[TransferEvent], None],
        rng: np.random.Generator,
        trace: Optional[TraceLog] = None,
        link_capacity: int = 12,
        failure_rate: float = 0.015,
        stuck_rate: float = 0.012,
        stuck_factor: tuple[float, float] = (8.0, 40.0),
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.replicas = replicas
        self.ids = ids
        self.sink = sink
        self.rng = rng
        self.trace = trace or TraceLog(enabled=False)
        self.link_capacity = int(link_capacity)
        self.failure_rate = float(failure_rate)
        #: probability a transfer gets *stuck* — crawling at a fraction
        #: of the link rate for its whole life.  A real FTS pathology,
        #: and the mechanism behind the paper's extreme transfer-time
        #: jobs (the 20.5 GB / >30 min transfer of Fig 11, the >75%
        #: transfer-time tail of Fig 9).
        self.stuck_rate = float(stuck_rate)
        self.stuck_factor = stuck_factor
        self.selector = ReplicaSelector(topology, replicas)
        #: minimum share of each link reserved for job-driven transfers;
        #: FTS manages per-activity shares so background rebalancing
        #: cannot starve stage-ins.  Implemented as a cap on background
        #: occupancy per link.
        self.job_share: float = 0.5
        self._background_active: Dict[Tuple[str, str], int] = {}

        self._link_waiting: Dict[Tuple[str, str], Deque[Tuple[TransferRequest, TransferGroup]]] = {}
        self._group_seq = 0
        self.completed = 0
        self.failed = 0

    # -- public API ------------------------------------------------------------

    def submit_group(
        self,
        requests: List[TransferRequest],
        parallelism: int,
        on_complete: Optional[Callable[[List[TransferEvent]], None]] = None,
    ) -> TransferGroup:
        """Submit a batch sharing a parallelism budget (one job's staging)."""
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        self._group_seq += 1
        group = TransferGroup(
            group_id=self._group_seq, parallelism=parallelism, on_complete=on_complete
        )
        now = self.engine.now
        for req in requests:
            req.submitted_at = now
            group.pending.append(req)
        if not requests:
            # Empty batch: complete immediately (all inputs were local).
            if on_complete is not None:
                self.engine.schedule_in(0.0, lambda: on_complete([]), label="empty-group")
            return group
        self._pump_group(group)
        return group

    def submit(self, request: TransferRequest) -> TransferGroup:
        """Submit a standalone transfer (background activity, rule fill)."""
        return self.submit_group([request], parallelism=1)

    # -- internals ---------------------------------------------------------------

    def _pump_group(self, group: TransferGroup) -> None:
        """Start as many of the group's pending transfers as parallelism allows."""
        while group.pending and group.in_flight < group.parallelism:
            req = group.pending.popleft()
            group.in_flight += 1
            self._route(req, group)

    def _route(self, req: TransferRequest, group: TransferGroup) -> None:
        """Resolve the source and either start or enqueue on the link."""
        dest_site = self.topology.rse(req.dest_rse).site_name
        if req.source_rse is None:
            choice = self.selector.choose(req.file_did, dest_site, self.engine.now)
            if choice is None:
                self._finish(req, group, src_rse="", started=self.engine.now, ok=False)
                return
            req.source_rse = choice.source_rse
        src_site = self.topology.rse(req.source_rse).site_name

        network = self.topology.network
        assert network is not None
        at_capacity = network.active_on(src_site, dest_site) >= self.link_capacity
        background_capped = (
            not req.activity.is_job_driven
            and self._background_active.get((src_site, dest_site), 0)
            >= max(1, int(self.link_capacity * (1.0 - self.job_share)))
        )
        if at_capacity or background_capped:
            self._link_waiting.setdefault((src_site, dest_site), deque()).append((req, group))
            self.trace.emit(self.engine.now, "transfer.queued", str(req.file_did),
                            src=src_site, dst=dest_site)
            return
        self._start(req, group, src_site, dest_site)

    def _start(self, req: TransferRequest, group: TransferGroup, src_site: str, dest_site: str) -> None:
        network = self.topology.network
        assert network is not None
        network.acquire(src_site, dest_site)
        is_background = not req.activity.is_job_driven
        if is_background:
            key = (src_site, dest_site)
            self._background_active[key] = self._background_active.get(key, 0) + 1
        started = self.engine.now
        duration = network.transfer_duration(src_site, dest_site, req.size, started)
        if self.rng.random() < self.stuck_rate:
            lo, hi = self.stuck_factor
            duration *= float(self.rng.uniform(lo, hi))
        fails = bool(self.rng.random() < self.failure_rate)
        if fails:
            # Failures surface partway through the attempted movement.
            duration *= float(self.rng.uniform(0.3, 1.5))
        self.trace.emit(started, "transfer.start", str(req.file_did),
                        src=src_site, dst=dest_site, size=req.size, eta=duration)

        def complete() -> None:
            network.release(src_site, dest_site)
            if is_background:
                key = (src_site, dest_site)
                self._background_active[key] = max(0, self._background_active.get(key, 1) - 1)
            self._finish(req, group, src_rse=req.source_rse or "", started=started, ok=not fails)
            self._drain_link(src_site, dest_site)

        self.engine.schedule_in(duration, complete, label=f"xfer:{req.request_id}")

    def _background_capped(self, src_site: str, dest_site: str) -> bool:
        cap = max(1, int(self.link_capacity * (1.0 - self.job_share)))
        return self._background_active.get((src_site, dest_site), 0) >= cap

    def _drain_link(self, src_site: str, dest_site: str) -> None:
        """Start waiting transfers now that the link freed a slot.

        One pass over the queue: job-driven transfers start whenever the
        link has room; background ones additionally respect the
        per-activity share cap and otherwise keep their place in line.
        """
        waiting = self._link_waiting.get((src_site, dest_site))
        network = self.topology.network
        assert network is not None
        if not waiting:
            return
        deferred: Deque[Tuple[TransferRequest, TransferGroup]] = deque()
        while waiting and network.active_on(src_site, dest_site) < self.link_capacity:
            req, group = waiting.popleft()
            if not req.activity.is_job_driven and self._background_capped(src_site, dest_site):
                deferred.append((req, group))
                continue
            self._start(req, group, src_site, dest_site)
        deferred.extend(waiting)
        if deferred:
            self._link_waiting[(src_site, dest_site)] = deferred
        else:
            del self._link_waiting[(src_site, dest_site)]

    def _finish(
        self, req: TransferRequest, group: TransferGroup, src_rse: str, started: float, ok: bool
    ) -> None:
        now = self.engine.now
        dest_site = self.topology.rse(req.dest_rse).site_name
        src_site = self.topology.rse(src_rse).site_name if src_rse else ""

        if ok:
            if not req.ephemeral:
                existing = self.replicas.get(req.file_did, req.dest_rse)
                if existing is None:
                    self.replicas.add(
                        req.file_did, req.dest_rse, req.size, state=ReplicaState.AVAILABLE, now=now
                    )
                else:
                    existing.state = ReplicaState.AVAILABLE
            self.completed += 1
        else:
            self.failed += 1

        event = TransferEvent(
            transfer_id=self.ids.next_transferid(),
            lfn=req.file_did.name,
            scope=req.file_did.scope,
            dataset=req.dataset_name,
            proddblock=req.proddblock,
            file_size=req.size,
            source_rse=src_rse,
            dest_rse=req.dest_rse,
            source_site=src_site,
            destination_site=dest_site,
            activity=req.activity,
            submitted_at=req.submitted_at,
            starttime=started,
            endtime=now,
            success=ok,
            pandaid=req.pandaid,
            jeditaskid=req.jeditaskid,
        )
        self.sink(event)
        group.events.append(event)
        if not ok:
            group.failed = True

        group.in_flight -= 1
        self._pump_group(group)
        if group.done and group.on_complete is not None:
            cb, group.on_complete = group.on_complete, None
            cb(group.events)
