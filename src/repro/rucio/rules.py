"""Replication rules.

Rules declare *where data must exist* (§2.2): when a rule is applied to
a DID, Rucio creates the missing replicas by triggering transfers and
protects existing ones from deletion until every covering rule expires.
The engine here implements rule registration, satisfaction checking,
missing-replica transfer generation, and expiry-driven cleanup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from typing import TYPE_CHECKING

from repro.grid.rse import RseKind, rse_name
from repro.grid.topology import GridTopology
from repro.ids import IdFactory
from repro.rucio.activities import TransferActivity
from repro.rucio.catalog import DidCatalog
from repro.rucio.did import DID
from repro.rucio.fts import TransferService
from repro.rucio.replica import ReplicaRegistry
from repro.rucio.transfer import TransferRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rucio.tape import TapeSystem


@dataclass
class ReplicationRule:
    """One placement declaration.

    ``rse_names`` is the resolved placement target list (we resolve RSE
    expressions eagerly; production Rucio evaluates them lazily, which
    doesn't change observable placement for static topologies).
    """

    rule_id: int
    did: DID
    rse_names: List[str]
    created_at: float
    lifetime: Optional[float] = None  # seconds; None = pinned forever
    activity: TransferActivity = TransferActivity.DATA_CONSOLIDATION
    jeditaskid: int = 0

    def expires_at(self) -> Optional[float]:
        return None if self.lifetime is None else self.created_at + self.lifetime

    def expired(self, now: float) -> bool:
        e = self.expires_at()
        return e is not None and now >= e


class RuleEngine:
    """Applies rules: creates missing replicas, tracks protection, expires."""

    def __init__(
        self,
        topology: GridTopology,
        catalog: DidCatalog,
        replicas: ReplicaRegistry,
        transfers: TransferService,
        ids: IdFactory,
        tape: Optional["TapeSystem"] = None,
    ) -> None:
        self.topology = topology
        self.catalog = catalog
        self.replicas = replicas
        self.transfers = transfers
        self.ids = ids
        self.tape = tape
        self._rules: Dict[int, ReplicationRule] = {}

    # -- rule lifecycle ---------------------------------------------------------

    def add_rule(
        self,
        did: DID,
        rse_names: List[str],
        now: float,
        lifetime: Optional[float] = None,
        activity: TransferActivity = TransferActivity.DATA_CONSOLIDATION,
        jeditaskid: int = 0,
        trigger_transfers: bool = True,
    ) -> ReplicationRule:
        """Register a rule and (optionally) trigger fills for missing replicas."""
        for rn in rse_names:
            if rn not in self.topology.rses:
                raise KeyError(f"rule targets unknown RSE: {rn}")
        rule = ReplicationRule(
            rule_id=self.ids.next_ruleid(),
            did=did,
            rse_names=list(rse_names),
            created_at=now,
            lifetime=lifetime,
            activity=activity,
            jeditaskid=jeditaskid,
        )
        self._rules[rule.rule_id] = rule
        if trigger_transfers:
            self.fill_missing(rule)
        return rule

    def fill_missing(self, rule: ReplicationRule) -> List[TransferRequest]:
        """Submit transfers for every (file, target RSE) lacking a replica.

        Data Carousel path: when a file's only available copies sit on
        TAPE, a recall onto the custodial site's disk buffer is queued
        first and the wide-area transfer chains off its completion.
        """
        requests: List[TransferRequest] = []
        files = self.catalog.resolve_files(rule.did)
        for rn in rule.rse_names:
            for f in files:
                if self.replicas.get(f.did, rn) is not None:
                    continue
                req = TransferRequest(
                    request_id=self.ids.next_transferid(),
                    file_did=f.did,
                    size=f.size,
                    dest_rse=rn,
                    activity=rule.activity,
                    jeditaskid=rule.jeditaskid,
                    dataset_name=f.dataset_name,
                    proddblock=f.proddblock,
                )
                if self._needs_tape_stage(f.did):
                    self._stage_then_transfer(f.did, f.size, req, rule)
                else:
                    self.transfers.submit(req)
                requests.append(req)
        return requests

    def _needs_tape_stage(self, file_did: DID) -> bool:
        """True when no disk replica exists but a tape copy does."""
        if self.tape is None:
            return False
        disk = [
            r for r in self.replicas.available_replicas_of(file_did)
            if not self.topology.rse(r.rse_name).kind.is_tape
        ]
        return not disk and bool(self.tape.tape_replicas_of(file_did))

    #: recall attempts before a rule gives up on a file
    TAPE_RETRIES = 3

    def _stage_then_transfer(
        self, file_did: DID, size: int, req: TransferRequest, rule: ReplicationRule
    ) -> None:
        assert self.tape is not None
        tape_rse = self.tape.tape_replicas_of(file_did)[0]
        buffer_rse = self.topology.datadisk(self.topology.rse(tape_rse).site_name).name
        attempts = {"n": 0}

        def submit_stage() -> None:
            attempts["n"] += 1
            self.tape.stage(
                file_did, size, tape_rse,
                dest_rse=buffer_rse,
                on_complete=on_staged,
                jeditaskid=rule.jeditaskid,
            )

        def on_staged(ok: bool) -> None:
            if not ok:
                if attempts["n"] < self.TAPE_RETRIES:
                    submit_stage()  # FTS-style automatic retry
                return
            if req.dest_rse == buffer_rse:
                return  # the buffer itself was the target
            self.transfers.submit(req)

        submit_stage()

    def satisfied(self, rule: ReplicationRule) -> bool:
        """True when every file has an available replica at every target."""
        files = self.catalog.resolve_files(rule.did)
        for rn in rule.rse_names:
            for f in files:
                rep = self.replicas.get(f.did, rn)
                if rep is None or rep.state.value != "available":
                    return False
        return True

    # -- protection and expiry -----------------------------------------------

    def protecting_rules(self, file_did: DID, rse: str, now: float) -> List[ReplicationRule]:
        """Unexpired rules that pin this replica."""
        out = []
        for rule in self._rules.values():
            if rule.expired(now) or rse not in rule.rse_names:
                continue
            if any(f.did == file_did for f in self.catalog.resolve_files(rule.did)):
                out.append(rule)
        return out

    def is_protected(self, file_did: DID, rse: str, now: float) -> bool:
        return bool(self.protecting_rules(file_did, rse, now))

    def expire(self, now: float) -> List[ReplicationRule]:
        """Drop expired rules; returns what was removed."""
        gone = [r for r in self._rules.values() if r.expired(now)]
        for r in gone:
            del self._rules[r.rule_id]
        return gone

    def rules_for(self, did: DID) -> List[ReplicationRule]:
        return [r for r in self._rules.values() if r.did == did]

    @property
    def n_rules(self) -> int:
        return len(self._rules)

    # -- convenience -------------------------------------------------------------

    def pin_dataset_at_site(
        self,
        dataset_did: DID,
        site_name: str,
        now: float,
        lifetime: Optional[float] = None,
        kind: RseKind = RseKind.DATADISK,
        **kwargs,
    ) -> ReplicationRule:
        """Shorthand: one rule targeting the site's disk of the given kind."""
        return self.add_rule(dataset_did, [rse_name(site_name, kind)], now, lifetime, **kwargs)
