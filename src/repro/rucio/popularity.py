"""Dataset popularity tracking.

Rucio's rebalancing decisions weigh how often data is accessed; the
paper's co-optimization discussion (§7) likewise needs demand signals
shared between the systems.  The tracker keeps exponentially-decayed
access counts per dataset and exposes the rankings both the background
rebalancer and a placement policy can consult.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rucio.did import DID


@dataclass
class _Entry:
    score: float
    last_update: float


class PopularityTracker:
    """Exponentially-decayed per-dataset access scores.

    ``half_life`` controls how quickly old accesses stop mattering;
    scores are lazily decayed at read/update time, so tracking cost is
    O(1) per access regardless of dataset count.
    """

    def __init__(self, half_life: float = 2 * 86400.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = float(half_life)
        self._entries: Dict[DID, _Entry] = {}
        self.total_accesses = 0

    def _decay(self, entry: _Entry, now: float) -> None:
        dt = now - entry.last_update
        if dt > 0:
            entry.score *= math.exp(-math.log(2.0) * dt / self.half_life)
            entry.last_update = now

    def record_access(self, dataset: DID, now: float, weight: float = 1.0) -> None:
        """One access (job brokered against / files read from the dataset)."""
        self.total_accesses += 1
        entry = self._entries.get(dataset)
        if entry is None:
            self._entries[dataset] = _Entry(score=weight, last_update=now)
            return
        self._decay(entry, now)
        entry.score += weight

    def score(self, dataset: DID, now: float) -> float:
        entry = self._entries.get(dataset)
        if entry is None:
            return 0.0
        self._decay(entry, now)
        return entry.score

    def top(self, now: float, n: int = 10) -> List[Tuple[DID, float]]:
        scored = [(d, self.score(d, now)) for d in list(self._entries)]
        scored.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return scored[:n]

    def pick_weighted(
        self, now: float, rng, fallback: Optional[List[DID]] = None
    ) -> Optional[DID]:
        """Sample a dataset proportionally to popularity (for
        demand-driven rebalancing); uniform over ``fallback`` when
        nothing has been accessed yet."""
        items = [(d, self.score(d, now)) for d in list(self._entries)]
        items = [(d, s) for d, s in items if s > 0]
        if not items:
            if fallback:
                return fallback[int(rng.integers(len(fallback)))]
            return None
        total = sum(s for _, s in items)
        x = float(rng.random()) * total
        acc = 0.0
        for d, s in items:
            acc += s
            if x <= acc:
                return d
        return items[-1][0]

    def __len__(self) -> int:
        return len(self._entries)
