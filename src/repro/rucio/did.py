"""Data Identifiers (DIDs).

Rucio's namespace is three-tiered (§2.2): files group into datasets,
datasets aggregate into (possibly nested) containers.  Every datum is
referenced by a globally unique ``scope:name`` pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class DidType(enum.Enum):
    FILE = "file"
    DATASET = "dataset"
    CONTAINER = "container"


@dataclass(frozen=True)
class DID:
    """A scoped data identifier.  Immutable and hashable (dict keys)."""

    scope: str
    name: str

    def __post_init__(self) -> None:
        if not self.scope or not self.name:
            raise ValueError("DID scope and name must be non-empty")
        if ":" in self.scope:
            raise ValueError(f"scope may not contain ':': {self.scope!r}")

    def __str__(self) -> str:
        return f"{self.scope}:{self.name}"

    @classmethod
    def parse(cls, text: str) -> "DID":
        scope, sep, name = text.partition(":")
        if not sep:
            raise ValueError(f"not a scope:name DID: {text!r}")
        return cls(scope=scope, name=name)


@dataclass
class FileDid:
    """A file: the smallest replication unit.

    ``proddblock`` is the block-level data identifier the matching
    algorithm joins on; in production it names the sub-dataset a file
    was produced into.
    """

    did: DID
    size: int
    dataset_name: str = ""
    proddblock: str = ""
    adler32: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file {self.did}: negative size")

    @property
    def lfn(self) -> str:
        """Logical file name — the DID name component."""
        return self.did.name

    @property
    def scope(self) -> str:
        return self.did.scope


@dataclass
class DatasetDid:
    """A dataset: an ordered collection of files, the bulk-operation unit."""

    did: DID
    file_dids: List[DID] = field(default_factory=list)
    #: JEDI task this dataset belongs to (0 = not task-bound).
    jeditaskid: int = 0
    is_open: bool = True

    @property
    def name(self) -> str:
        return self.did.name

    @property
    def n_files(self) -> int:
        return len(self.file_dids)

    def attach(self, file_did: DID) -> None:
        if not self.is_open:
            raise RuntimeError(f"dataset {self.did} is closed")
        if file_did in self.file_dids:
            raise ValueError(f"file {file_did} already attached to {self.did}")
        self.file_dids.append(file_did)

    def close(self) -> None:
        self.is_open = False


@dataclass
class ContainerDid:
    """A container: aggregates datasets and/or other containers."""

    did: DID
    child_dids: List[DID] = field(default_factory=list)

    def attach(self, child: DID) -> None:
        if child in self.child_dids:
            raise ValueError(f"child {child} already attached to {self.did}")
        if child == self.did:
            raise ValueError("container cannot contain itself")
        self.child_dids.append(child)
