"""The DID catalog: registration and hierarchy resolution."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.rucio.did import DID, ContainerDid, DatasetDid, DidType, FileDid


class DidCatalog:
    """Authoritative registry of all DIDs and their hierarchy.

    Guarantees: names are unique per type; dataset attachments reference
    registered files; container resolution terminates (cycles rejected
    at attach time by construction — children must already exist, so a
    cycle would require attaching an ancestor, which we check).
    """

    def __init__(self) -> None:
        self._files: Dict[DID, FileDid] = {}
        self._datasets: Dict[DID, DatasetDid] = {}
        self._containers: Dict[DID, ContainerDid] = {}
        #: reverse index: file DID -> dataset DIDs containing it
        self._file_parents: Dict[DID, List[DID]] = {}

    # -- registration -----------------------------------------------------

    def register_file(self, file: FileDid) -> FileDid:
        if file.did in self._files:
            raise ValueError(f"file already registered: {file.did}")
        self._files[file.did] = file
        return file

    def register_dataset(self, dataset: DatasetDid) -> DatasetDid:
        if dataset.did in self._datasets:
            raise ValueError(f"dataset already registered: {dataset.did}")
        for fd in dataset.file_dids:
            if fd not in self._files:
                raise ValueError(f"dataset {dataset.did} references unregistered file {fd}")
        self._datasets[dataset.did] = dataset
        for fd in dataset.file_dids:
            self._file_parents.setdefault(fd, []).append(dataset.did)
        return dataset

    def register_container(self, container: ContainerDid) -> ContainerDid:
        if container.did in self._containers:
            raise ValueError(f"container already registered: {container.did}")
        for child in container.child_dids:
            if child not in self._datasets and child not in self._containers:
                raise ValueError(f"container {container.did} references unknown child {child}")
        self._containers[container.did] = container
        return container

    def attach_file(self, dataset_did: DID, file_did: DID) -> None:
        ds = self.dataset(dataset_did)
        if file_did not in self._files:
            raise ValueError(f"unregistered file: {file_did}")
        ds.attach(file_did)
        self._file_parents.setdefault(file_did, []).append(dataset_did)

    # -- lookup -------------------------------------------------------------

    def did_type(self, did: DID) -> Optional[DidType]:
        if did in self._files:
            return DidType.FILE
        if did in self._datasets:
            return DidType.DATASET
        if did in self._containers:
            return DidType.CONTAINER
        return None

    def file(self, did: DID) -> FileDid:
        try:
            return self._files[did]
        except KeyError:
            raise KeyError(f"unknown file DID: {did}") from None

    def dataset(self, did: DID) -> DatasetDid:
        try:
            return self._datasets[did]
        except KeyError:
            raise KeyError(f"unknown dataset DID: {did}") from None

    def container(self, did: DID) -> ContainerDid:
        try:
            return self._containers[did]
        except KeyError:
            raise KeyError(f"unknown container DID: {did}") from None

    def dataset_files(self, did: DID) -> List[FileDid]:
        """All files of a dataset, in attachment order."""
        return [self._files[fd] for fd in self.dataset(did).file_dids]

    def resolve_files(self, did: DID) -> List[FileDid]:
        """Recursively resolve any DID to its constituent files."""
        kind = self.did_type(did)
        if kind is DidType.FILE:
            return [self._files[did]]
        if kind is DidType.DATASET:
            return self.dataset_files(did)
        if kind is DidType.CONTAINER:
            out: List[FileDid] = []
            seen: set[DID] = set()
            stack = list(reversed(self._containers[did].child_dids))
            while stack:
                child = stack.pop()
                if child in seen:
                    continue
                seen.add(child)
                ck = self.did_type(child)
                if ck is DidType.DATASET:
                    out.extend(self.dataset_files(child))
                elif ck is DidType.CONTAINER:
                    stack.extend(reversed(self._containers[child].child_dids))
                else:  # pragma: no cover - attach-time validation prevents this
                    raise KeyError(f"dangling child DID: {child}")
            return out
        raise KeyError(f"unknown DID: {did}")

    def datasets_of_file(self, file_did: DID) -> List[DID]:
        return list(self._file_parents.get(file_did, []))

    def total_bytes(self, did: DID) -> int:
        return sum(f.size for f in self.resolve_files(did))

    # -- stats ---------------------------------------------------------------

    @property
    def n_files(self) -> int:
        return len(self._files)

    @property
    def n_datasets(self) -> int:
        return len(self._datasets)

    @property
    def n_containers(self) -> int:
        return len(self._containers)

    def iter_files(self) -> Iterable[FileDid]:
        return self._files.values()

    def iter_datasets(self) -> Iterable[DatasetDid]:
        return self._datasets.values()
