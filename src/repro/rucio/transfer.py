"""Transfer requests and ground-truth transfer events.

A :class:`TransferRequest` is what the rule engine / client submits to
the FTS-like transfer service.  A :class:`TransferEvent` is the
ground-truth record of one completed (or failed) file movement — it
carries the *true* job linkage (``pandaid``) that production telemetry
lacks; the degradation layer later strips or corrupts fields to produce
the records the matching algorithms actually see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rucio.activities import TransferActivity
from repro.rucio.did import DID


@dataclass
class TransferRequest:
    """A queued file movement."""

    request_id: int
    file_did: DID
    size: int
    dest_rse: str
    activity: TransferActivity
    #: Ground-truth job linkage (0 when not job-driven).
    pandaid: int = 0
    jeditaskid: int = 0
    #: Dataset/block context carried into the event record.
    dataset_name: str = ""
    proddblock: str = ""
    submitted_at: float = 0.0
    #: Chosen by the selector when the transfer starts.
    source_rse: Optional[str] = None
    priority: int = 0
    #: Ephemeral movements (Direct-IO streams) land no replica.
    ephemeral: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("transfer size must be non-negative")


@dataclass
class TransferEvent:
    """Ground truth for one finished file transfer.

    Field names deliberately mirror the paper's Rucio metadata schema
    (`lfn`, `dataset`, `proddblock`, `scope`, `file_size`,
    `source_site`, `destination_site`, `starttime`, `endtime`) so the
    telemetry layer is a mostly-mechanical projection.
    """

    transfer_id: int
    lfn: str
    scope: str
    dataset: str
    proddblock: str
    file_size: int
    source_rse: str
    dest_rse: str
    source_site: str
    destination_site: str
    activity: TransferActivity
    submitted_at: float
    starttime: float
    endtime: float
    success: bool = True
    #: Ground-truth linkage — NOT present in degraded telemetry.
    pandaid: int = 0
    jeditaskid: int = 0

    def __post_init__(self) -> None:
        if self.endtime < self.starttime:
            raise ValueError(
                f"transfer {self.transfer_id}: endtime {self.endtime} < starttime {self.starttime}"
            )
        if self.starttime < self.submitted_at:
            raise ValueError(f"transfer {self.transfer_id}: started before submission")

    @property
    def duration(self) -> float:
        return self.endtime - self.starttime

    @property
    def queue_wait(self) -> float:
        return self.starttime - self.submitted_at

    @property
    def throughput(self) -> float:
        """Achieved bytes/second (0 for zero-duration bookkeeping events)."""
        d = self.duration
        return self.file_size / d if d > 0 else 0.0

    @property
    def is_download(self) -> bool:
        return self.activity.is_download

    @property
    def is_upload(self) -> bool:
        return self.activity.is_upload

    @property
    def is_local(self) -> bool:
        return self.source_site == self.destination_site
