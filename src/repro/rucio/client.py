"""RucioClient — the façade PanDA/Harvester talks to.

Wraps dataset discovery, stage-in (create replicas of missing input
files at the computing site), output registration, and stage-out, so
the workload side never touches catalog/replica/transfer internals.
This mirrors the coordination surface described in §2.1-2.2: "Harvester
communicates with the Rucio data management system for dataset
discovery, transfers, and output registration."
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.grid.rse import RseKind, rse_name
from repro.grid.topology import GridTopology
from repro.ids import IdFactory
from repro.rucio.activities import TransferActivity
from repro.rucio.catalog import DidCatalog
from repro.rucio.did import DID, DatasetDid, FileDid
from repro.rucio.fts import TransferGroup, TransferService
from repro.rucio.replica import ReplicaRegistry
from repro.rucio.rules import RuleEngine
from repro.rucio.transfer import TransferEvent, TransferRequest


class RucioClient:
    """High-level data-management operations for the workload layer."""

    def __init__(
        self,
        topology: GridTopology,
        catalog: DidCatalog,
        replicas: ReplicaRegistry,
        transfers: TransferService,
        rules: RuleEngine,
        ids: IdFactory,
    ) -> None:
        self.topology = topology
        self.catalog = catalog
        self.replicas = replicas
        self.transfers = transfers
        self.rules = rules
        self.ids = ids

    # -- discovery ------------------------------------------------------------

    def dataset_locations(self, dataset_did: DID) -> Set[str]:
        """Sites holding a complete, available copy of the dataset."""
        files = self.catalog.resolve_files(dataset_did)
        if not files:
            return set()
        sites = self.replicas.sites_with_file(files[0].did)
        for f in files[1:]:
            sites &= self.replicas.sites_with_file(f.did)
            if not sites:
                break
        return sites

    def partial_locations(self, dataset_did: DID) -> dict[str, int]:
        """Per-site count of available files of the dataset (brokerage input)."""
        out: dict[str, int] = {}
        for f in self.catalog.resolve_files(dataset_did):
            for site in self.replicas.sites_with_file(f.did):
                out[site] = out.get(site, 0) + 1
        return out

    def missing_files_at(self, dataset_did: DID, site: str) -> List[FileDid]:
        files = self.catalog.resolve_files(dataset_did)
        missing = self.replicas.missing_at_site([f.did for f in files], site)
        by_did = {f.did: f for f in files}
        return [by_did[m] for m in missing]

    # -- stage-in ----------------------------------------------------------------

    def stage_in(
        self,
        dataset_did: DID,
        dest_site: str,
        activity: TransferActivity,
        pandaid: int,
        jeditaskid: int,
        on_complete: Optional[Callable[[List[TransferEvent]], None]] = None,
        parallelism: Optional[int] = None,
        dest_kind: RseKind = RseKind.SCRATCHDISK,
        copy_all: bool = True,
        file_dids: Optional[List[DID]] = None,
    ) -> TransferGroup:
        """Move the job's input files to ``dest_site`` before/while it runs.

        With ``copy_all`` (the job-driven default), *every* file is
        copied to the site's scratch area: files already replicated at
        the site become **local transfers** (source site == destination
        site — the population dominating the paper's exact matches,
        Table 2a), files absent locally become remote pulls.  With
        ``copy_all=False`` only missing files move (rule-style fill to
        the DATADISK); a fully local dataset then transfers nothing and
        the group completes immediately.
        """
        if not activity.is_download:
            raise ValueError(f"stage_in requires a download activity, got {activity}")
        site = self.topology.site(dest_site)
        dest_rse = rse_name(dest_site, dest_kind)
        if file_dids is not None:
            files = [self.catalog.file(fd) for fd in file_dids]
        elif copy_all:
            files = self.catalog.resolve_files(dataset_did)
        else:
            files = self.missing_files_at(dataset_did, dest_site)
        # Job-driven copies land in the worker's scratch area and are
        # cleaned up with the job: they register no replica, and every
        # job of a task copies (or streams) its inputs again — which is
        # why the same lfn can appear in many transfer events of one
        # task, and why Algorithm 1's whole-set size check is such a
        # sharp filter.
        ephemeral = copy_all
        requests = [
            TransferRequest(
                request_id=self.ids.next_transferid(),
                file_did=f.did,
                size=f.size,
                dest_rse=dest_rse,
                activity=activity,
                pandaid=pandaid,
                jeditaskid=jeditaskid,
                dataset_name=f.dataset_name,
                proddblock=f.proddblock,
                ephemeral=ephemeral,
            )
            for f in files
        ]
        par = parallelism if parallelism is not None else site.parallel_stagein
        return self.transfers.submit_group(requests, parallelism=par, on_complete=on_complete)

    # -- output registration and stage-out ------------------------------------------

    def register_output_dataset(
        self, scope: str, jeditaskid: int, kind: str = "out"
    ) -> DatasetDid:
        """Create the (open) output dataset for a task."""
        name = self.ids.make_dataset_name(scope, jeditaskid, kind)
        ds = DatasetDid(did=DID(scope=scope, name=name), jeditaskid=jeditaskid)
        self.catalog.register_dataset(ds)
        return ds

    def register_output_file(
        self,
        dataset: DatasetDid,
        size: int,
        source_site: str,
        now: float,
        proddblock: str = "",
    ) -> FileDid:
        """Register a freshly produced file and its local replica.

        The physical file materialises on the computing site's
        SCRATCHDISK, where the pilot wrote it.
        """
        lfn = self.ids.make_lfn(dataset.did.scope)
        f = FileDid(
            did=DID(scope=dataset.did.scope, name=lfn),
            size=size,
            dataset_name=dataset.did.name,
            proddblock=proddblock or dataset.did.name,
        )
        self.catalog.register_file(f)
        self.catalog.attach_file(dataset.did, f.did)
        self.replicas.add(f.did, rse_name(source_site, RseKind.SCRATCHDISK), size, now=now)
        return f

    def stage_out(
        self,
        files: List[FileDid],
        source_site: str,
        dest_site: str,
        activity: TransferActivity,
        pandaid: int,
        jeditaskid: int,
        on_complete: Optional[Callable[[List[TransferEvent]], None]] = None,
        parallelism: int = 2,
    ) -> TransferGroup:
        """Move output files from the computing site to their destination."""
        if not activity.is_upload:
            raise ValueError(f"stage_out requires an upload activity, got {activity}")
        src_rse = rse_name(source_site, RseKind.SCRATCHDISK)
        dest_rse = rse_name(dest_site, RseKind.DATADISK)
        requests = [
            TransferRequest(
                request_id=self.ids.next_transferid(),
                file_did=f.did,
                size=f.size,
                dest_rse=dest_rse,
                activity=activity,
                pandaid=pandaid,
                jeditaskid=jeditaskid,
                dataset_name=f.dataset_name,
                proddblock=f.proddblock,
                source_rse=src_rse,
            )
            for f in files
        ]
        return self.transfers.submit_group(requests, parallelism=parallelism, on_complete=on_complete)
