"""Tape system: recall queues, drives, and the Data Carousel substrate.

Tier-0/1 custodial data lives on TAPE RSEs.  Reading it back requires a
*stage* (recall): the request queues for one of the tape library's
drives, pays a mount/seek latency, then streams at tape-drive speed
onto the site's disk buffer.  The WLCG "Data Carousel" model (§6's
iDDS discussion) organises production processing around these recalls.

Recalls emit ground-truth :class:`TransferEvent`s with the ``Staging``
activity and no job identity — in production telemetry they are
rule-driven, not job-driven, which is one more reason production
inputs never match jobs (Table 1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.grid.rse import RseKind
from repro.grid.topology import GridTopology
from repro.ids import IdFactory
from repro.rucio.activities import TransferActivity
from repro.rucio.did import DID
from repro.rucio.replica import ReplicaRegistry, ReplicaState
from repro.rucio.transfer import TransferEvent
from repro.sim.engine import Engine


@dataclass
class StageRequest:
    """One queued tape recall."""

    file_did: DID
    size: int
    tape_rse: str
    dest_rse: str
    submitted_at: float
    on_complete: Optional[Callable[[bool], None]] = None
    jeditaskid: int = 0


@dataclass
class _DrivePool:
    """Per-tape-RSE drive state."""

    n_drives: int
    busy: int = 0
    waiting: Deque[StageRequest] = field(default_factory=deque)

    @property
    def has_free_drive(self) -> bool:
        return self.busy < self.n_drives


class TapeSystem:
    """Models recall queues of every TAPE RSE on the grid.

    Parameters
    ----------
    drives_per_rse:
        Concurrent recalls a tape library sustains.
    mount_seconds:
        Fixed mount/seek latency per recall.
    drive_bandwidth:
        Sustained read rate of one drive (bytes/s).
    failure_rate:
        Probability a recall fails (bad media, library error).
    """

    def __init__(
        self,
        engine: Engine,
        topology: GridTopology,
        replicas: ReplicaRegistry,
        ids: IdFactory,
        sink: Callable[[TransferEvent], None],
        rng: np.random.Generator,
        drives_per_rse: int = 4,
        mount_seconds: float = 90.0,
        drive_bandwidth: float = 300e6,
        failure_rate: float = 0.01,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.replicas = replicas
        self.ids = ids
        self.sink = sink
        self.rng = rng
        self.drives_per_rse = int(drives_per_rse)
        self.mount_seconds = float(mount_seconds)
        self.drive_bandwidth = float(drive_bandwidth)
        self.failure_rate = float(failure_rate)
        self._pools: Dict[str, _DrivePool] = {}
        self.completed = 0
        self.failed = 0

    # -- public API ------------------------------------------------------------

    def tape_replicas_of(self, file_did: DID) -> List[str]:
        """TAPE RSEs holding an available copy of the file."""
        return [
            r.rse_name
            for r in self.replicas.available_replicas_of(file_did)
            if self.topology.rse(r.rse_name).kind is RseKind.TAPE
        ]

    def stage(
        self,
        file_did: DID,
        size: int,
        tape_rse: str,
        dest_rse: Optional[str] = None,
        on_complete: Optional[Callable[[bool], None]] = None,
        jeditaskid: int = 0,
    ) -> StageRequest:
        """Queue a recall of ``file_did`` from ``tape_rse`` onto disk.

        ``dest_rse`` defaults to the tape site's DATADISK buffer.
        ``on_complete(success)`` fires when the recall lands (or fails).
        """
        rse = self.topology.rse(tape_rse)
        if rse.kind is not RseKind.TAPE:
            raise ValueError(f"{tape_rse} is not a TAPE endpoint")
        if self.replicas.get(file_did, tape_rse) is None:
            raise KeyError(f"no tape replica of {file_did} at {tape_rse}")
        if dest_rse is None:
            dest_rse = self.topology.datadisk(rse.site_name).name
        req = StageRequest(
            file_did=file_did,
            size=int(size),
            tape_rse=tape_rse,
            dest_rse=dest_rse,
            submitted_at=self.engine.now,
            on_complete=on_complete,
            jeditaskid=jeditaskid,
        )
        pool = self._pools.setdefault(tape_rse, _DrivePool(self.drives_per_rse))
        if pool.has_free_drive:
            self._start(pool, req)
        else:
            pool.waiting.append(req)
        return req

    def queue_depth(self, tape_rse: str) -> int:
        pool = self._pools.get(tape_rse)
        return len(pool.waiting) if pool else 0

    # -- internals --------------------------------------------------------------

    def _start(self, pool: _DrivePool, req: StageRequest) -> None:
        pool.busy += 1
        started = self.engine.now
        duration = self.mount_seconds + req.size / self.drive_bandwidth
        fails = bool(self.rng.random() < self.failure_rate)
        if fails:
            duration *= float(self.rng.uniform(0.2, 1.0))

        def done() -> None:
            pool.busy -= 1
            self._finish(req, started, ok=not fails)
            while pool.waiting and pool.has_free_drive:
                self._start(pool, pool.waiting.popleft())

        self.engine.schedule_in(duration, done, label=f"tape:{req.file_did}")

    def _finish(self, req: StageRequest, started: float, ok: bool) -> None:
        now = self.engine.now
        site = self.topology.rse(req.tape_rse).site_name
        if ok:
            if self.replicas.get(req.file_did, req.dest_rse) is None:
                self.replicas.add(
                    req.file_did, req.dest_rse, req.size,
                    state=ReplicaState.AVAILABLE, now=now,
                )
            self.completed += 1
        else:
            self.failed += 1
        self.sink(TransferEvent(
            transfer_id=self.ids.next_transferid(),
            lfn=req.file_did.name,
            scope=req.file_did.scope,
            dataset="",
            proddblock="",
            file_size=req.size,
            source_rse=req.tape_rse,
            dest_rse=req.dest_rse,
            source_site=site,
            destination_site=self.topology.rse(req.dest_rse).site_name,
            activity=TransferActivity.STAGING,
            submitted_at=req.submitted_at,
            starttime=started,
            endtime=now,
            success=ok,
            jeditaskid=req.jeditaskid,
        ))
        if req.on_complete is not None:
            req.on_complete(ok)
