"""Discrete-event simulation substrate.

A minimal but complete discrete-event kernel: a monotone simulation
clock, a binary-heap event queue with stable tie-breaking, callback and
coroutine-style processes, and an execution trace.  PanDA, Rucio, and
the workload generator are all built as processes over this kernel.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Engine, Event, StopSimulation
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "SimClock",
    "Engine",
    "Event",
    "StopSimulation",
    "TraceLog",
    "TraceRecord",
]
