"""Execution tracing.

A lightweight append-only trace of simulator activity.  Components emit
``TraceRecord``s (kind + subject + payload) that downstream debugging and
the example scripts can filter; the telemetry collector is *not* built on
this (it has stronger schema guarantees) — the trace is for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: when, what kind, which subject, free-form details."""

    time: float
    kind: str
    subject: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.1f}] {self.kind:<20} {self.subject} {extras}".rstrip()


class TraceLog:
    """Bounded in-memory trace with kind-based filtering.

    ``capacity`` bounds memory for long runs; once full, the oldest half
    is dropped (coarse ring-buffer semantics are fine for a debug aid).
    """

    def __init__(self, capacity: int = 200_000, enabled: bool = True) -> None:
        self.capacity = int(capacity)
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self.dropped = 0

    def emit(self, time: float, kind: str, subject: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if len(self._records) >= self.capacity:
            keep = self.capacity // 2
            self.dropped += len(self._records) - keep
            self._records = self._records[-keep:]
        self._records.append(TraceRecord(time=time, kind=kind, subject=subject, detail=detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self._records if r.kind == kind]

    def by_subject(self, subject: str) -> List[TraceRecord]:
        return [r for r in self._records if r.subject == subject]

    def kinds(self) -> Dict[str, int]:
        """Histogram of record kinds."""
        out: Dict[str, int] = {}
        for r in self._records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def tail(self, n: int = 20) -> Iterable[TraceRecord]:
        return self._records[-n:]
