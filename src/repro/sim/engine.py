"""Discrete-event engine.

The engine owns a binary heap of timestamped events.  Each event carries
a callback; running the engine pops events in (time, sequence) order,
advances the shared clock, and invokes the callback.  Sequence numbers
make ordering stable for simultaneous events (FIFO among equals), which
keeps seeded runs bit-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.clock import SimClock


class StopSimulation(Exception):
    """Raised by a callback to end the run immediately."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap is a total order.
    ``cancelled`` events are popped and skipped rather than removed,
    the standard lazy-deletion idiom for heap schedulers.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """Event loop: schedule callbacks, run until exhaustion or a horizon."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.events_executed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule_at(self, t: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``t`` (>= now)."""
        if t < self.clock.now:
            raise ValueError(f"cannot schedule in the past: {t} < {self.clock.now}")
        ev = Event(time=t, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.clock.now + delay, callback, label)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.clock.advance_to(ev.time)
            self.events_executed += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue empties, ``until`` is reached, or a budget hits.

        Events scheduled exactly at ``until`` are executed; the clock
        finishes at ``until`` when a horizon is given (so that duration
        accounting for still-open intervals is well-defined).
        """
        executed = 0
        try:
            while True:
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        except StopSimulation:
            pass
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)

    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for ev in self._heap if not ev.cancelled)
