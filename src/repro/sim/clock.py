"""Simulation clock.

Simulation time is a float number of seconds since the scenario epoch.
Scenarios may anchor the epoch to a wall-clock date (the paper's 8-day
study starts 2025-04-01) purely for presentation; the kernel itself only
guarantees monotonicity.
"""

from __future__ import annotations

import datetime as _dt


class SimClock:
    """Monotone simulation clock.

    The clock can only be advanced by the engine; user code reads
    :attr:`now`.  An optional epoch anchors simulated seconds to a
    calendar datetime for report rendering.
    """

    def __init__(self, epoch: _dt.datetime | None = None) -> None:
        self._now = 0.0
        self.epoch = epoch or _dt.datetime(2025, 4, 1, 0, 0, 0)

    @property
    def now(self) -> float:
        """Current simulation time in seconds since the epoch."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Advance the clock to ``t``.  Rejects travel into the past."""
        if t < self._now:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = t

    def to_datetime(self, t: float | None = None) -> _dt.datetime:
        """Render a simulation instant (default: now) as a calendar datetime."""
        when = self._now if t is None else t
        return self.epoch + _dt.timedelta(seconds=when)

    def hour_of_day(self, t: float | None = None) -> float:
        """Fractional hour-of-day at ``t`` — drives diurnal load models."""
        dt = self.to_datetime(t)
        return dt.hour + dt.minute / 60.0 + dt.second / 3600.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.1f}, {self.to_datetime().isoformat()})"
