"""Brokerage: assigning jobs to sites.

The default :class:`DataLocalityBroker` implements the heuristic §3.1
describes: "in principle, it assigns computing jobs to the site that
already hosts the required input data", with availability as a
tie-breaker.  It deliberately ignores queue depth beyond hard capacity
— that blind spot is what produces the site-level queuing pile-ups of
Figs 5/8, and what :mod:`repro.coopt` later fixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.grid.topology import GridTopology
from repro.panda.job import Job
from repro.rucio.client import RucioClient


@dataclass(frozen=True)
class BrokerDecision:
    """Outcome of brokering one job."""

    site_name: str
    #: True when the chosen site holds the complete input dataset.
    data_local: bool
    #: Fraction of the input dataset's files available at the site.
    locality_fraction: float
    reason: str


class Broker(Protocol):
    """Anything that can place a job on a site."""

    def assign(self, job: Job, now: float) -> BrokerDecision: ...


class DataLocalityBroker:
    """PanDA's production heuristic: send the job to its data.

    Selection order:

    1. among sites holding the *complete* input dataset, pick the one
       with the most free slots (ties: site index);
    2. otherwise the site holding the largest *fraction* of the files;
    3. otherwise (no input data, or nothing placed yet) a
       capacity-weighted random site.

    ``locality_bias`` < 1.0 sends the occasional job to a random site
    even when local data exists — modelling user-pinned sites and
    brokerage overrides, and guaranteeing the remote-transfer
    population of Fig 6 is non-empty.
    """

    def __init__(
        self,
        topology: GridTopology,
        rucio: RucioClient,
        rng: np.random.Generator,
        locality_bias: float = 0.985,
    ) -> None:
        self.topology = topology
        self.rucio = rucio
        self.rng = rng
        self.locality_bias = float(locality_bias)
        self._compute_sites = self.topology.compute_sites()
        self._capacity_weights = np.array(
            [s.compute_slots for s in self._compute_sites], dtype=float
        )
        self._capacity_weights /= self._capacity_weights.sum()

    def _random_site(self) -> str:
        idx = int(self.rng.choice(len(self._compute_sites), p=self._capacity_weights))
        return self._compute_sites[idx].name

    def assign(self, job: Job, now: float) -> BrokerDecision:
        if job.input_dataset is None:
            return BrokerDecision(self._random_site(), False, 0.0, "no-input")

        if self.rng.random() > self.locality_bias:
            site = self._random_site()
            frac = self._locality_fraction(job, site)
            return BrokerDecision(site, frac >= 1.0, frac, "override")

        complete = self.rucio.dataset_locations(job.input_dataset)
        candidates = [s for s in complete if not self.topology.site(s).is_unknown
                      and self.topology.site(s).compute_slots > 0]
        if candidates:
            best = max(
                candidates,
                key=lambda n: (
                    self.topology.site(n).compute_slots - self.topology.site(n).running_jobs,
                    -self.topology.site(n).index,
                ),
            )
            return BrokerDecision(best, True, 1.0, "data-local")

        partial = self.rucio.partial_locations(job.input_dataset)
        partial = {
            s: c
            for s, c in partial.items()
            if not self.topology.site(s).is_unknown and self.topology.site(s).compute_slots > 0
        }
        if partial:
            n_files = len(self.rucio.catalog.resolve_files(job.input_dataset))
            best = max(partial, key=lambda s: (partial[s], -self.topology.site(s).index))
            frac = partial[best] / n_files if n_files else 0.0
            return BrokerDecision(best, False, frac, "partial-data")

        return BrokerDecision(self._random_site(), False, 0.0, "no-replica")

    def _locality_fraction(self, job: Job, site: str) -> float:
        assert job.input_dataset is not None
        files = self.rucio.catalog.resolve_files(job.input_dataset)
        if not files:
            return 1.0
        present = sum(
            1 for f in files if self.rucio.replicas.has_available_at_site(f.did, site)
        )
        return present / len(files)
