"""PanDA-like workload management substrate.

Models §2.1 of the paper: the PanDA server receives user and production
jobs, a brokerage module assigns them to sites "based on many criteria
such as job type, priority, input data location, and site availability"
(the data-locality heuristic of §3.1), and per-site Harvester/Pilot
layers stage input data through Rucio, execute payloads, and stage
outputs back.
"""

from repro.panda.job import Job, JobStatus, JobKind, DataAccessMode
from repro.panda.task import JediTask, TaskStatus
from repro.panda.errors import ErrorCode, FailureModel, PandaError
from repro.panda.queue import GlobalQueue
from repro.panda.brokerage import BrokerDecision, DataLocalityBroker
from repro.panda.harvester import Harvester
from repro.panda.server import PandaServer

__all__ = [
    "Job",
    "JobStatus",
    "JobKind",
    "DataAccessMode",
    "JediTask",
    "TaskStatus",
    "ErrorCode",
    "FailureModel",
    "PandaError",
    "GlobalQueue",
    "BrokerDecision",
    "DataLocalityBroker",
    "Harvester",
    "PandaServer",
]
