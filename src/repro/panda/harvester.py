"""Harvester + Pilot: per-site job execution.

One Harvester instance per computing site.  It orchestrates the full
per-job pipeline the paper's timing analysis depends on:

  assigned → [stage-in during queue] → ready → [wait for slot] →
  running (start_time) → payload → [stage-out during wall] →
  finished/failed (end_time)

Two behaviours reproduce the paper's anomalies:

* **stage-in patience** — when staging exceeds a patience draw, the
  pilot starts the payload with a transfer still in flight (the
  queue+wall-spanning transfers of Fig 11), at elevated failure risk;
* **staging-coupled failure** — the failure model receives the
  fraction of queuing time spent transferring, enriching failures among
  high-transfer-time jobs (Fig 9's tail).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.grid.site import Site
from repro.panda.errors import ErrorCode, FailureModel, PandaError
from repro.panda.job import DataAccessMode, Job, JobKind, JobStatus
from repro.rucio.activities import TransferActivity
from repro.rucio.client import RucioClient
from repro.rucio.transfer import TransferEvent
from repro.sim.engine import Engine
from repro.sim.tracing import TraceLog


def interval_union_length(intervals: List[tuple[float, float]], lo: float, hi: float) -> float:
    """Total length of the union of ``intervals`` clipped to [lo, hi].

    Used to compute the paper's "file transfer time": the cumulative
    duration during the queuing phase in which at least one associated
    file was actively transferring (§5.1).
    """
    if hi <= lo:
        return 0.0
    clipped = sorted(
        (max(a, lo), min(b, hi)) for a, b in intervals if min(b, hi) > max(a, lo)
    )
    total = 0.0
    cur_start: Optional[float] = None
    cur_end = 0.0
    for a, b in clipped:
        if cur_start is None:
            cur_start, cur_end = a, b
        elif a <= cur_end:
            cur_end = max(cur_end, b)
        else:
            total += cur_end - cur_start
            cur_start, cur_end = a, b
    if cur_start is not None:
        total += cur_end - cur_start
    return total


class Harvester:
    """Per-site execution orchestrator."""

    def __init__(
        self,
        site: Site,
        engine: Engine,
        rucio: RucioClient,
        failure_model: FailureModel,
        rng: np.random.Generator,
        on_job_done: Callable[[Job], None],
        trace: Optional[TraceLog] = None,
        stagein_patience_mean: float = 1800.0,
        walltime_jitter_sigma: float = 0.25,
        redundant_prefetch_prob: float = 0.04,
    ) -> None:
        self.site = site
        self.engine = engine
        self.rucio = rucio
        self.failure_model = failure_model
        self.rng = rng
        self.on_job_done = on_job_done
        self.trace = trace or TraceLog(enabled=False)
        self.stagein_patience_mean = float(stagein_patience_mean)
        self.walltime_jitter_sigma = float(walltime_jitter_sigma)
        self.redundant_prefetch_prob = float(redundant_prefetch_prob)

        self._ready: Deque[Job] = deque()
        #: stage-in transfer events per pandaid (for staging-fraction accounting)
        self._stagein_events: Dict[int, List[TransferEvent]] = {}

    # -- intake --------------------------------------------------------------

    def receive(self, job: Job) -> None:
        """Accept a brokered job and begin preparation."""
        if job.computing_site != self.site.name:
            raise ValueError(
                f"job {job.pandaid} brokered to {job.computing_site}, "
                f"delivered to {self.site.name}"
            )
        job.transition(JobStatus.ASSIGNED)
        if job.access_mode is DataAccessMode.COPY_TO_SCRATCH and job.input_dataset is not None:
            self._begin_stagein(job)
        elif (
            job.kind is JobKind.PRODUCTION
            and job.access_mode is DataAccessMode.DIRECT_LOCAL
            and job.input_file_dids
        ):
            # Production payloads read locally and must wait for the
            # carousel to land their inputs (rule-driven staging).
            self._await_local_data(job)
        else:
            # Analysis direct reads fall back to remote I/O invisibly.
            self._mark_ready(job)

    #: poll cadence while waiting for rule-driven staging
    DATA_POLL_SECONDS = 600.0
    #: give up waiting for inputs after this long
    DATA_WAIT_TIMEOUT = 48 * 3600.0

    def _await_local_data(self, job: Job) -> None:
        deadline = self.engine.now + self.DATA_WAIT_TIMEOUT

        def poll() -> None:
            missing = self.rucio.replicas.missing_at_site(
                job.input_file_dids, self.site.name)
            if not missing:
                self._mark_ready(job)
            elif self.engine.now >= deadline:
                self._fail_before_start(job, PandaError.of(ErrorCode.STAGEIN_TIMEOUT))
            else:
                self.engine.schedule_in(self.DATA_POLL_SECONDS, poll,
                                        label=f"datawait:{job.pandaid}")

        poll()

    # -- stage-in -------------------------------------------------------------

    def _begin_stagein(self, job: Job) -> None:
        patience = float(self.rng.exponential(self.stagein_patience_mean))
        state = {"done": False, "started_early": False}

        if self.rng.random() < self.redundant_prefetch_prob:
            # Occasionally a stage-in is performed twice: an early
            # prefetch whose bookkeeping was lost, followed by the
            # regular copy — the avoidable redundancy of Fig 12, whose
            # first transfer set often surfaces with an UNKNOWN
            # destination in the degraded records.
            def on_prefetched(events: List[TransferEvent]) -> None:
                self._stagein_events.setdefault(job.pandaid, []).extend(events)
                job.true_transfer_ids.extend(e.transfer_id for e in events)

            self.rucio.stage_in(
                job.input_dataset,  # type: ignore[arg-type]
                self.site.name,
                TransferActivity.ANALYSIS_DOWNLOAD,
                pandaid=job.pandaid,
                jeditaskid=job.jeditaskid,
                on_complete=on_prefetched,
                file_dids=job.input_file_dids or None,
            )

        def on_staged(events: List[TransferEvent]) -> None:
            state["done"] = True
            self._stagein_events.setdefault(job.pandaid, []).extend(events)
            job.true_transfer_ids.extend(e.transfer_id for e in events)
            failed = [e for e in events if not e.success]
            if failed and not state["started_early"]:
                self._fail_before_start(job, PandaError.of(ErrorCode.STAGEIN_FAILED))
                return
            if not state["started_early"]:
                self._mark_ready(job)

        def on_patience() -> None:
            # Staging ran long; the pilot gives up waiting and launches
            # the payload with transfers still in flight (Fig 11).
            if not state["done"] and not state["started_early"]:
                state["started_early"] = True
                self._mark_ready(job)

        self.rucio.stage_in(
            job.input_dataset,  # type: ignore[arg-type] - guarded by caller
            self.site.name,
            TransferActivity.ANALYSIS_DOWNLOAD,
            pandaid=job.pandaid,
            jeditaskid=job.jeditaskid,
            on_complete=on_staged,
            file_dids=job.input_file_dids or None,
        )
        self.engine.schedule_in(patience, on_patience, label=f"patience:{job.pandaid}")

    def _fail_before_start(self, job: Job, error: PandaError) -> None:
        """Terminal failure during preparation (never started executing)."""
        now = self.engine.now
        job.start_time = now
        job.end_time = now
        job.error_code = int(error.code)
        job.error_message = error.message
        job.stagein_busy_seconds = self._stagein_busy(job, now)
        job.transition(JobStatus.FAILED)
        self.trace.emit(now, "job.failed_stagein", str(job.pandaid), site=self.site.name)
        self.on_job_done(job)

    # -- re-brokerage (control-loop hooks) --------------------------------------

    @property
    def ready_backlog(self) -> int:
        """Jobs staged and waiting for a slot right now."""
        return len(self._ready)

    def steal_ready(self) -> Optional[Job]:
        """Pop the newest re-brokerable job off the ready queue.

        Only analysis jobs qualify: production direct-local payloads
        were brokered to their data and cannot pull inputs elsewhere.
        Stealing from the tail keeps the head-of-line job (next to get
        a slot) in place, so re-brokerage never delays work that was
        about to start.
        """
        for i in range(len(self._ready) - 1, -1, -1):
            if self._ready[i].kind is JobKind.ANALYSIS:
                job = self._ready[i]
                del self._ready[i]
                return job
        return None

    def readopt(self, job: Job) -> None:
        """Return a stolen job unchanged (re-brokerage chose this site)."""
        self._ready.append(job)
        self._try_start()

    def adopt_rebrokered(self, job: Job, prior_events: Optional[List[TransferEvent]] = None) -> None:
        """Accept a job re-brokered here while READY at another site.

        Copy-to-scratch jobs whose inputs are not available locally go
        back through stage-in (READY → ASSIGNED → READY) — paying the
        re-staging cost is exactly the trade the paper's §5.3 argues
        can still win when the origin site's queue is long.  Prior
        stage-in events ride along so queuing-phase transfer accounting
        spans the whole journey.
        """
        if job.computing_site != self.site.name:
            raise ValueError(
                f"job {job.pandaid} re-brokered to {job.computing_site}, "
                f"delivered to {self.site.name}"
            )
        if prior_events:
            self._stagein_events.setdefault(job.pandaid, []).extend(prior_events)
        needs_staging = (
            job.access_mode is DataAccessMode.COPY_TO_SCRATCH
            and job.input_dataset is not None
            and bool(self.rucio.replicas.missing_at_site(
                job.input_file_dids, self.site.name))
        )
        if needs_staging:
            job.transition(JobStatus.ASSIGNED)
            self._begin_stagein(job)
        else:
            self._ready.append(job)
            self._try_start()

    def release_stagein_events(self, pandaid: int) -> List[TransferEvent]:
        """Hand over (and forget) a job's recorded stage-in events."""
        return self._stagein_events.pop(pandaid, [])

    # -- slot management --------------------------------------------------------

    def _mark_ready(self, job: Job) -> None:
        job.transition(JobStatus.READY)
        self._ready.append(job)
        self._try_start()

    def _try_start(self) -> None:
        while self._ready and self.site.has_free_slot:
            job = self._ready.popleft()
            self._start(job)

    def _start(self, job: Job) -> None:
        now = self.engine.now
        self.site.occupy()
        job.start_time = now
        job.stagein_busy_seconds = self._stagein_busy(job, now)
        job.transition(JobStatus.RUNNING)
        self.trace.emit(now, "job.start", str(job.pandaid), site=self.site.name)

        if job.access_mode is DataAccessMode.DIRECT_IO and job.input_dataset is not None:
            # Streaming reads begin with execution and overlap it.
            self.rucio.stage_in(
                job.input_dataset,
                self.site.name,
                TransferActivity.ANALYSIS_DOWNLOAD_DIRECT_IO,
                pandaid=job.pandaid,
                jeditaskid=job.jeditaskid,
                on_complete=lambda events: job.true_transfer_ids.extend(
                    e.transfer_id for e in events
                ),
                file_dids=job.input_file_dids or None,
            )

        duration = job.payload_walltime * float(
            self.rng.lognormal(0.0, self.walltime_jitter_sigma)
        )
        self.engine.schedule_in(duration, lambda: self._payload_done(job), label=f"payload:{job.pandaid}")

    def _stagein_busy(self, job: Job, start_time: float) -> float:
        events = self._stagein_events.get(job.pandaid, [])
        intervals = [(e.starttime, e.endtime) for e in events]
        return interval_union_length(intervals, job.creation_time, start_time)

    # -- completion ----------------------------------------------------------------

    def _payload_done(self, job: Job) -> None:
        queueing = job.queuing_time or 0.0
        staging_fraction = job.stagein_busy_seconds / queueing if queueing > 0 else 0.0
        outcome = self.failure_model.draw_payload_outcome(self.rng, self.site, staging_fraction)

        if outcome.code is not ErrorCode.NONE:
            self._finish(job, outcome)
            return

        if job.uploads_output and job.noutputfilebytes > 0:
            self._begin_stageout(job)
        else:
            self._finish(job, PandaError.of(ErrorCode.NONE))

    def _begin_stageout(self, job: Job) -> None:
        dataset = self.rucio.register_output_dataset(
            job.scope, job.jeditaskid, kind=f"out.{job.pandaid}"
        )
        # One to three output files carrying the planned output volume;
        # sizes must sum exactly to noutputfilebytes (Algorithm 1's
        # upload-side size check compares that total byte-for-byte).
        n_out = int(self.rng.integers(1, min(4, max(2, job.noutputfilebytes))))
        base = job.noutputfilebytes // n_out
        sizes = [base] * n_out
        sizes[0] += job.noutputfilebytes - base * n_out
        files = [
            self.rucio.register_output_file(dataset, int(s), self.site.name, self.engine.now)
            for s in sizes
        ]
        dest = self._upload_destination(job)

        def on_uploaded(events: List[TransferEvent]) -> None:
            job.true_transfer_ids.extend(e.transfer_id for e in events)
            if any(not e.success for e in events):
                self._finish(job, PandaError.of(ErrorCode.STAGEOUT_FAILED))
            else:
                self._finish(job, PandaError.of(ErrorCode.NONE))

        activity = (
            TransferActivity.ANALYSIS_UPLOAD
            if job.kind is JobKind.ANALYSIS
            else TransferActivity.PRODUCTION_UPLOAD
        )
        self.rucio.stage_out(
            files,
            self.site.name,
            dest,
            activity,
            pandaid=job.pandaid,
            jeditaskid=job.jeditaskid,
            on_complete=on_uploaded,
        )

    def _upload_destination(self, job: Job) -> str:
        """Where outputs land: the task's fixed destination when set,
        otherwise usually the local DATADISK, sometimes the user's home
        Tier-1/2 elsewhere."""
        if job.output_destination:
            return job.output_destination
        if self.rng.random() < 0.7:
            return self.site.name
        others = [
            s.name
            for s in self.rucio.topology.real_sites()
            if s.name != self.site.name and s.tier.value <= 2
        ]
        return str(self.rng.choice(others)) if others else self.site.name

    def _finish(self, job: Job, error: PandaError) -> None:
        now = self.engine.now
        job.end_time = now
        job.error_code = int(error.code)
        job.error_message = error.message
        job.transition(JobStatus.FINISHED if error.code is ErrorCode.NONE else JobStatus.FAILED)
        self.site.release()
        self._stagein_events.pop(job.pandaid, None)
        self.trace.emit(now, "job.done", str(job.pandaid),
                        site=self.site.name, status=job.status.value)
        self.on_job_done(job)
        self._try_start()
