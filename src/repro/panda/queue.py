"""The global PanDA job queue.

Jobs land here after submission and leave when the brokerage assigns
them to a site.  Ordering is (priority desc, creation time asc,
pandaid asc) — a deterministic total order.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.panda.job import Job, JobStatus


class GlobalQueue:
    """Priority queue of DEFINED jobs awaiting brokerage."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, float, int, Job]] = []

    def push(self, job: Job) -> None:
        if job.status is not JobStatus.DEFINED:
            raise ValueError(f"job {job.pandaid} is {job.status.value}, not defined")
        heapq.heappush(self._heap, (-job.priority, job.creation_time, job.pandaid, job))

    def pop(self) -> Optional[Job]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Job]:
        return self._heap[0][3] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def drain(self, n: Optional[int] = None) -> List[Job]:
        """Pop up to ``n`` jobs (all when n is None), best first."""
        out: List[Job] = []
        while self._heap and (n is None or len(out) < n):
            job = self.pop()
            assert job is not None
            out.append(job)
        return out
