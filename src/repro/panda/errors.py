"""Error taxonomy and the failure model.

Error codes follow PanDA's pilot-error numbering style; 1305 is the
"Non-zero return code from Overlay (1)" failure from the paper's Fig 11
case study.  The failure model couples failure probability to staging
behaviour: §5.3 observes that jobs spending an extreme fraction of
their queuing time in transfers fail disproportionately often, and §5.4
notes that while causality cannot be established, prolonged transfers
plausibly increase failure likelihood.  We implement exactly that
plausible coupling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.grid.site import Site


class ErrorCode(enum.IntEnum):
    """Pilot/payload error codes (subset, PanDA-style numbering)."""

    NONE = 0
    STAGEIN_FAILED = 1099
    STAGEIN_TIMEOUT = 1104
    PAYLOAD_OVERLAY = 1305        # "Non-zero return code from Overlay (1)"
    PAYLOAD_SEGFAULT = 1201
    PAYLOAD_BAD_OUTPUT = 1137
    STAGEOUT_FAILED = 1152
    SITE_SERVICE_ERROR = 1360
    LOST_HEARTBEAT = 1361


ERROR_MESSAGES = {
    ErrorCode.NONE: "",
    ErrorCode.STAGEIN_FAILED: "Failed to stage in input file(s)",
    ErrorCode.STAGEIN_TIMEOUT: "Stage-in timed out",
    ErrorCode.PAYLOAD_OVERLAY: "Non-zero return code from Overlay (1)",
    ErrorCode.PAYLOAD_SEGFAULT: "Payload received SIGSEGV",
    ErrorCode.PAYLOAD_BAD_OUTPUT: "Payload produced inconsistent output",
    ErrorCode.STAGEOUT_FAILED: "Failed to stage out output file(s)",
    ErrorCode.SITE_SERVICE_ERROR: "Site service unavailable",
    ErrorCode.LOST_HEARTBEAT: "Lost heartbeat",
}

#: Relative frequency of payload-phase error codes when a payload fails.
PAYLOAD_ERROR_WEIGHTS = {
    ErrorCode.PAYLOAD_OVERLAY: 0.35,
    ErrorCode.PAYLOAD_SEGFAULT: 0.25,
    ErrorCode.PAYLOAD_BAD_OUTPUT: 0.2,
    ErrorCode.SITE_SERVICE_ERROR: 0.2,
}


@dataclass(frozen=True)
class PandaError:
    code: ErrorCode
    message: str

    @classmethod
    def of(cls, code: ErrorCode) -> "PandaError":
        return cls(code=code, message=ERROR_MESSAGES.get(code, code.name))


@dataclass
class FailureModel:
    """Draws job outcomes.

    ``base_failure_rate`` is the payload failure probability at a
    perfectly reliable site with instantaneous staging.
    ``staging_coupling`` scales the extra failure probability
    contributed by the fraction of queuing time spent transferring:
    a job that spent 100% of its queue in transfers gains
    ``staging_coupling`` of additional failure probability.
    """

    base_failure_rate: float = 0.14
    staging_coupling: float = 0.55
    max_failure_rate: float = 0.95

    def payload_failure_probability(self, site: Site, staging_fraction: float) -> float:
        p = self.base_failure_rate
        p += (1.0 - site.reliability)
        p += self.staging_coupling * float(np.clip(staging_fraction, 0.0, 1.0))
        return float(np.clip(p, 0.0, self.max_failure_rate))

    def draw_payload_outcome(
        self, rng: np.random.Generator, site: Site, staging_fraction: float
    ) -> PandaError:
        """NONE on success, otherwise a payload-phase error."""
        if rng.random() >= self.payload_failure_probability(site, staging_fraction):
            return PandaError.of(ErrorCode.NONE)
        codes = list(PAYLOAD_ERROR_WEIGHTS)
        weights = np.array([PAYLOAD_ERROR_WEIGHTS[c] for c in codes])
        code = codes[int(rng.choice(len(codes), p=weights / weights.sum()))]
        return PandaError.of(code)

    def stagein_error(self) -> PandaError:
        return PandaError.of(ErrorCode.STAGEIN_FAILED)

    def stageout_error(self) -> PandaError:
        return PandaError.of(ErrorCode.STAGEOUT_FAILED)
