"""The PanDA server.

Receives submitted jobs into the global queue, runs brokerage after a
short brokerage latency, and dispatches jobs to the chosen site's
Harvester.  Tracks tasks and exposes completion callbacks for the
telemetry collector.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.grid.topology import GridTopology
from repro.panda.brokerage import Broker, BrokerDecision
from repro.panda.errors import FailureModel
from repro.panda.harvester import Harvester
from repro.panda.job import Job, JobKind, JobStatus
from repro.panda.queue import GlobalQueue
from repro.panda.task import JediTask
from repro.rucio.client import RucioClient

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.ids import IdFactory
from repro.sim.engine import Engine
from repro.sim.tracing import TraceLog


class PandaServer:
    """Central workload manager (lives at Tier-0 in the real system)."""

    def __init__(
        self,
        engine: Engine,
        topology: GridTopology,
        rucio: RucioClient,
        broker: Broker,
        rng: np.random.Generator,
        failure_model: Optional[FailureModel] = None,
        trace: Optional[TraceLog] = None,
        brokerage_latency_mean: float = 60.0,
        retry_limit: int = 0,
        retry_backoff_mean: float = 900.0,
        ids: Optional["IdFactory"] = None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.rucio = rucio
        self.broker = broker
        self.rng = rng
        self.failure_model = failure_model or FailureModel()
        self.trace = trace or TraceLog(enabled=False)
        self.brokerage_latency_mean = float(brokerage_latency_mean)
        #: automatic re-attempts for failed analysis jobs (JEDI-style;
        #: 0 = disabled).  A retry is a brand-new pandaid sharing the
        #: original jeditaskid and input chunk — which is exactly why
        #: retried jobs pollute each other's matching candidates.
        self.retry_limit = int(retry_limit)
        self.retry_backoff_mean = float(retry_backoff_mean)
        self.retries_issued = 0
        self._ids = ids
        #: pandaid -> attempt number (1 = first try)
        self._attempt: Dict[int, int] = {}

        self.queue = GlobalQueue()
        self.tasks: Dict[int, JediTask] = {}
        self.jobs: Dict[int, Job] = {}
        self.decisions: Dict[int, BrokerDecision] = {}
        self._done_callbacks: List[Callable[[Job], None]] = []

        self.harvesters: Dict[str, Harvester] = {
            site.name: Harvester(
                site=site,
                engine=engine,
                rucio=rucio,
                failure_model=self.failure_model,
                rng=rng,
                on_job_done=self._job_done,
                trace=self.trace,
            )
            for site in topology.compute_sites()
        }

    # -- registration -----------------------------------------------------------

    def register_task(self, task: JediTask) -> None:
        if task.jeditaskid in self.tasks:
            raise ValueError(f"task {task.jeditaskid} already registered")
        self.tasks[task.jeditaskid] = task

    def on_job_done(self, callback: Callable[[Job], None]) -> None:
        self._done_callbacks.append(callback)

    # -- submission and brokerage --------------------------------------------------

    def submit(self, job: Job) -> None:
        """Accept a new job; brokerage runs after a short latency."""
        if job.pandaid in self.jobs:
            raise ValueError(f"duplicate pandaid {job.pandaid}")
        self.jobs[job.pandaid] = job
        task = self.tasks.get(job.jeditaskid)
        if task is not None and job not in task.jobs:
            task.add_job(job)
        self.queue.push(job)
        latency = float(self.rng.exponential(self.brokerage_latency_mean))
        self.engine.schedule_in(latency, self._brokerage_cycle, label="brokerage")

    def _brokerage_cycle(self) -> None:
        job = self.queue.pop()
        if job is None:
            return
        decision = self.broker.assign(job, self.engine.now)
        job.computing_site = decision.site_name
        self.decisions[job.pandaid] = decision
        self.trace.emit(self.engine.now, "job.brokered", str(job.pandaid),
                        site=decision.site_name, reason=decision.reason)
        self.harvesters[decision.site_name].receive(job)

    def rebroker(self, job: Job, decision: BrokerDecision) -> None:
        """Move a READY job to a new site mid-flight (control loop).

        The caller has already pulled the job off its old Harvester's
        ready queue (:meth:`Harvester.steal_ready`) and re-run
        brokerage; this re-routes it, carrying recorded stage-in events
        along so queuing-phase transfer accounting stays complete.
        """
        old = self.harvesters.get(job.computing_site)
        prior = old.release_stagein_events(job.pandaid) if old is not None else []
        job.computing_site = decision.site_name
        self.decisions[job.pandaid] = decision
        self.trace.emit(self.engine.now, "job.rebrokered", str(job.pandaid),
                        site=decision.site_name, reason=decision.reason)
        self.harvesters[decision.site_name].adopt_rebrokered(job, prior)

    def _job_done(self, job: Job) -> None:
        for cb in self._done_callbacks:
            cb(job)
        self._maybe_retry(job)

    def _maybe_retry(self, job: Job) -> None:
        """Re-attempt a failed analysis job as a fresh pandaid."""
        if self.retry_limit <= 0 or job.succeeded or job.kind is not JobKind.ANALYSIS:
            return
        attempt = self._attempt.get(job.pandaid, 1)
        if attempt > self.retry_limit:
            return
        backoff = float(self.rng.exponential(self.retry_backoff_mean))
        self.retries_issued += 1

        def submit_retry() -> None:
            retry = Job(
                pandaid=self._next_retry_pandaid(),
                jeditaskid=job.jeditaskid,
                kind=job.kind,
                access_mode=job.access_mode,
                input_dataset=job.input_dataset,
                input_file_dids=list(job.input_file_dids),
                ninputfilebytes=job.ninputfilebytes,
                noutputfilebytes=job.noutputfilebytes,
                creation_time=self.engine.now,
                scope=job.scope,
                priority=job.priority,
                payload_walltime=job.payload_walltime,
                uploads_output=job.uploads_output,
                output_destination=job.output_destination,
            )
            self._attempt[retry.pandaid] = attempt + 1
            self.submit(retry)

        self.engine.schedule_in(backoff, submit_retry, label=f"retry:{job.pandaid}")

    def _next_retry_pandaid(self) -> int:
        """Retries draw fresh pandaids from the shared factory when one
        is wired in (guaranteeing global uniqueness), otherwise from a
        reserved high range."""
        if self._ids is not None:
            return self._ids.next_pandaid()
        self._retry_seq = getattr(self, "_retry_seq", 7_000_000_000) + 1
        return self._retry_seq

    # -- introspection ------------------------------------------------------------

    def terminal_jobs(self) -> List[Job]:
        return [j for j in self.jobs.values() if j.status.is_terminal]

    def running_count(self) -> int:
        return sum(1 for j in self.jobs.values() if j.status is JobStatus.RUNNING)

    def success_fraction(self) -> float:
        terminal = self.terminal_jobs()
        if not terminal:
            return 0.0
        return sum(1 for j in terminal if j.succeeded) / len(terminal)
