"""Jobs and their lifecycle.

Time semantics follow §4.2 exactly: a job's *lifetime* runs from
creation to completion; *queuing time* is creation → recorded start of
execution; *wall time* is start → completion.  Stage-in transfers fall
in the queuing phase (except Direct IO, which overlaps execution);
stage-out happens during wall time, before the recorded end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.rucio.did import DID


class JobStatus(enum.Enum):
    DEFINED = "defined"        # created, awaiting brokerage
    ASSIGNED = "assigned"      # site chosen, staging may be in flight
    READY = "ready"            # inputs staged, waiting for a slot
    RUNNING = "running"        # payload executing
    FINISHED = "finished"      # success
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (JobStatus.FINISHED, JobStatus.FAILED)


class JobKind(enum.Enum):
    ANALYSIS = "analysis"
    PRODUCTION = "production"


class DataAccessMode(enum.Enum):
    """How a job reads its input data.

    * ``DIRECT_LOCAL`` — posix/xrootd read from local storage; produces
      **no transfer events** (the dominant, invisible mode that keeps the
      paper's matched-job fraction below 1%).
    * ``COPY_TO_SCRATCH`` — files are copied to the worker before the
      payload starts (*Analysis Download*; local copy when data is
      already at the site, remote pull otherwise).
    * ``DIRECT_IO`` — files stream while the payload runs
      (*Analysis Download Direct IO*).
    """

    DIRECT_LOCAL = "direct_local"
    COPY_TO_SCRATCH = "copy_to_scratch"
    DIRECT_IO = "direct_io"


@dataclass
class Job:
    """One PanDA job (ground truth side)."""

    pandaid: int
    jeditaskid: int
    kind: JobKind
    access_mode: DataAccessMode
    input_dataset: Optional[DID]
    #: The job's slice of the task's input dataset (JEDI splits a task
    #: into jobs by input files; empty = whole dataset).
    input_file_dids: List[DID]
    ninputfilebytes: int
    #: Planned output volume; realised at completion.
    noutputfilebytes: int
    creation_time: float
    scope: str = "user.anon"
    priority: int = 1000
    #: Expected payload CPU seconds (drawn by the generator).
    payload_walltime: float = 3600.0
    #: Whether outputs are uploaded to another RSE after execution.
    uploads_output: bool = False
    #: Fixed upload destination site ("" = let the pilot choose).
    output_destination: str = ""

    # -- lifecycle state, mutated by the server/pilot ------------------------
    status: JobStatus = JobStatus.DEFINED
    computing_site: str = ""
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    error_code: int = 0
    error_message: str = ""
    #: Ground-truth ids of the transfer events this job caused.
    true_transfer_ids: List[int] = field(default_factory=list)
    #: Seconds of queuing time during which >=1 stage-in transfer was active.
    stagein_busy_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.ninputfilebytes < 0 or self.noutputfilebytes < 0:
            raise ValueError(f"job {self.pandaid}: negative byte counts")
        if self.payload_walltime <= 0:
            raise ValueError(f"job {self.pandaid}: payload walltime must be positive")

    # -- derived times (defined only once terminal) ---------------------------

    @property
    def queuing_time(self) -> Optional[float]:
        """Creation → start of execution (None until started)."""
        if self.start_time is None:
            return None
        return self.start_time - self.creation_time

    @property
    def wall_time(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def lifetime(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.creation_time

    @property
    def succeeded(self) -> bool:
        return self.status is JobStatus.FINISHED

    # -- state transitions, with legality checks ------------------------------

    # READY -> ASSIGNED is the re-brokerage path: the control loop may
    # pull a ready-but-queued job off an overloaded site and send it
    # back through staging at a better one (DESIGN.md §13).
    _LEGAL = {
        JobStatus.DEFINED: {JobStatus.ASSIGNED, JobStatus.FAILED},
        JobStatus.ASSIGNED: {JobStatus.READY, JobStatus.FAILED},
        JobStatus.READY: {JobStatus.RUNNING, JobStatus.ASSIGNED, JobStatus.FAILED},
        JobStatus.RUNNING: {JobStatus.FINISHED, JobStatus.FAILED},
        JobStatus.FINISHED: set(),
        JobStatus.FAILED: set(),
    }

    def transition(self, new: JobStatus) -> None:
        if new not in self._LEGAL[self.status]:
            raise RuntimeError(
                f"job {self.pandaid}: illegal transition {self.status.value} -> {new.value}"
            )
        self.status = new
