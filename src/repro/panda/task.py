"""JEDI tasks.

A task groups jobs sharing an input dataset and configuration; Fig 9 of
the paper classifies matched jobs by the four (job status, task status)
combinations, so task status must be a first-class derived quantity: a
task fails when more than ``failure_threshold`` of its terminal jobs
failed (ATLAS retries are abstracted away — the paper's analysis sees
only final statuses).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.panda.job import DataAccessMode, Job, JobKind, JobStatus
from repro.rucio.did import DID


class TaskStatus(enum.Enum):
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class JediTask:
    """One JEDI task: shared dataset, shared access mode, many jobs."""

    jeditaskid: int
    kind: JobKind
    scope: str
    access_mode: DataAccessMode
    input_dataset: Optional[DID] = None
    jobs: List[Job] = field(default_factory=list)
    #: task registration time (simulation seconds)
    created_at: float = 0.0
    #: Fraction of failed terminal jobs above which the task is FAILED.
    failure_threshold: float = 0.5
    #: Destination site for output uploads (empty = keep local).
    output_destination: str = ""

    def add_job(self, job: Job) -> None:
        if job.jeditaskid != self.jeditaskid:
            raise ValueError(
                f"job {job.pandaid} belongs to task {job.jeditaskid}, not {self.jeditaskid}"
            )
        self.jobs.append(job)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    def terminal_jobs(self) -> List[Job]:
        return [j for j in self.jobs if j.status.is_terminal]

    def status(self) -> TaskStatus:
        """Derived task status.

        RUNNING until every job is terminal; then FINISHED unless the
        failed fraction exceeds the threshold.
        """
        if not self.jobs:
            return TaskStatus.RUNNING
        terminal = self.terminal_jobs()
        if len(terminal) < len(self.jobs):
            return TaskStatus.RUNNING
        failed = sum(1 for j in terminal if j.status is JobStatus.FAILED)
        frac = failed / len(terminal)
        return TaskStatus.FAILED if frac > self.failure_threshold else TaskStatus.FINISHED

    def failed_fraction(self) -> Optional[float]:
        terminal = self.terminal_jobs()
        if not terminal:
            return None
        return sum(1 for j in terminal if j.status is JobStatus.FAILED) / len(terminal)
