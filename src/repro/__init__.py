"""repro — reproduction of "Data Management System Analysis for
Distributed Computing Workloads" (SC Workshops '25).

The package simulates a WLCG-like grid running PanDA-style workload
management over Rucio-style data management, degrades the resulting
telemetry the way production metadata is degraded, and implements the
paper's contribution: file-level matching of jobs to transfer events
(Algorithm 1, RM1, RM2) plus the analyses and anomaly detectors built
on it.

Quickstart::

    from repro.scenarios import EightDayStudy, EightDayConfig

    study = EightDayStudy(EightDayConfig(days=2.0)).run()
    report = study.matching_report()
    print(report["exact"].n_matched_jobs, "jobs matched exactly")

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

__version__ = "1.0.0"

from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.scenarios.runtime import HarnessConfig, SimulationHarness

__all__ = [
    "__version__",
    "EightDayConfig",
    "EightDayStudy",
    "HarnessConfig",
    "SimulationHarness",
]
