"""MatchFrame: the structure-of-arrays lowering of a match result.

Everything the §5 analyses consume from a :class:`MatchResult` — job
identity and lifecycle times, status codes, per-job transfer counts and
byte totals, and the ragged job → transfers mapping — lowered once into
flat NumPy arrays with a CSR layout (``job_offsets`` plus per-entry
columns).  The analyses then run as kernels over these arrays instead
of walking ``JobMatch`` objects one at a time, while the per-row
dataclasses stay available as thin views materialized on demand.

Two builders share the layout:

* :meth:`MatchFrame.from_candidates` — the columnar engine's path: the
  final ``(cand_job, cand_tpos)`` arrays it already computed *are* the
  ragged mapping, so the frame is a handful of NumPy gathers from the
  window's packs.  The engine attaches this eagerly, which also means
  parallel sweeps build frames inside the worker processes.
* :meth:`MatchFrame.from_matches` — row fallback, lowering the
  ``JobMatch`` list the same way the packs lower records.

The frame is self-contained (compact gathered arrays, not views into
the full window packs), so pickling a result across the process pool
ships only the matched slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.interner import StringInterner
from repro.columnar.kernels import first_occurrences, group_boundaries
from repro.columnar.packs import WindowColumns
from repro.core.matching.base import JobMatch, TransferClass
from repro.telemetry.records import UNKNOWN_SITE

#: Transfer-class code domain: positions into this tuple are the
#: ``class_code`` values stored per job (Table 2b's three buckets).
CLASS_ORDER: Tuple[TransferClass, ...] = (
    TransferClass.ALL_LOCAL,
    TransferClass.ALL_REMOTE,
    TransferClass.MIXED,
)


@dataclass
class MatchFrame:
    """Columnar view of one matcher's matched jobs and their transfers.

    Per-job arrays are parallel to each other (one row per matched job,
    in match order); per-entry arrays are parallel to the flattened
    transfer lists, segmented by ``job_offsets`` (CSR: job ``i`` owns
    entries ``job_offsets[i]:job_offsets[i + 1]``).
    """

    interner: StringInterner

    # -- per matched job -----------------------------------------------------
    pandaid: np.ndarray  # int64
    status: np.ndarray  # int64 codes
    taskstatus: np.ndarray  # int64 codes
    site: np.ndarray  # int64 codes
    creation: np.ndarray  # float64
    start: np.ndarray  # float64, NaN = never started
    end: np.ndarray  # float64, NaN = still running
    n_transfers: np.ndarray  # int64
    n_local: np.ndarray  # int64
    transfer_bytes: np.ndarray  # int64 (exact integer byte totals)
    class_code: np.ndarray  # int64, position into CLASS_ORDER

    # -- CSR ragged mapping to the transfer entries --------------------------
    job_offsets: np.ndarray  # int64, len == n_jobs + 1

    # -- per transfer entry --------------------------------------------------
    t_row_id: np.ndarray  # int64 (may repeat across jobs)
    t_start: np.ndarray  # float64
    t_end: np.ndarray  # float64
    t_size: np.ndarray  # int64
    t_local: np.ndarray  # bool

    #: Positions into the window's ``TransferPack`` when engine-built
    #: (None on the row fallback, which has no pack to point into).
    transfer_rows: Optional[np.ndarray] = None

    _row_first: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Cached TimingTable (owned by ``repro.core.analysis.queuing``);
    #: living here keeps the one-lowering-per-result contract without a
    #: weak-key side table (MatchResult is unhashable by design).
    _timing: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.pandaid)

    @property
    def n_entries(self) -> int:
        return len(self.t_row_id)

    # -- builders ------------------------------------------------------------

    @classmethod
    def from_matches(
        cls, matches: Sequence[JobMatch], interner: Optional[StringInterner] = None
    ) -> "MatchFrame":
        """Row fallback: lower a ``JobMatch`` list into the frame layout."""
        it = interner if interner is not None else StringInterner()
        kept = [m for m in matches if m.transfers]  # mirrors matched_jobs()
        jobs = [m.job for m in kept]
        counts = np.array([len(m.transfers) for m in kept], dtype=np.int64)
        flat = [t for m in kept for t in m.transfers]
        n_local = np.array([m.n_local for m in kept], dtype=np.int64)
        n_transfers = counts
        return cls(
            interner=it,
            pandaid=np.array([j.pandaid for j in jobs], dtype=np.int64),
            status=it.encode([j.status for j in jobs]),
            taskstatus=it.encode([j.taskstatus for j in jobs]),
            site=it.encode([j.computingsite for j in jobs]),
            creation=np.array([j.creationtime for j in jobs], dtype=np.float64),
            start=np.array(
                [np.nan if j.starttime is None else j.starttime for j in jobs],
                dtype=np.float64,
            ),
            end=np.array(
                [np.nan if j.endtime is None else j.endtime for j in jobs],
                dtype=np.float64,
            ),
            n_transfers=n_transfers,
            n_local=n_local,
            transfer_bytes=_segment_int_sums(
                np.array([t.file_size for t in flat], dtype=np.int64), counts
            ),
            class_code=_class_codes(n_local, n_transfers),
            job_offsets=_offsets(counts),
            t_row_id=np.array([t.row_id for t in flat], dtype=np.int64),
            t_start=np.array([t.starttime for t in flat], dtype=np.float64),
            t_end=np.array([t.endtime for t in flat], dtype=np.float64),
            t_size=np.array([t.file_size for t in flat], dtype=np.int64),
            t_local=np.array([t.is_local for t in flat], dtype=bool),
        )

    @classmethod
    def from_candidates(
        cls, columns: WindowColumns, cand_job: np.ndarray, cand_tpos: np.ndarray
    ) -> "MatchFrame":
        """Engine path: gather the frame straight from the window packs.

        ``cand_job`` (non-decreasing job positions) and ``cand_tpos``
        (transfer pack positions) are the columnar engine's final
        filtered candidate arrays — i.e. exactly the matched ragged
        mapping, in the row engine's enumeration order.
        """
        jp, tp, it = columns.jobs, columns.transfers, columns.interner
        starts = group_boundaries(cand_job)
        job_rows = cand_job[starts]
        counts = np.diff(np.append(starts, len(cand_job))).astype(np.int64)

        src = tp.src[cand_tpos]
        dst = tp.dst[cand_tpos]
        # TransferRecord.is_local in code space: the empty and UNKNOWN
        # labels may be absent from the vocabulary (code_of -> -1),
        # which no real code equals, so the comparison stays correct.
        t_local = (
            (src == dst)
            & (src != it.code_of(UNKNOWN_SITE))
            & (src != it.code_of(""))
        )
        t_size = tp.size[cand_tpos]
        n_local = _segment_int_sums(t_local.astype(np.int64), counts)
        return cls(
            interner=it,
            pandaid=jp.pandaid[job_rows].copy(),
            status=jp.status[job_rows].copy(),
            taskstatus=jp.taskstatus[job_rows].copy(),
            site=jp.site[job_rows].copy(),
            creation=jp.creation[job_rows].copy(),
            start=jp.start[job_rows].copy(),
            end=jp.endtime[job_rows].copy(),
            n_transfers=counts,
            n_local=n_local,
            transfer_bytes=_segment_int_sums(t_size, counts),
            class_code=_class_codes(n_local, counts),
            job_offsets=_offsets(counts),
            t_row_id=tp.row_id[cand_tpos].copy(),
            t_start=tp.starttime[cand_tpos].copy(),
            t_end=tp.endtime[cand_tpos].copy(),
            t_size=t_size.copy(),
            t_local=t_local,
            transfer_rows=cand_tpos.copy(),
        )

    # -- pair/transfer-level summaries ----------------------------------------

    def _first_positions(self) -> np.ndarray:
        """First-occurrence positions of each distinct ``t_row_id``."""
        if self._row_first is None:
            _, self._row_first = first_occurrences(self.t_row_id)
        return self._row_first

    def matched_row_ids(self) -> np.ndarray:
        """Distinct matched transfer row ids (sorted)."""
        return self.t_row_id[np.sort(self._first_positions())]

    @property
    def n_matched_transfers(self) -> int:
        return len(self._first_positions())

    def local_remote_split(self) -> Tuple[int, int]:
        """(local, remote) over distinct transfers, first occurrence wins."""
        first = self._first_positions()
        local = int(self.t_local[first].sum())
        return local, len(first) - local

    def class_counts(self) -> np.ndarray:
        """Matched-job counts per transfer class, indexed by CLASS_ORDER."""
        return np.bincount(self.class_code, minlength=len(CLASS_ORDER))

    def jobs_by_class(self) -> dict:
        counts = self.class_counts()
        return {c: int(counts[i]) for i, c in enumerate(CLASS_ORDER)}


def _offsets(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


def _segment_int_sums(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment int64 sums (exact; integer addition is associative)."""
    out = np.zeros(len(counts), dtype=np.int64)
    if len(values):
        seg = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        np.add.at(out, seg, values)
    return out


def _class_codes(n_local: np.ndarray, n_transfers: np.ndarray) -> np.ndarray:
    """Table-2b class per job: all-local, all-remote, else mixed."""
    return np.where(
        n_local == n_transfers, 0, np.where(n_local == 0, 1, 2)
    ).astype(np.int64)
