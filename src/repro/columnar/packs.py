"""Structure-of-arrays column packs.

A *pack* is the columnar lowering of one record list: one NumPy array
per field Algorithm 1 or the §5 analyses touch, with string fields
dictionary-encoded through a shared
:class:`~repro.columnar.interner.StringInterner`.  Beyond the join
attributes, jobs carry their lifecycle timestamps and status codes and
transfers their end times and activity codes, so the analysis dataplane
(:mod:`repro.columnar.frame`) can run entirely on the same lowering.
Record objects stay the source of truth — packs hold positions into the
original lists, and match results are assembled back from the records —
so the lowering is an acceleration structure, never a second schema.

Numeric domains: ids and byte counts must fit ``int64``; timestamps are
``float64``; a job with no ``endtime`` lowers to ``NaN`` so the strict
``starttime < endtime`` comparison is vacuously false, exactly like the
row engine's ``is not None`` guard.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.columnar.interner import StringInterner
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord


class _PackRows:
    """Row-gather support shared by the pack dataclasses."""

    def take(self, rows: np.ndarray):
        """A new pack holding ``rows`` (NumPy fancy-index per column).

        This is how window packs are cut from full-table packs: the
        metastore's doc ids double as pack row positions, so a window
        is one gather per column — no per-record Python work.  ``rows``
        must be sorted and unique (id arrays from the query layer are),
        which lets a full-table selection short-circuit to ``self`` —
        the common case when an analysis replays the whole campaign.
        """
        fields = dataclasses.fields(self)
        if len(rows) == len(getattr(self, fields[0].name)):
            return self
        return type(self)(**{f.name: getattr(self, f.name)[rows] for f in fields})

    def gather(self, rows: np.ndarray):
        """Like :meth:`take` but for arbitrary (unsorted, repeatable)
        row orders — no identity shortcut, so the output rows are in
        exactly the order asked for.  The streaming delta matcher cuts
        micro-batch packs in event-sequence order, which need not be
        storage order."""
        fields = dataclasses.fields(self)
        return type(self)(**{f.name: getattr(self, f.name)[rows] for f in fields})

    def concat(self, other):
        """A new pack with ``other``'s rows appended (same field set).

        Column-wise ``np.concatenate`` — the append path of the
        streaming ingest, where a micro-batch's freshly lowered pack
        extends the full-table pack without re-lowering history.
        """
        fields = dataclasses.fields(self)
        return type(self)(**{
            f.name: np.concatenate([getattr(self, f.name), getattr(other, f.name)])
            for f in fields
        })


@dataclass
class JobPack(_PackRows):
    """Columns of a job window (parallel to the source record list)."""

    pandaid: np.ndarray  # int64
    jeditaskid: np.ndarray  # int64
    site: np.ndarray  # int64 codes
    endtime: np.ndarray  # float64, NaN = still running / unknown
    nin: np.ndarray  # int64 ninputfilebytes
    nout: np.ndarray  # int64 noutputfilebytes
    status: np.ndarray  # int64 codes
    taskstatus: np.ndarray  # int64 codes
    creation: np.ndarray  # float64
    start: np.ndarray  # float64, NaN = never started

    def __len__(self) -> int:
        return len(self.pandaid)


@dataclass
class FilePack(_PackRows):
    """Columns of the PanDA file rows for one window."""

    pandaid: np.ndarray  # int64
    jeditaskid: np.ndarray  # int64
    lfn: np.ndarray  # int64 codes
    dataset: np.ndarray  # int64 codes
    proddblock: np.ndarray  # int64 codes
    scope: np.ndarray  # int64 codes
    size: np.ndarray  # int64

    def __len__(self) -> int:
        return len(self.pandaid)


@dataclass
class TransferPack(_PackRows):
    """Columns of the Rucio transfer events for one window."""

    row_id: np.ndarray  # int64
    jeditaskid: np.ndarray  # int64 (0 = no task identity)
    lfn: np.ndarray  # int64 codes
    dataset: np.ndarray  # int64 codes
    proddblock: np.ndarray  # int64 codes
    scope: np.ndarray  # int64 codes
    size: np.ndarray  # int64
    src: np.ndarray  # int64 codes
    dst: np.ndarray  # int64 codes
    is_download: np.ndarray  # bool
    is_upload: np.ndarray  # bool
    starttime: np.ndarray  # float64
    endtime: np.ndarray  # float64
    activity: np.ndarray  # int64 codes

    def __len__(self) -> int:
        return len(self.row_id)


def lower_jobs(jobs: Sequence[JobRecord], interner: StringInterner) -> JobPack:
    return JobPack(
        pandaid=np.array([j.pandaid for j in jobs], dtype=np.int64),
        jeditaskid=np.array([j.jeditaskid for j in jobs], dtype=np.int64),
        site=interner.encode([j.computingsite for j in jobs]),
        endtime=np.array(
            [np.nan if j.endtime is None else j.endtime for j in jobs], dtype=np.float64
        ),
        nin=np.array([j.ninputfilebytes for j in jobs], dtype=np.int64),
        nout=np.array([j.noutputfilebytes for j in jobs], dtype=np.int64),
        status=interner.encode([j.status for j in jobs]),
        taskstatus=interner.encode([j.taskstatus for j in jobs]),
        creation=np.array([j.creationtime for j in jobs], dtype=np.float64),
        start=np.array(
            [np.nan if j.starttime is None else j.starttime for j in jobs],
            dtype=np.float64,
        ),
    )


def lower_files(files: Sequence[FileRecord], interner: StringInterner) -> FilePack:
    return FilePack(
        pandaid=np.array([f.pandaid for f in files], dtype=np.int64),
        jeditaskid=np.array([f.jeditaskid for f in files], dtype=np.int64),
        lfn=interner.encode([f.lfn for f in files]),
        dataset=interner.encode([f.dataset for f in files]),
        proddblock=interner.encode([f.proddblock for f in files]),
        scope=interner.encode([f.scope for f in files]),
        size=np.array([f.file_size for f in files], dtype=np.int64),
    )


def lower_transfers(
    transfers: Sequence[TransferRecord], interner: StringInterner
) -> TransferPack:
    return TransferPack(
        row_id=np.array([t.row_id for t in transfers], dtype=np.int64),
        jeditaskid=np.array([t.jeditaskid for t in transfers], dtype=np.int64),
        lfn=interner.encode([t.lfn for t in transfers]),
        dataset=interner.encode([t.dataset for t in transfers]),
        proddblock=interner.encode([t.proddblock for t in transfers]),
        scope=interner.encode([t.scope for t in transfers]),
        size=np.array([t.file_size for t in transfers], dtype=np.int64),
        src=interner.encode([t.source_site for t in transfers]),
        dst=interner.encode([t.destination_site for t in transfers]),
        is_download=np.array([t.is_download for t in transfers], dtype=bool),
        is_upload=np.array([t.is_upload for t in transfers], dtype=bool),
        starttime=np.array([t.starttime for t in transfers], dtype=np.float64),
        endtime=np.array([t.endtime for t in transfers], dtype=np.float64),
        activity=interner.encode([t.activity for t in transfers]),
    )


@dataclass
class WindowColumns:
    """All three packs of one window, lowered through one interner."""

    interner: StringInterner
    jobs: JobPack
    files: FilePack
    transfers: TransferPack

    @classmethod
    def lower(
        cls,
        jobs: Sequence[JobRecord],
        files: Sequence[FileRecord],
        transfers: Sequence[TransferRecord],
        interner: Optional[StringInterner] = None,
    ) -> "WindowColumns":
        it = interner if interner is not None else StringInterner()
        return cls(
            interner=it,
            jobs=lower_jobs(jobs, it),
            files=lower_files(files, it),
            transfers=lower_transfers(transfers, it),
        )

    def take(
        self,
        job_rows: np.ndarray,
        file_rows: np.ndarray,
        transfer_rows: np.ndarray,
    ) -> "WindowColumns":
        """Cut a window's columns out of full-table columns by row ids."""
        return WindowColumns(
            interner=self.interner,
            jobs=self.jobs.take(job_rows),
            files=self.files.take(file_rows),
            transfers=self.transfers.take(transfer_rows),
        )

    def gather(
        self,
        job_rows: np.ndarray,
        file_rows: np.ndarray,
        transfer_rows: np.ndarray,
    ) -> "WindowColumns":
        """Cut columns in an arbitrary row order (no sortedness contract)."""
        return WindowColumns(
            interner=self.interner,
            jobs=self.jobs.gather(job_rows),
            files=self.files.gather(file_rows),
            transfers=self.transfers.gather(transfer_rows),
        )

    def extend(
        self,
        jobs: Sequence[JobRecord],
        files: Sequence[FileRecord],
        transfers: Sequence[TransferRecord],
    ) -> "WindowColumns":
        """A new ``WindowColumns`` with the delta records appended.

        Only the delta is lowered (through the *same* interner, so
        codes stay stable across batches); existing columns are reused
        by concatenation.  This keeps streaming ingest linear in the
        event count rather than re-lowering the whole history per
        micro-batch.
        """
        return WindowColumns(
            interner=self.interner,
            jobs=self.jobs.concat(lower_jobs(jobs, self.interner)),
            files=self.files.concat(lower_files(files, self.interner)),
            transfers=self.transfers.concat(lower_transfers(transfers, self.interner)),
        )
