"""String interning for the columnar engine.

Algorithm 1 joins on string attributes (``lfn``, ``dataset``,
``proddblock``, ``scope``) and filters on site names.  Comparing Python
strings per candidate is the row engine's single largest cost after the
loop itself; the columnar engine therefore dictionary-encodes every
string through a :class:`StringInterner` shared across collections, so
equality checks lower to ``int64`` comparisons and NumPy can vectorize
them.

One interner is shared per source (see
:meth:`repro.metastore.opensearch.OpenSearchLike.warm_interner`): codes
are assigned once at ingest and every window lowering afterwards is a
pure dictionary lookup, with identical codes across overlapping
windows.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np


class StringInterner:
    """Bijective ``str <-> int64`` dictionary encoding.

    Codes are dense (``0..len-1``) and append-only: a string keeps its
    code for the interner's lifetime, so arrays encoded at different
    times stay comparable.
    """

    __slots__ = ("_codes", "_strings")

    def __init__(self) -> None:
        self._codes: Dict[str, int] = {}
        self._strings: List[str] = []

    def intern(self, value: str) -> int:
        """Code for ``value``, assigning the next free code if unseen."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._strings)
            self._codes[value] = code
            self._strings.append(value)
        return code

    def encode(self, values: Sequence[str]) -> np.ndarray:
        """Vector of codes for a column of strings (interning unseen ones)."""
        codes = self._codes
        strings = self._strings
        out = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            code = codes.get(value)
            if code is None:
                code = len(strings)
                codes[value] = code
                strings.append(value)
            out[i] = code
        return out

    def decode(self, code: int) -> str:
        return self._strings[code]

    def code_of(self, value: str) -> int:
        """Code for ``value`` or -1 when it was never interned."""
        return self._codes.get(value, -1)

    @property
    def strings(self) -> List[str]:
        """The vocabulary, indexable by code (do not mutate)."""
        return self._strings

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def __iter__(self) -> Iterator[str]:
        return iter(self._strings)
