"""Vectorized analysis kernels shared by the MatchFrame dataplane.

These are the array primitives the §5 analyses lower to: segmented
prefix maxima over CSR ragged arrays, the sorted-boundary interval
union behind the paper's "file transfer time", first-occurrence
deduplication, and sequential-order bucket accumulation.

Bit-identity with the row implementations is the contract, so every
kernel reproduces the reference code's *accumulation order*, not just
its mathematical value:

* merged-run lengths are summed per job with ``np.add.at`` — an
  unbuffered, in-order accumulation that performs the same sequence of
  float additions as the row loop's ``total += cur_end - cur_start``;
* bucket weights use ``np.bincount`` whose inner loop adds weights in
  input order, like ``buckets[k] += size`` record by record;
* maxima (``np.maximum.reduceat``, the segmented scan) are exact — no
  rounding is involved in ``max`` — so run boundaries match the row
  merge exactly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.obs import instrument_kernel


@instrument_kernel("segmented_cummax", rows=lambda values, seg_id: len(values))
def segmented_cummax(values: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Per-segment running maximum (segments = equal ``seg_id`` runs).

    ``seg_id`` must be non-decreasing with each segment contiguous.
    Hillis-Steele doubling: pass ``k`` combines each position with the
    value ``2**k`` behind it when both fall in the same segment.  After
    pass ``k`` position ``i`` covers ``max(values[j..i])`` with
    ``j = max(segment_start(i), i - 2**k + 1)``, so ``log2(n)`` passes
    yield the exact per-segment prefix maximum — no Python loop over
    elements, and ``max`` is exact on floats.
    """
    out = values.astype(np.float64, copy=True)
    n = len(out)
    shift = 1
    while shift < n:
        prev = np.where(seg_id[shift:] == seg_id[:-shift], out[:-shift], -np.inf)
        np.maximum(out[shift:], prev, out=out[shift:])
        shift <<= 1
    return out


@instrument_kernel(
    "interval_union_lengths",
    rows=lambda lo, hi, job_offsets, t_start, t_end: len(t_start),
)
def interval_union_lengths(
    lo: np.ndarray,
    hi: np.ndarray,
    job_offsets: np.ndarray,
    t_start: np.ndarray,
    t_end: np.ndarray,
) -> np.ndarray:
    """Per-job union length of transfer intervals clipped to [lo, hi).

    The vectorized counterpart of
    :func:`repro.panda.harvester.interval_union_length` applied to every
    job of a CSR ragged layout at once: clip, drop empty clips, sort
    each job's intervals by ``(start, end)``, split them into merged
    runs where a start exceeds the running maximum of previous ends,
    and accumulate ``run_max_end - run_start`` per job **in run order**
    (``np.add.at``), reproducing the row implementation's float
    accumulation bit for bit.  ``hi`` may be NaN (job never started):
    every comparison is then false and the job's total stays 0.0.
    """
    n_jobs = len(lo)
    totals = np.zeros(n_jobs, dtype=np.float64)
    if len(t_start) == 0 or n_jobs == 0:
        return totals
    counts = np.diff(job_offsets)
    job_of = np.repeat(np.arange(n_jobs, dtype=np.int64), counts)
    s = np.maximum(t_start, lo[job_of])
    e = np.minimum(t_end, hi[job_of])
    with np.errstate(invalid="ignore"):
        valid = e > s  # NaN bounds and hi <= lo clips both land here
    if not valid.any():
        return totals
    job_of, s, e = job_of[valid], s[valid], e[valid]

    order = np.lexsort((e, s, job_of))
    job_of, s, e = job_of[order], s[order], e[order]

    run_max = segmented_cummax(e, job_of)
    first = np.empty(len(job_of), dtype=bool)
    first[0] = True
    np.not_equal(job_of[1:], job_of[:-1], out=first[1:])
    prev_max = np.empty_like(run_max)
    prev_max[0] = -np.inf
    prev_max[1:] = run_max[:-1]
    new_run = first | (s > prev_max)

    run_starts = np.flatnonzero(new_run)
    run_end = np.maximum.reduceat(e, run_starts)
    np.add.at(totals, job_of[run_starts], run_end - s[run_starts])
    return totals


@instrument_kernel("first_occurrences", rows=lambda values: len(values))
def first_occurrences(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(unique_values, first_positions)`` — the dedup the row engine's
    ``seen``-set loops perform, as one ``np.unique`` pass.

    ``first_positions`` indexes the *first* appearance of each unique
    value in ``values``' original order, so gathering a companion
    column at those positions matches "first occurrence wins" exactly.
    """
    return np.unique(values, return_index=True)


@instrument_kernel("bucket_accumulate", rows=lambda times, *a, **k: len(times))
def bucket_accumulate(
    times: np.ndarray,
    weights: np.ndarray,
    t0: float,
    bucket_seconds: float,
    n_buckets: int,
) -> np.ndarray:
    """``buckets[k] += w`` for ``k = (t - t0) // bucket_seconds``.

    Out-of-range events are dropped; in-range weights accumulate in
    input order (``np.bincount``'s inner loop), matching the row loops'
    sequential float additions.  ``np.floor_divide`` on float64 follows
    Python's ``//`` semantics (fmod-corrected floor), so bucket
    assignment agrees with ``int((t - t0) // bucket_seconds)`` on the
    row path.
    """
    out = np.zeros(n_buckets, dtype=np.float64)
    if len(times) == 0:
        return out
    k = np.floor_divide(times - t0, bucket_seconds)
    valid = (k >= 0) & (k < n_buckets)
    if valid.any():
        out += np.bincount(
            k[valid].astype(np.int64),
            weights=np.asarray(weights, dtype=np.float64)[valid],
            minlength=n_buckets,
        )
    return out


@instrument_kernel("group_boundaries", rows=lambda sorted_ids: len(sorted_ids))
def group_boundaries(sorted_ids: np.ndarray) -> np.ndarray:
    """Start positions of each run of equal ids (non-decreasing input)."""
    if len(sorted_ids) == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        ([0], np.flatnonzero(np.diff(sorted_ids)) + 1)
    ).astype(np.int64)
