"""Zero-copy pack archives for executor workers.

``ParallelExecutor`` historically seeded each worker by pickling the
whole source into the pool initializer — a per-worker copy whose cost
grows linearly with the data and which cannot survive a paper-scale
rung.  This module spools a source's column packs (plus the sidecar
columns and pre-sorted shard indices of
:class:`~repro.metastore.packsource.PackSource`) to ``.npy`` files on a
shared-memory filesystem (``/dev/shm`` when present), and workers
*attach* by path: every array comes back as a read-only ``np.memmap``,
so the data is mapped — shared, demand-paged, never copied — rather
than deserialized.

Memory-mapped NumPy files are used instead of raw
``multiprocessing.shared_memory`` segments deliberately: they carry
dtype/shape metadata for free, the OS refcounts the mapping (no
resource-tracker unlink races across pool generations), and on
``/dev/shm`` the pages are the same RAM a named segment would use.

Lifecycle: archives are refcounted per pool key (see
:func:`acquire`/:func:`release`) — the executor acquires when it builds
a pool for a ``(source-token, generation, engine)`` key and releases
when that pool is rotated (generation bump, source change) or closed,
at which point the spool directory is unlinked.  An ``atexit`` sweep
catches anything a crashed caller leaked.  Export failures (exotic
sources, read-only filesystems) are not fatal: callers fall back to the
pickle path.
"""

from __future__ import annotations

import atexit
import json
import os
import shutil
import tempfile
import threading
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.obs import get_obs

#: Manifest schema version; bump on layout changes.
_VERSION = 1

_SHM_ROOT = "/dev/shm"


class ExportError(RuntimeError):
    """A source could not be spooled to a pack archive."""


@dataclass(frozen=True)
class ArchiveRef:
    """Picklable handle a pool initializer resolves with :func:`attach`.

    This is what crosses the process boundary instead of the source:
    a path string, not megabytes of records.
    """

    path: str


def spool_root() -> Path:
    """Preferred spool directory: a RAM-backed tmpfs when available."""
    root = Path(_SHM_ROOT)
    if root.is_dir() and os.access(root, os.W_OK):
        return root
    return Path(tempfile.gettempdir())


def _vocab_blob(strings: List[str]) -> tuple:
    encoded = [s.encode("utf-8") for s in strings]
    lens = np.array([len(b) for b in encoded], dtype=np.int64)
    return b"".join(encoded), lens


def _split_vocab(blob: bytes, lens: np.ndarray) -> List[str]:
    out = []
    pos = 0
    for n in lens.tolist():
        out.append(blob[pos:pos + n].decode("utf-8"))
        pos += n
    return out


class PackArchive:
    """One spooled source: a directory of ``.npy`` columns + manifest."""

    def __init__(self, path: Path, manifest: dict) -> None:
        self.path = Path(path)
        self.manifest = manifest

    @property
    def generation(self) -> int:
        return int(self.manifest["generation"])

    @property
    def nbytes(self) -> int:
        return int(self.manifest.get("nbytes", 0))

    # -- export ---------------------------------------------------------------

    @classmethod
    def export(cls, source, directory: Optional[Path] = None) -> "PackArchive":
        """Spool ``source``'s packs to a fresh archive directory.

        Works for any source exposing ``column_packs()``; sources that
        are not already a :class:`PackSource` are wrapped in one (their
        record collections provide the sidecar fields).  Raises
        :class:`ExportError` when the source cannot be represented —
        callers treat that as "use the pickle path".
        """
        from repro.metastore.packsource import (
            DEFAULT_SHARD_SECONDS,
            PackSource,
            lower_sidecar,
        )

        with get_obs().tracer.span("columnar.shm_export", cat="columnar") as sp:
            try:
                packs = source.column_packs()
            except Exception as exc:  # no columnar surface at all
                raise ExportError(f"source has no column packs: {exc}") from exc
            if isinstance(source, PackSource):
                ps = source
            else:
                try:
                    sidecar = lower_sidecar(
                        list(source.jobs), list(source.files), list(source.transfers),
                        packs.interner,
                    )
                except Exception as exc:
                    raise ExportError(f"cannot lower sidecar columns: {exc}") from exc
                ps = PackSource(
                    packs,
                    sidecar,
                    shard_seconds=getattr(source, "shard_seconds", DEFAULT_SHARD_SECONDS),
                    generation=getattr(source, "generation", 0),
                )

            root = Path(directory) if directory is not None else spool_root()
            path = root / f"repro-packs-{os.getpid()}-{uuid.uuid4().hex[:12]}"
            try:
                path.mkdir(parents=True)
                arrays = _collect_arrays(ps)
                nbytes = 0
                for name, arr in arrays.items():
                    np.save(path / f"{name}.npy", np.ascontiguousarray(arr))
                    nbytes += arr.nbytes
                blob, lens = _vocab_blob(ps.interner.strings)
                (path / "vocab.bin").write_bytes(blob)
                np.save(path / "vocab_lens.npy", lens)
                manifest = {
                    "version": _VERSION,
                    "generation": int(ps.generation),
                    "shard_seconds": float(ps.shard_seconds),
                    "n_vocab": len(ps.interner),
                    "nbytes": int(nbytes + len(blob) + lens.nbytes),
                    "counts": ps.counts(),
                }
                (path / "manifest.json").write_text(json.dumps(manifest))
            except ExportError:
                shutil.rmtree(path, ignore_errors=True)
                raise
            except Exception as exc:
                shutil.rmtree(path, ignore_errors=True)
                raise ExportError(f"spool failed: {exc}") from exc
            sp.set("path", str(path))
            sp.set("nbytes", manifest["nbytes"])
            obs = get_obs()
            if obs.enabled:
                obs.metrics.counter("executor.shm", event="export").inc()
            return cls(path, manifest)

    # -- attach ---------------------------------------------------------------

    def attach(self):
        """Rebuild a read-only ``PackSource`` over memory-mapped columns."""
        return attach(ArchiveRef(str(self.path)))

    def unlink(self) -> None:
        shutil.rmtree(self.path, ignore_errors=True)

    def exists(self) -> bool:
        return (self.path / "manifest.json").is_file()


def _collect_arrays(ps) -> Dict[str, np.ndarray]:
    import dataclasses

    arrays: Dict[str, np.ndarray] = {}
    for prefix, pack in (
        ("jobs", ps.columns.jobs),
        ("files", ps.columns.files),
        ("transfers", ps.columns.transfers),
        ("side", ps.sidecar),
    ):
        for f in dataclasses.fields(pack):
            arrays[f"{prefix}_{f.name}"] = getattr(pack, f.name)
    jv, ji, tv, ti, fo = ps.index_arrays()
    arrays["idx_job_vals"] = jv
    arrays["idx_job_ids"] = ji
    arrays["idx_transfer_vals"] = tv
    arrays["idx_transfer_ids"] = ti
    arrays["idx_file_order"] = fo
    return arrays


def attach(ref: ArchiveRef):
    """Open an archive as a ``PackSource`` of read-only memmaps."""
    import dataclasses

    from repro.columnar.interner import StringInterner
    from repro.columnar.packs import FilePack, JobPack, TransferPack, WindowColumns
    from repro.metastore.packsource import PackSource, SidecarColumns

    path = Path(ref.path)
    with get_obs().tracer.span("columnar.shm_attach", cat="columnar") as sp:
        manifest = json.loads((path / "manifest.json").read_text())
        if manifest.get("version") != _VERSION:
            raise ExportError(f"archive version mismatch at {path}")
        blob = (path / "vocab.bin").read_bytes()
        lens = np.load(path / "vocab_lens.npy")
        interner = StringInterner()
        for s in _split_vocab(blob, lens):
            interner.intern(s)

        def load(name: str) -> np.ndarray:
            return np.load(path / f"{name}.npy", mmap_mode="r")

        def load_pack(prefix: str, pack_cls):
            return pack_cls(**{
                f.name: load(f"{prefix}_{f.name}")
                for f in dataclasses.fields(pack_cls)
            })

        columns = WindowColumns(
            interner=interner,
            jobs=load_pack("jobs", JobPack),
            files=load_pack("files", FilePack),
            transfers=load_pack("transfers", TransferPack),
        )
        sidecar = load_pack("side", SidecarColumns)
        source = PackSource(
            columns,
            sidecar,
            shard_seconds=manifest["shard_seconds"],
            generation=manifest["generation"],
            index_arrays=(
                load("idx_job_vals"),
                load("idx_job_ids"),
                load("idx_transfer_vals"),
                load("idx_transfer_ids"),
                load("idx_file_order"),
            ),
        )
        sp.set("path", str(path))
        sp.set("nbytes", manifest.get("nbytes", 0))
    obs = get_obs()
    if obs.enabled:
        obs.metrics.counter("executor.shm", event="attach").inc()
    return source


# -- refcounted registry (one archive per live pool key) ----------------------

_ARCHIVES: Dict[tuple, list] = {}
_ARCHIVES_LOCK = threading.Lock()


def acquire(source, key: tuple) -> PackArchive:
    """The archive for ``key``, exporting on first acquisition.

    Each pool holding the archive open must balance with one
    :func:`release`; the spool directory is unlinked when the last
    holder lets go.  Thread-safe: two executors racing the same key get
    one export and two refcounts, never two spools.
    """
    with _ARCHIVES_LOCK:
        entry = _ARCHIVES.get(key)
        if entry is None:
            entry = _ARCHIVES[key] = [None, 0]
        entry[1] += 1
    if entry[0] is None:
        # Export outside the lock (it can be slow); publish under it.
        try:
            archive = PackArchive.export(source)
        except Exception:
            release(key)
            raise
        with _ARCHIVES_LOCK:
            if entry[0] is None:
                entry[0] = archive
            else:  # lost the publication race; keep the winner's spool
                archive.unlink()
    return entry[0]


def release(key: tuple) -> None:
    with _ARCHIVES_LOCK:
        entry = _ARCHIVES.get(key)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] > 0:
            return
        del _ARCHIVES[key]
    if entry[0] is not None:
        entry[0].unlink()


def active_archives() -> Dict[tuple, PackArchive]:
    """Live archives by pool key (observability + lifecycle tests)."""
    with _ARCHIVES_LOCK:
        return {k: v[0] for k, v in _ARCHIVES.items() if v[0] is not None}


@atexit.register
def _sweep() -> None:
    with _ARCHIVES_LOCK:
        entries = list(_ARCHIVES.values())
        _ARCHIVES.clear()
    for entry in entries:
        if entry[0] is not None:
            entry[0].unlink()
