"""Vectorized Algorithm-1 kernels over column packs.

:class:`ColumnarIndex` is the structure-of-arrays counterpart of
:class:`~repro.core.matching.base.CandidateIndex`: it lowers one
window's records into packs, builds the jobs → files → transfers join
once as flat candidate arrays, and then runs each matcher's final
filters (time, site, whole-set size) as NumPy kernels.

Bit-identical output is the contract.  The row engine's ordering rules
are reproduced exactly:

* jobs are scanned in window order;
* a job's candidates enumerate its file rows in insertion order, and
  each file's transfers in insertion order (the join arrays are sorted
  with *stable* sorts, so equal keys keep their relative order);
* duplicate candidates are dropped on first occurrence per
  ``(job, row_id)``, like the row engine's ``seen`` set;
* integer byte totals are summed exactly (``np.add.at`` on ``int64``),
  never through float accumulators.

Matchers participate through the template hooks of
:class:`~repro.core.matching.base.BaseMatcher`: the engine recognizes
the stock ``site_ok`` implementations (strict, and RM2's
uncertain-site relaxation) and vectorizes them; a matcher that
overrides :meth:`~repro.core.matching.base.BaseMatcher.select_job`
(e.g. :class:`~repro.core.matching.subset.SubsetMatcher`) gets its
per-job set-level decision invoked on the vectorized candidates.
Anything else is reported unsupported, and callers fall back to the
row engine — never silently diverge.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.frame import MatchFrame
from repro.columnar.interner import StringInterner
from repro.columnar.packs import WindowColumns
from repro.core.matching.base import BaseMatcher, JobMatch, MatchResult
from repro.core.matching.rm2 import RM2Matcher
from repro.core.matching.rm3 import RM3Matcher
from repro.obs import get_obs
from repro.telemetry.records import (
    UNKNOWN_SITE,
    FileRecord,
    JobRecord,
    TransferRecord,
)


def supports_columnar(matcher: BaseMatcher) -> bool:
    """Can this matcher's filters be lowered to the vectorized kernels?

    True when the matcher uses the stock candidate filtering — the base
    ``run``/``match_job``/``time_ok`` template and a recognized
    ``site_ok`` (strict or RM2's relaxation).  ``select_job`` overrides
    are fine: they run per job on the vectorized candidates.  RM3's
    size-tolerant join + scored ``match_job_scored`` are recognized as
    long as the scoring hooks are the stock ones
    (:meth:`ColumnarIndex._run_rm3` lowers the score directly, not
    through the row hooks).
    """
    cls = type(matcher)
    if cls.run is not BaseMatcher.run:
        return False
    if cls.size_tolerant_join:
        return (
            getattr(cls, "match_job_scored", None) is RM3Matcher.match_job_scored
            and cls.time_feature is RM3Matcher.time_feature
            and cls.site_feature is RM3Matcher.site_feature
            and cls.size_feature is RM3Matcher.size_feature
            and cls.score is RM3Matcher.score
            and cls._site_uncertain is RM2Matcher._site_uncertain
        )
    return (
        cls.match_job is BaseMatcher.match_job
        and cls.time_ok is BaseMatcher.time_ok
        and (cls.site_ok is BaseMatcher.site_ok or cls.site_ok is RM2Matcher.site_ok)
    )


def _ragged_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + c)`` for each (start, count) pair."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends, counts)
    return np.repeat(starts, counts) + offsets


def _joint_codes(
    a: np.ndarray, b: np.ndarray, max_span: int
) -> Tuple[np.ndarray, np.ndarray, np.int64]:
    """Order-preserving integer codes over two arrays' joint domain.

    Equal values get equal codes across both arrays, distinct values
    distinct codes; returns ``(a_codes, b_codes, span)`` with all codes
    in ``[0, span)`` so a caller can pack ``code * other_span + other``
    into one int64 key.  Dense domains are just shifted by their
    minimum (two O(n) scans); a domain wider than ``max_span`` falls
    back to rank compression over the sorted unique union, whose span
    is bounded by the element count.
    """
    nonempty = [x for x in (a, b) if len(x)]
    if not nonempty:
        return a.astype(np.int64), b.astype(np.int64), np.int64(1)
    lo = min(int(x.min()) for x in nonempty)
    hi = max(int(x.max()) for x in nonempty)
    if hi - lo < max_span:
        return a - lo, b - lo, np.int64(hi - lo + 1)
    vocab = np.unique(np.concatenate([a, b]))
    return (
        np.searchsorted(vocab, a),
        np.searchsorted(vocab, b),
        np.int64(len(vocab)),
    )


def _indexable(seq) -> bool:
    return hasattr(seq, "__getitem__") and hasattr(seq, "__len__")


class ColumnarIndex:
    """The Algorithm-1 join as flat candidate arrays, built once per window.

    ``cand_job``/``cand_tpos`` enumerate every deduplicated
    (job, candidate transfer) pair in the row engine's iteration order;
    each matcher run is then a sequence of masks over these arrays.
    """

    #: Process-wide construction counter, mirroring
    #: ``CandidateIndex.build_count``; tests assert the artifact cache
    #: keeps this from growing with matchers × windows.
    build_count = 0

    def __init__(
        self,
        jobs: Sequence[JobRecord],
        files: Sequence[FileRecord],
        transfers: Sequence[TransferRecord],
        interner: Optional[StringInterner] = None,
        columns: Optional[WindowColumns] = None,
    ) -> None:
        ColumnarIndex.build_count += 1
        # Keep indexable sequences as-is: lazy record views (see
        # ``repro.metastore.packsource.LazyRecords``) stay lazy, so a
        # paper-scale window only materializes the records a match
        # actually touches.  Generators and other one-shot iterables
        # still get listified.
        self.jobs = jobs if _indexable(jobs) else list(jobs)
        self.files = files if _indexable(files) else list(files)
        self.transfers = transfers if _indexable(transfers) else list(transfers)
        # Pre-lowered columns (cut from a source's full-table packs by
        # the window's id arrays) skip the per-record lowering entirely.
        self.columns = columns if columns is not None else WindowColumns.lower(
            self.jobs, self.files, self.transfers, interner
        )
        self._build_join()
        # Masks shared by every matcher over this window, built lazily.
        self._time_mask: Optional[np.ndarray] = None
        self._strict_site_mask: Optional[np.ndarray] = None

    # -- join construction -------------------------------------------------------

    def _build_join(self) -> None:
        with get_obs().tracer.span("columnar.build_join", cat="kernel") as sp:
            self._build_join_inner()
            sp.set("n_jobs", len(self.jobs))
            sp.set("n_files", len(self.files))
            sp.set("n_transfers", len(self.transfers))
            sp.set("n_candidates", len(self.cand_job))

    def _build_join_inner(self) -> None:
        jp, fp, tp = self.columns.jobs, self.columns.files, self.columns.transfers
        n_jobs = len(jp)

        # Transfers reachable by the join: task identity present
        # (``if t.jeditaskid`` in the row engine — truthiness, not > 0).
        joinable = np.flatnonzero(tp.jeditaskid != 0)

        # (jeditaskid, lfn_code) -> sorted transfer runs.  Task ids are
        # code-compressed over the union of both sides so the pair packs
        # into one int64 key without overflow assumptions on raw ids.
        lfn_span = np.int64(len(self.columns.interner) + 1)
        t_task, f_task, _ = _joint_codes(
            tp.jeditaskid[joinable], fp.jeditaskid, (1 << 62) // int(lfn_span)
        )
        t_key = t_task * lfn_span + tp.lfn[joinable]
        f_key = f_task * lfn_span + fp.lfn
        order = np.argsort(t_key, kind="stable")  # stable: insertion order in runs
        sorted_tkey = t_key[order]
        sorted_tpos = joinable[order]

        # Per file row: the run of transfers sharing its (task, lfn) key.
        run_lo = np.searchsorted(sorted_tkey, f_key, side="left")
        run_hi = np.searchsorted(sorted_tkey, f_key, side="right")

        # (pandaid, jeditaskid) -> file groups, probed per job.
        f_jt, j_jt, jt_span = _joint_codes(fp.jeditaskid, jp.jeditaskid, 1 << 30)
        f_pid, j_pid, _ = _joint_codes(
            fp.pandaid, jp.pandaid, (1 << 62) // int(jt_span)
        )
        f_group = f_pid * jt_span + f_jt
        j_group = j_pid * jt_span + j_jt
        file_order = np.argsort(f_group, kind="stable")
        sorted_fgroup = f_group[file_order]
        group_lo = np.searchsorted(sorted_fgroup, j_group, side="left")
        group_hi = np.searchsorted(sorted_fgroup, j_group, side="right")

        # Expand jobs -> their file rows (insertion order inside groups).
        files_per_job = group_hi - group_lo
        entry_job = np.repeat(np.arange(n_jobs, dtype=np.int64), files_per_job)
        entry_fi = file_order[_ragged_arange(group_lo, files_per_job)]

        # Expand file rows -> their candidate transfer runs.
        cands_per_entry = run_hi[entry_fi] - run_lo[entry_fi]
        cand_job = np.repeat(entry_job, cands_per_entry)
        cand_fi = np.repeat(entry_fi, cands_per_entry)
        cand_tpos = sorted_tpos[_ragged_arange(run_lo[entry_fi], cands_per_entry)]

        # Attribute equality beyond the (task, lfn) key: dataset,
        # proddblock, scope — all int comparisons now.  Size equality
        # is kept as a separate mask: the Algorithm-1 join requires it,
        # RM3's size-relaxed join scores the mismatch instead.
        attr_relaxed = (
            (tp.dataset[cand_tpos] == fp.dataset[cand_fi])
            & (tp.proddblock[cand_tpos] == fp.proddblock[cand_fi])
            & (tp.scope[cand_tpos] == fp.scope[cand_fi])
        )
        r_job = cand_job[attr_relaxed]
        r_tpos = cand_tpos[attr_relaxed]
        r_fi = cand_fi[attr_relaxed]
        size_eq = tp.size[r_tpos] == fp.size[r_fi]

        # First-occurrence dedup per (job, row_id), like the row
        # engine's ``seen`` set.  row_id is code-compressed so the pair
        # packs into int64 even for arbitrary stored ids.  The sized
        # and relaxed joins dedup independently — each mirrors its row
        # loop's enumeration, so "first occurrence" can differ between
        # them (a size-mismatched file row can reach a transfer first).
        rid_code, _, rid_span = _joint_codes(
            tp.row_id, tp.row_id[:0], (1 << 62) // (n_jobs + 1)
        )

        def dedup(jobs_arr: np.ndarray, keys: np.ndarray) -> np.ndarray:
            _, first = np.unique(jobs_arr * rid_span + keys, return_index=True)
            first.sort()  # restore candidate-enumeration order
            return first

        sized = dedup(r_job[size_eq], rid_code[r_tpos[size_eq]])
        self.cand_job = r_job[size_eq][sized]
        self.cand_tpos = r_tpos[size_eq][sized]

        relaxed = dedup(r_job, rid_code[r_tpos])
        self.relaxed_job = r_job[relaxed]
        self.relaxed_tpos = r_tpos[relaxed]
        self.relaxed_fi = r_fi[relaxed]

    # -- shared filter kernels -----------------------------------------------------

    @property
    def time_mask(self) -> np.ndarray:
        """Condition (1) per candidate; NaN endtime compares false."""
        if self._time_mask is None:
            tp, jp = self.columns.transfers, self.columns.jobs
            with np.errstate(invalid="ignore"):
                self._time_mask = (
                    tp.starttime[self.cand_tpos] < jp.endtime[self.cand_job]
                )
        return self._time_mask

    @property
    def strict_site_mask(self) -> np.ndarray:
        """Condition (3) per candidate, strict (Exact/RM1) form."""
        if self._strict_site_mask is None:
            self._strict_site_mask = self._site_mask(uncertain=None)
        return self._strict_site_mask

    def _site_mask(self, uncertain: Optional[np.ndarray]) -> np.ndarray:
        """Download dest / upload source equals the job's site.

        ``uncertain`` is a per-string-code bool vector; when given, an
        uncertain endpoint label passes (RM2's relaxation).
        """
        tp, jp = self.columns.transfers, self.columns.jobs
        site = jp.site[self.cand_job]
        src = tp.src[self.cand_tpos]
        dst = tp.dst[self.cand_tpos]
        dst_ok = dst == site
        src_ok = src == site
        if uncertain is not None:
            dst_ok = dst_ok | uncertain[dst]
            src_ok = src_ok | uncertain[src]
        return np.where(
            tp.is_download[self.cand_tpos],
            dst_ok,
            tp.is_upload[self.cand_tpos] & src_ok,
        )

    def _uncertain_codes(self, matcher: RM2Matcher) -> np.ndarray:
        """Vector of ``matcher._site_uncertain`` over the vocabulary.

        Built from the short side: with a known-site list, everything
        is uncertain except the known sites' codes (empty and
        ``UNKNOWN_SITE`` labels stay uncertain even when listed); with
        no list, only those two degenerate labels are uncertain.
        """
        interner = self.columns.interner
        known = matcher.known_sites
        if known:
            out = np.ones(len(interner), dtype=bool)
            for name in known:
                if name and name != UNKNOWN_SITE:
                    code = interner.code_of(name)
                    if code >= 0:
                        out[code] = False
        else:
            out = np.zeros(len(interner), dtype=bool)
        for name in ("", UNKNOWN_SITE):
            code = interner.code_of(name)
            if code >= 0:
                out[code] = True
        return out

    # -- per-matcher execution ----------------------------------------------------

    def run(self, matcher: BaseMatcher, n_transfers_considered: int) -> MatchResult:
        """One matcher's final filters as kernels; row-identical output."""
        if not supports_columnar(matcher):
            raise TypeError(
                f"matcher {matcher.name!r} overrides row predicates the "
                "columnar engine cannot lower; run it on the row engine"
            )
        obs = get_obs()
        with obs.tracer.span("columnar.run", cat="kernel") as sp:
            sp.set("method", matcher.name)
            sp.set("n_candidates", len(self.cand_job))
            result = self._run_inner(matcher, n_transfers_considered)
            sp.set("n_matches", len(result.matches))
        if obs.enabled:
            obs.metrics.counter("kernel.calls", kernel="columnar.run").inc()
            obs.metrics.counter(
                "kernel.rows", kernel="columnar.run"
            ).inc(len(self.cand_job))
        return result

    def _run_inner(self, matcher: BaseMatcher, n_transfers_considered: int) -> MatchResult:
        if type(matcher).size_tolerant_join:
            return self._run_rm3(matcher, n_transfers_considered)
        if type(matcher).site_ok is RM2Matcher.site_ok:
            site_mask = self._site_mask(self._uncertain_codes(matcher))
        else:
            site_mask = self.strict_site_mask
        kept = self.time_mask & site_mask
        cand_job = self.cand_job[kept]
        cand_tpos = self.cand_tpos[kept]

        frame: Optional[MatchFrame] = None
        if type(matcher).select_job is not BaseMatcher.select_job:
            matches = self._select_per_job(matcher, cand_job, cand_tpos)
        else:
            if matcher.use_size_check:
                tp, jp = self.columns.transfers, self.columns.jobs
                totals = np.zeros(len(jp), dtype=np.int64)
                np.add.at(totals, cand_job, tp.size[cand_tpos])
                size_ok = (totals == jp.nin) | (totals == jp.nout)
                keep = size_ok[cand_job]
                cand_job = cand_job[keep]
                cand_tpos = cand_tpos[keep]
            # The final filtered candidate arrays are exactly the
            # matched ragged mapping — lower them to the analysis frame
            # here, while they are still in hand (a select_job override
            # reorders per job, so that path falls back to lazy
            # row lowering via MatchResult.frame()).
            frame = MatchFrame.from_candidates(self.columns, cand_job, cand_tpos)
            take = self.transfers.__getitem__
            matches = [
                JobMatch(job=self.jobs[j], transfers=list(map(take, group.tolist())))
                for j, group in _grouped(cand_job, cand_tpos)
            ]

        result = MatchResult(
            method=matcher.name,
            matches=matches,
            n_jobs_considered=len(self.jobs),
            n_transfers_considered=n_transfers_considered,
        )
        result._frame = frame
        return result

    def _run_rm3(self, matcher: RM3Matcher, n_transfers_considered: int) -> MatchResult:
        """RM3's scored decision as one vectorized pass.

        Mirrors :meth:`RM3Matcher.match_job_scored` bit for bit over
        the size-relaxed join arrays: the hard gate (condition (1) +
        directedness), then ``(f_time * f_site) * f_size >= threshold``
        in the same association order and with the same int→float64
        conversions as the row reference (see the module docstring of
        :mod:`repro.core.matching.rm3`).
        """
        tp, jp, fp = self.columns.transfers, self.columns.jobs, self.columns.files
        with np.errstate(invalid="ignore"):
            in_time = (
                tp.starttime[self.relaxed_tpos] < jp.endtime[self.relaxed_job]
            )
        directed = (
            tp.is_download[self.relaxed_tpos] | tp.is_upload[self.relaxed_tpos]
        )
        gate = in_time & directed
        cand_job = self.relaxed_job[gate]
        cand_tpos = self.relaxed_tpos[gate]
        cand_fi = self.relaxed_fi[gate]

        # Per-candidate size tolerance against the producing file row.
        rel = np.abs(tp.size[cand_tpos] - fp.size[cand_fi]) / np.maximum(
            fp.size[cand_fi], 1
        )
        f_size = matcher.rho / (matcher.rho + rel)

        # Per-candidate time proximity and site prior.
        lead = np.maximum(jp.creation[cand_job] - tp.starttime[cand_tpos], 0.0)
        f_time = matcher.tau / (matcher.tau + lead)
        label = np.where(
            tp.is_download[cand_tpos], tp.dst[cand_tpos], tp.src[cand_tpos]
        )
        uncertain = self._uncertain_codes(matcher)
        f_site = np.where(
            label == jp.site[cand_job],
            1.0,
            np.where(uncertain[label], matcher.site_prior, matcher.site_contra),
        )

        score = (f_time * f_site) * f_size
        keep = score >= matcher.threshold
        cand_job = cand_job[keep]
        cand_tpos = cand_tpos[keep]

        frame = MatchFrame.from_candidates(self.columns, cand_job, cand_tpos)
        take = self.transfers.__getitem__
        matches = [
            JobMatch(job=self.jobs[j], transfers=list(map(take, group.tolist())))
            for j, group in _grouped(cand_job, cand_tpos)
        ]
        result = MatchResult(
            method=matcher.name,
            matches=matches,
            n_jobs_considered=len(self.jobs),
            n_transfers_considered=n_transfers_considered,
        )
        result._frame = frame
        return result

    def _select_per_job(
        self, matcher: BaseMatcher, cand_job: np.ndarray, cand_tpos: np.ndarray
    ) -> List[JobMatch]:
        """Custom set-level selection (e.g. subset-sum) per candidate group."""
        matches: List[JobMatch] = []
        take = self.transfers.__getitem__
        for j, group in _grouped(cand_job, cand_tpos):
            job = self.jobs[j]
            kept = matcher.select_job(job, list(map(take, group.tolist())))
            if kept:
                matches.append(JobMatch(job=job, transfers=kept))
        return matches


def _grouped(cand_job: np.ndarray, cand_tpos: np.ndarray):
    """Yield (job position, transfer positions) per contiguous job run.

    ``cand_job`` is non-decreasing by construction, so runs are exactly
    the per-job candidate groups, in window job order.
    """
    if len(cand_job) == 0:
        return
    boundaries = np.flatnonzero(np.diff(cand_job)) + 1
    starts = np.concatenate(([0], boundaries))
    for start, group in zip(starts, np.split(cand_tpos, boundaries)):
        yield int(cand_job[start]), group
