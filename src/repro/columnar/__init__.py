"""Columnar matching engine: interned column packs + vectorized kernels.

The row engine (``repro.core.matching``) is the specification: plain
records, dict joins, per-job Python loops.  This package lowers each
materialized window into structure-of-arrays packs — NumPy columns with
dictionary-encoded strings — and reruns Algorithm 1's join and final
filters as vectorized kernels, producing bit-identical
``matched_pairs()`` (property-tested in ``tests/test_columnar.py``).

Downstream of matching, :mod:`repro.columnar.frame` lowers each match
result into a :class:`MatchFrame` (per-job arrays + CSR ragged transfer
mapping) and :mod:`repro.columnar.kernels` supplies the array
primitives the §5 analyses run on — the *analysis dataplane*, selected
by ``--frame {row,columnar}`` just like the matching engine is by
``--engine`` (see :data:`DEFAULT_FRAME`; parity is property-tested in
``tests/test_analysis_frame.py``).
"""

# Names and validators live above the submodule imports: modules on
# the frame → matching-base → pipeline import chain pull them from a
# partially initialized ``repro.columnar``, which only works for
# bindings that already exist at that point.

#: Recognized engine names, in documentation order.
ENGINES = ("row", "columnar")

#: The engine used when callers don't choose: columnar, now that the
#: row-parity property tests gate every release.
DEFAULT_ENGINE = "columnar"

#: Recognized analysis-dataplane names, mirroring :data:`ENGINES`.
FRAMES = ("row", "columnar")

#: The analysis dataplane used when callers don't choose: the
#: MatchFrame kernels, gated by the same bit-identity parity suite.
DEFAULT_FRAME = "columnar"


def validate_engine(engine: str) -> str:
    """Normalize/validate an engine name, raising on unknown values."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def validate_frame(frame: str) -> str:
    """Normalize/validate an analysis-dataplane name."""
    if frame not in FRAMES:
        raise ValueError(f"unknown frame {frame!r}; expected one of {FRAMES}")
    return frame


# The engine and frame modules reach back into repro.core (for
# matcher/JobMatch types), whose own init imports this package — so
# they load lazily (PEP 562) instead of during package init.  The
# leaf modules below (interner/kernels/packs) depend only on NumPy
# and the telemetry records and stay eager.
_LAZY = {
    "ColumnarIndex": "engine",
    "supports_columnar": "engine",
    "CLASS_ORDER": "frame",
    "MatchFrame": "frame",
}


def __getattr__(name):
    modname = _LAZY.get(name)
    if modname is not None:
        import importlib

        return getattr(importlib.import_module(f"{__name__}.{modname}"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


from repro.columnar.interner import StringInterner  # noqa: E402
from repro.columnar.kernels import (  # noqa: E402
    bucket_accumulate,
    first_occurrences,
    group_boundaries,
    interval_union_lengths,
    segmented_cummax,
)
from repro.columnar.packs import (  # noqa: E402
    FilePack,
    JobPack,
    TransferPack,
    WindowColumns,
    lower_files,
    lower_jobs,
    lower_transfers,
)


__all__ = [
    "CLASS_ORDER",
    "ColumnarIndex",
    "DEFAULT_ENGINE",
    "DEFAULT_FRAME",
    "ENGINES",
    "FRAMES",
    "FilePack",
    "JobPack",
    "MatchFrame",
    "StringInterner",
    "TransferPack",
    "WindowColumns",
    "bucket_accumulate",
    "first_occurrences",
    "group_boundaries",
    "interval_union_lengths",
    "lower_files",
    "lower_jobs",
    "lower_transfers",
    "segmented_cummax",
    "supports_columnar",
    "validate_engine",
    "validate_frame",
]
