"""Columnar matching engine: interned column packs + vectorized kernels.

The row engine (``repro.core.matching``) is the specification: plain
records, dict joins, per-job Python loops.  This package lowers each
materialized window into structure-of-arrays packs — NumPy columns with
dictionary-encoded strings — and reruns Algorithm 1's join and final
filters as vectorized kernels, producing bit-identical
``matched_pairs()`` (property-tested in ``tests/test_columnar.py``).

Engine selection is threaded through ``repro.exec`` and the CLI as
``--engine {row,columnar}``; see :data:`DEFAULT_ENGINE`.
"""

from repro.columnar.engine import ColumnarIndex, supports_columnar
from repro.columnar.interner import StringInterner
from repro.columnar.packs import (
    FilePack,
    JobPack,
    TransferPack,
    WindowColumns,
    lower_files,
    lower_jobs,
    lower_transfers,
)

#: Recognized engine names, in documentation order.
ENGINES = ("row", "columnar")

#: The engine used when callers don't choose: columnar, now that the
#: row-parity property tests gate every release.
DEFAULT_ENGINE = "columnar"


def validate_engine(engine: str) -> str:
    """Normalize/validate an engine name, raising on unknown values."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


__all__ = [
    "ColumnarIndex",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FilePack",
    "JobPack",
    "StringInterner",
    "TransferPack",
    "WindowColumns",
    "lower_files",
    "lower_jobs",
    "lower_transfers",
    "supports_columnar",
    "validate_engine",
]
