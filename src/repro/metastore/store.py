"""Document store.

Documents are plain dataclass instances (or dicts); fields are indexed
lazily on first ingestion.  One store holds many named collections —
the analysis uses ``jobs``, ``files``, and ``transfers``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.metastore.index import FieldIndex
from repro.metastore.query import Query
from repro.obs import SIZE_BUCKETS, get_obs


def _as_mapping(doc: Any) -> Dict[str, Any]:
    if dataclasses.is_dataclass(doc) and not isinstance(doc, type):
        # shallow: we only index top-level scalar fields
        return {f.name: getattr(doc, f.name) for f in dataclasses.fields(doc)}
    if isinstance(doc, dict):
        return doc
    raise TypeError(f"cannot ingest document of type {type(doc)!r}")


class Collection:
    """One indexed collection of documents."""

    def __init__(self, name: str, indexed_fields: Optional[Sequence[str]] = None) -> None:
        self.name = name
        self._docs: List[Any] = []
        self._indices: Dict[str, FieldIndex] = {}
        self._indexed_fields = set(indexed_fields) if indexed_fields else None
        #: Bumped on every ingest batch; cache layers key materialized
        #: artifacts on it so stale results can never be served after
        #: the collection changes.
        self.generation = 0

    def ingest(self, docs: Iterable[Any]) -> int:
        self.generation += 1
        n = 0
        for doc in docs:
            doc_id = len(self._docs)
            self._docs.append(doc)
            mapping = _as_mapping(doc)
            indices = self._indices_for(mapping)
            for fld, value in mapping.items():
                if self._indexed_fields is not None and fld not in self._indexed_fields:
                    continue
                if not isinstance(value, (str, int, float, bool)) and value is not None:
                    continue
                indices.setdefault(fld, FieldIndex(fld)).add(doc_id, value)
            n += 1
        return n

    def _indices_for(self, mapping: Dict[str, Any]) -> Dict[str, FieldIndex]:
        """Index table a document's fields land in.

        The unsharded collection has exactly one; ``ShardedCollection``
        overrides this to route each document to the shard its key
        field selects.
        """
        return self._indices

    def append(self, docs: Iterable[Any]) -> int:
        """Ingest a micro-batch and re-freeze incrementally.

        The streaming ingest primitive: equivalent to
        ``ingest(docs); freeze()`` but each touched :class:`FieldIndex`
        merges only the delta into its sorted column (see
        ``FieldIndex.freeze``), so appending stays O(delta log n)
        instead of re-sorting the whole collection per batch.  The
        generation bump from :meth:`ingest` invalidates every cache
        layer keyed on it.
        """
        n = self.ingest(docs)
        self.freeze()
        return n

    def freeze(self) -> None:
        for idx in self._indices.values():
            idx.freeze()

    def field_index(self, name: str) -> FieldIndex:
        idx = self._indices.get(name)
        if idx is None:
            # Unknown field: behave like an empty index (OpenSearch
            # semantics: no documents match).
            idx = FieldIndex(name)
            self._indices[name] = idx
        return idx

    def all_ids(self) -> Set[int]:
        return set(range(len(self._docs)))

    def get(self, doc_id: int) -> Any:
        return self._docs[doc_id]

    def search_ids(self, query: Query) -> np.ndarray:
        """Matching doc ids in storage order, as an int64 array.

        Bare range queries take the array fast path (sort the sorted-
        column slice directly; doc ids are unique per field index, so
        this is equivalent to ``sorted(set(...))``).  Columnar window
        materialization builds on this: an id array turns per-window
        column packs into pure NumPy gathers.
        """
        evaluate_ids = getattr(query, "evaluate_ids", None)
        if evaluate_ids is not None:
            arr = np.sort(evaluate_ids(self))
            path = "array"
        else:
            ids = query.evaluate(self)
            arr = np.fromiter(ids, dtype=np.int64, count=len(ids))
            arr.sort()
            path = "set"
        obs = get_obs()
        if obs.enabled:
            obs.metrics.counter(
                "metastore.queries", collection=self.name, path=path
            ).inc()
            obs.metrics.histogram(
                "metastore.hit_size", edges=SIZE_BUCKETS, collection=self.name
            ).observe(len(arr))
        return arr

    def take(self, ids: np.ndarray) -> List[Any]:
        """Documents for an id array (storage order preserved)."""
        return list(map(self._docs.__getitem__, ids.tolist()))

    def search(self, query: Query) -> List[Any]:
        return self.take(self.search_ids(query))

    def count(self, query: Query) -> int:
        return len(query.evaluate(self))

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self):
        return iter(self._docs)


class DocumentStore:
    """Named collections with shared lifecycle."""

    def __init__(self) -> None:
        self._collections: Dict[str, Collection] = {}

    def create(
        self,
        name: str,
        indexed_fields: Optional[Sequence[str]] = None,
        policy: Optional[Any] = None,
    ) -> Collection:
        """Create a collection; pass a shard ``policy`` to partition it.

        With a policy (see :mod:`repro.metastore.sharding`) the
        collection's field indices are partitioned by the policy's key
        field and window queries route to only the shards they overlap.
        Query semantics are identical either way.
        """
        if name in self._collections:
            raise ValueError(f"collection exists: {name}")
        if policy is not None:
            from repro.metastore.sharding import ShardedCollection

            col: Collection = ShardedCollection(name, indexed_fields, policy=policy)
        else:
            col = Collection(name, indexed_fields)
        self._collections[name] = col
        return col

    def collection(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise KeyError(f"no such collection: {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def names(self) -> List[str]:
        return sorted(self._collections)

    @property
    def generation(self) -> int:
        """Monotone data version over all collections.

        Any ingest into any collection changes it, so it is a safe
        cache key for derived artifacts (see ``repro.exec``).
        """
        return sum(col.generation for col in self._collections.values())

    def freeze(self) -> None:
        for col in self._collections.values():
            col.freeze()
