"""Array-native sharded telemetry source (the paper-scale dataplane).

:class:`PackSource` serves the same query surface the matching and
analysis layers use on :class:`~repro.metastore.opensearch.OpenSearchLike`
(``materialize_window``, the §4.2 retrieval patterns, ``column_packs``,
``generation``) — but its storage *is* the column packs.  No per-record
document list exists; record objects are materialized lazily, one row
at a time, only when something actually touches them (match assembly
touches only matched jobs and transfers, so a paper-scale window never
pays a million-record Python materialization).

Three pieces make it scale:

* **sidecar columns** — the handful of record fields the packs don't
  carry (``prodsourcelabel``, error fields, ``ftype``, ``success``),
  kept as arrays so every record field is faithfully recoverable;
* **time shards** — per-slice sorted ``(values, ids)`` indices over job
  endtime and transfer starttime (the two fields window preselection
  ranges over), so a window query touches only the shards it overlaps
  and appends land in the tail shard without re-sorting history;
* **lazy record views** — :class:`LazyRecords` sequences that build a
  record from the arrays on ``__getitem__`` and cache it, so repeated
  access returns the identical object (the row engine's identity
  assumptions hold).

Every array here may be a read-only ``np.memmap`` — this is exactly the
object executor workers reconstruct when they attach to a spooled pack
archive (:mod:`repro.columnar.shm`) instead of unpickling the source.
"""

from __future__ import annotations

import math
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.interner import StringInterner
from repro.columnar.packs import (
    FilePack,
    JobPack,
    TransferPack,
    WindowColumns,
    lower_files,
    lower_jobs,
    lower_transfers,
)
from repro.obs import get_obs
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord

DEFAULT_SHARD_SECONDS = 24 * 3600.0


@dataclass
class SidecarColumns:
    """Record fields the match/analysis packs don't carry.

    Together with :class:`WindowColumns` these make record
    reconstruction lossless: ``record == original`` for every row.
    """

    job_label: np.ndarray  # int64 codes (prodsourcelabel)
    job_error_code: np.ndarray  # int64
    job_error_message: np.ndarray  # int64 codes
    file_ftype: np.ndarray  # int64 codes
    transfer_success: np.ndarray  # bool

    def concat(self, other: "SidecarColumns") -> "SidecarColumns":
        return SidecarColumns(**{
            f.name: np.concatenate([getattr(self, f.name), getattr(other, f.name)])
            for f in dataclass_fields(self)
        })


def lower_sidecar(
    jobs: Sequence[JobRecord],
    files: Sequence[FileRecord],
    transfers: Sequence[TransferRecord],
    interner: StringInterner,
) -> SidecarColumns:
    return SidecarColumns(
        job_label=interner.encode([j.prodsourcelabel for j in jobs]),
        job_error_code=np.array([j.error_code for j in jobs], dtype=np.int64),
        job_error_message=interner.encode([j.error_message for j in jobs]),
        file_ftype=interner.encode([f.ftype for f in files]),
        transfer_success=np.array([t.success for t in transfers], dtype=bool),
    )


class LazyRecords(SequenceABC):
    """A sequence of records materialized (and cached) per access.

    ``ids`` are global pack row positions; ``make(row)`` builds the
    record for one row.  Caching per position keeps object identity
    stable across repeated access, which downstream code may rely on;
    equality with eagerly built records holds because the record
    dataclasses compare by value.
    """

    def __init__(self, make, ids: np.ndarray) -> None:
        self._make = make
        self._ids = ids
        self._cache: Dict[int, object] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        if i < 0:
            i += len(self._ids)
        rec = self._cache.get(i)
        if rec is None:
            rec = self._cache[i] = self._make(int(self._ids[i]))
        return rec

    def __iter__(self):
        for i in range(len(self._ids)):
            yield self[i]

    @property
    def row_ids(self) -> np.ndarray:
        return self._ids


class _TimeShards:
    """Per-slice sorted (values, ids) indices over one timestamp column.

    The sharded analogue of a ``FieldIndex`` sorted column: shard key =
    ``floor(value / slice_seconds)``; within a shard, values (and their
    global row ids) are value-sorted, so a window cut is a pair of
    ``searchsorted`` calls per overlapped shard.  Rows with NaN values
    are excluded — exactly like ``None`` fields never entering a
    ``FieldIndex``.
    """

    def __init__(self, values: np.ndarray, slice_seconds: float) -> None:
        self.slice_seconds = float(slice_seconds)
        self.shards: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self.extend(values, base=0)

    @classmethod
    def from_sorted(
        cls, vals: np.ndarray, ids: np.ndarray, slice_seconds: float
    ) -> "_TimeShards":
        """Rebuild shards from a value-sorted (values, ids) flat pair.

        The inverse of :meth:`sorted_flat`: shard keys are monotone in
        value, so each shard is a contiguous run and the rebuild is
        pure slicing — ``vals``/``ids`` may be read-only memmaps and
        the shards become zero-copy views into them.  This is the
        executor-worker attach path.
        """
        self = cls.__new__(cls)
        self.slice_seconds = float(slice_seconds)
        self.shards = {}
        if len(vals):
            keys = np.floor_divide(vals, self.slice_seconds).astype(np.int64)
            edges = np.flatnonzero(np.diff(keys)) + 1
            starts = np.concatenate([[0], edges])
            stops = np.concatenate([edges, [len(keys)]])
            for s, e in zip(starts, stops):
                self.shards[int(keys[s])] = (vals[s:e], ids[s:e])
        return self

    def extend(self, values: np.ndarray, base: int) -> None:
        """Index ``values`` whose global row ids start at ``base``.

        Only shards that actually receive new rows are touched; an
        append of recent telemetry re-merges the tail shard and leaves
        history alone.
        """
        valid = np.flatnonzero(~np.isnan(values))
        if not len(valid):
            return
        vals = values[valid].astype(np.float64)
        ids = (valid + base).astype(np.int64)
        keys = np.floor_divide(vals, self.slice_seconds).astype(np.int64)
        order = np.lexsort((ids, vals))
        vals, ids, keys = vals[order], ids[order], keys[order]
        # keys are monotone in vals, so each shard is a contiguous run
        edges = np.flatnonzero(np.diff(keys)) + 1
        starts = np.concatenate([[0], edges])
        stops = np.concatenate([edges, [len(keys)]])
        for s, e in zip(starts, stops):
            k = int(keys[s])
            old = self.shards.get(k)
            if old is None:
                self.shards[k] = (vals[s:e], ids[s:e])
            else:
                ov, oi = old
                at = np.searchsorted(ov, vals[s:e], side="right")
                self.shards[k] = (np.insert(ov, at, vals[s:e]), np.insert(oi, at, ids[s:e]))

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def route(self, t0: float, t1: float) -> List[int]:
        """Shard keys overlapping [t0, t1), in key order."""
        s = self.slice_seconds
        return sorted(k for k in self.shards if (k + 1) * s > t0 and k * s < t1)

    def ids_in(self, t0: float, t1: float, collection: str = "") -> np.ndarray:
        """Global row ids with value in [t0, t1), id-sorted.

        ``side="left"`` at both bounds is the searchsorted lowering of
        the repo-wide half-open convention (:mod:`repro.window`); the
        routing above may over-select shards, never records.
        """
        keys = self.route(t0, t1)
        obs = get_obs()
        with obs.tracer.span("metastore.shard_route", cat="metastore") as sp:
            sp.set("collection", collection)
            sp.set("shards_scanned", len(keys))
            sp.set("shards_total", len(self.shards))
            parts = []
            for k in keys:
                vals, ids = self.shards[k]
                lo = int(np.searchsorted(vals, t0, side="left"))
                hi = int(np.searchsorted(vals, t1, side="left"))
                if lo < hi:
                    parts.append(ids[lo:hi])
        if obs.enabled:
            obs.metrics.counter(
                "metastore.shard_route", collection=collection, op="range"
            ).inc()
            obs.metrics.counter(
                "metastore.shards_scanned", collection=collection, op="range"
            ).inc(len(keys))
            obs.metrics.counter(
                "metastore.shards_total", collection=collection, op="range"
            ).inc(self.n_shards)
        if not parts:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(parts) if len(parts) > 1 else parts[0].copy()
        out.sort()
        return out

    def sorted_flat(self) -> Tuple[np.ndarray, np.ndarray]:
        """All (values, ids) concatenated in global value order.

        Shard keys are monotone in value and each shard is internally
        sorted, so concatenating shards in key order *is* the global
        sort — this is what the shm exporter spools so workers can
        rebuild shards with pure slicing.
        """
        keys = sorted(self.shards)
        if not keys:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        vals = np.concatenate([self.shards[k][0] for k in keys])
        ids = np.concatenate([self.shards[k][1] for k in keys])
        return vals, ids


def _float_or_none(v: float) -> Optional[float]:
    return None if math.isnan(v) else float(v)


class PackSource:
    """Sharded, array-backed telemetry source with lazy record views."""

    def __init__(
        self,
        columns: WindowColumns,
        sidecar: SidecarColumns,
        shard_seconds: float = DEFAULT_SHARD_SECONDS,
        generation: int = 1,
        index_arrays: Optional[tuple] = None,
    ) -> None:
        self.columns = columns
        self.sidecar = sidecar
        self.interner = columns.interner
        self.shard_seconds = float(shard_seconds)
        self._generation = int(generation)
        with get_obs().tracer.span("metastore.packsource_index", cat="metastore") as sp:
            if index_arrays is not None:
                # Attach path: pre-sorted index arrays (possibly
                # read-only memmaps) spooled by the shm exporter —
                # shard rebuild is pure slicing, no sorts.
                jv, ji, tv, ti, fo = index_arrays
                self._job_shards = _TimeShards.from_sorted(jv, ji, self.shard_seconds)
                self._transfer_shards = _TimeShards.from_sorted(
                    tv, ti, self.shard_seconds
                )
                self._file_order = fo
            else:
                self._job_shards = _TimeShards(columns.jobs.endtime, self.shard_seconds)
                self._transfer_shards = _TimeShards(
                    columns.transfers.starttime, self.shard_seconds
                )
                self._file_order = np.argsort(columns.files.pandaid, kind="stable")
            self._file_pandaid_sorted = columns.files.pandaid[self._file_order]
            sp.set("job_shards", self._job_shards.n_shards)
            sp.set("transfer_shards", self._transfer_shards.n_shards)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        jobs: Sequence[JobRecord],
        files: Sequence[FileRecord],
        transfers: Sequence[TransferRecord],
        interner: Optional[StringInterner] = None,
        shard_seconds: float = DEFAULT_SHARD_SECONDS,
    ) -> "PackSource":
        it = interner if interner is not None else StringInterner()
        columns = WindowColumns.lower(jobs, files, transfers, it)
        sidecar = lower_sidecar(jobs, files, transfers, it)
        return cls(columns, sidecar, shard_seconds=shard_seconds)

    # -- ingest --------------------------------------------------------------

    def append_records(
        self,
        jobs: Sequence[JobRecord] = (),
        files: Sequence[FileRecord] = (),
        transfers: Sequence[TransferRecord] = (),
    ) -> int:
        """Append a telemetry micro-batch; lands in the tail shard(s).

        Columns extend by concatenation (the same cost model as
        ``OpenSearchLike.ingest_batch``); only shards receiving rows are
        re-merged.  Bumps the generation so every cache keyed on it
        invalidates.
        """
        jobs, files, transfers = list(jobs), list(files), list(transfers)
        n = len(jobs) + len(files) + len(transfers)
        if not n:
            return 0
        it = self.interner
        job_base = len(self.columns.jobs)
        transfer_base = len(self.columns.transfers)
        delta_cols = WindowColumns(
            interner=it,
            jobs=lower_jobs(jobs, it),
            files=lower_files(files, it),
            transfers=lower_transfers(transfers, it),
        )
        delta_side = lower_sidecar(jobs, files, transfers, it)
        self.columns = WindowColumns(
            interner=it,
            jobs=self.columns.jobs.concat(delta_cols.jobs),
            files=self.columns.files.concat(delta_cols.files),
            transfers=self.columns.transfers.concat(delta_cols.transfers),
        )
        self.sidecar = self.sidecar.concat(delta_side)
        self._job_shards.extend(delta_cols.jobs.endtime, base=job_base)
        self._transfer_shards.extend(delta_cols.transfers.starttime, base=transfer_base)
        self._file_order = np.argsort(self.columns.files.pandaid, kind="stable")
        self._file_pandaid_sorted = self.columns.files.pandaid[self._file_order]
        self._generation += 1
        return n

    # -- record reconstruction ----------------------------------------------

    def job_record(self, row: int) -> JobRecord:
        jp = self.columns.jobs
        sc = self.sidecar
        decode = self.interner.decode
        return JobRecord(
            pandaid=int(jp.pandaid[row]),
            jeditaskid=int(jp.jeditaskid[row]),
            computingsite=decode(int(jp.site[row])),
            prodsourcelabel=decode(int(sc.job_label[row])),
            status=decode(int(jp.status[row])),
            taskstatus=decode(int(jp.taskstatus[row])),
            creationtime=float(jp.creation[row]),
            starttime=_float_or_none(float(jp.start[row])),
            endtime=_float_or_none(float(jp.endtime[row])),
            ninputfilebytes=int(jp.nin[row]),
            noutputfilebytes=int(jp.nout[row]),
            error_code=int(sc.job_error_code[row]),
            error_message=decode(int(sc.job_error_message[row])),
        )

    def file_record(self, row: int) -> FileRecord:
        fp = self.columns.files
        decode = self.interner.decode
        return FileRecord(
            pandaid=int(fp.pandaid[row]),
            jeditaskid=int(fp.jeditaskid[row]),
            lfn=decode(int(fp.lfn[row])),
            dataset=decode(int(fp.dataset[row])),
            proddblock=decode(int(fp.proddblock[row])),
            scope=decode(int(fp.scope[row])),
            file_size=int(fp.size[row]),
            ftype=decode(int(self.sidecar.file_ftype[row])),
        )

    def transfer_record(self, row: int) -> TransferRecord:
        tp = self.columns.transfers
        decode = self.interner.decode
        return TransferRecord(
            row_id=int(tp.row_id[row]),
            lfn=decode(int(tp.lfn[row])),
            scope=decode(int(tp.scope[row])),
            dataset=decode(int(tp.dataset[row])),
            proddblock=decode(int(tp.proddblock[row])),
            file_size=int(tp.size[row]),
            source_site=decode(int(tp.src[row])),
            destination_site=decode(int(tp.dst[row])),
            activity=decode(int(tp.activity[row])),
            is_download=bool(tp.is_download[row]),
            is_upload=bool(tp.is_upload[row]),
            starttime=float(tp.starttime[row]),
            endtime=float(tp.endtime[row]),
            success=bool(self.sidecar.transfer_success[row]),
            jeditaskid=int(tp.jeditaskid[row]),
        )

    def _job_views(self, ids: np.ndarray) -> LazyRecords:
        return LazyRecords(self.job_record, ids)

    def _file_views(self, ids: np.ndarray) -> LazyRecords:
        return LazyRecords(self.file_record, ids)

    def _transfer_views(self, ids: np.ndarray) -> LazyRecords:
        return LazyRecords(self.transfer_record, ids)

    # -- id-level window queries ---------------------------------------------

    def job_ids_completed_in(
        self, t0: float, t1: float, user_only: bool = False
    ) -> np.ndarray:
        ids = self._job_shards.ids_in(t0, t1, collection="jobs")
        if user_only and len(ids):
            # code_of is -1 when no "user" label was ever interned,
            # which matches no label code — the correct empty answer.
            ids = ids[self.sidecar.job_label[ids] == self.interner.code_of("user")]
        return ids

    def transfer_ids_started_in(self, t0: float, t1: float) -> np.ndarray:
        return self._transfer_shards.ids_in(t0, t1, collection="transfers")

    def file_ids_of_jobs(self, pandaids: np.ndarray) -> np.ndarray:
        """File rows whose pandaid is in ``pandaids``, id-sorted."""
        if not len(pandaids):
            return np.empty(0, dtype=np.int64)
        uniq = np.unique(np.asarray(pandaids, dtype=np.int64))
        lo = np.searchsorted(self._file_pandaid_sorted, uniq, side="left")
        hi = np.searchsorted(self._file_pandaid_sorted, uniq, side="right")
        spans = [self._file_order[a:b] for a, b in zip(lo, hi) if a < b]
        if not spans:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(spans) if len(spans) > 1 else spans[0].copy()
        out.sort()
        return out

    # -- the OpenSearchLike retrieval surface --------------------------------

    def materialize_window(
        self, t0: float, t1: float, user_jobs_only: bool = True
    ) -> Tuple[Sequence[JobRecord], Sequence[FileRecord], Sequence[TransferRecord], WindowColumns]:
        with get_obs().tracer.span("metastore.materialize_window", cat="metastore") as sp:
            job_ids = self.job_ids_completed_in(t0, t1, user_only=user_jobs_only)
            transfer_ids = self.transfer_ids_started_in(t0, t1)
            file_ids = self.file_ids_of_jobs(self.columns.jobs.pandaid[job_ids])
            sp.set("t0", t0)
            sp.set("t1", t1)
            sp.set("n_jobs", len(job_ids))
            sp.set("n_files", len(file_ids))
            sp.set("n_transfers", len(transfer_ids))
            return (
                self._job_views(job_ids),
                self._file_views(file_ids),
                self._transfer_views(transfer_ids),
                self.columns.take(job_ids, file_ids, transfer_ids),
            )

    def jobs_completed_in(self, t0: float, t1: float) -> Sequence[JobRecord]:
        return self._job_views(self.job_ids_completed_in(t0, t1))

    def user_jobs_completed_in(self, t0: float, t1: float) -> Sequence[JobRecord]:
        return self._job_views(self.job_ids_completed_in(t0, t1, user_only=True))

    def transfers_started_in(self, t0: float, t1: float) -> Sequence[TransferRecord]:
        return self._transfer_views(self.transfer_ids_started_in(t0, t1))

    def files_of_job(self, pandaid: int) -> Sequence[FileRecord]:
        return self._file_views(self.file_ids_of_jobs(np.array([pandaid], dtype=np.int64)))

    def files_of_jobs(self, pandaids: Sequence[int]) -> Sequence[FileRecord]:
        return self._file_views(
            self.file_ids_of_jobs(np.asarray(list(pandaids), dtype=np.int64))
        )

    # -- columnar / lifecycle surface ----------------------------------------

    def column_packs(self) -> WindowColumns:
        return self.columns

    @property
    def generation(self) -> int:
        return self._generation

    def shard_counts(self) -> dict:
        return {
            "jobs": self._job_shards.n_shards,
            "files": 1,
            "transfers": self._transfer_shards.n_shards,
        }

    @property
    def n_shards(self) -> int:
        return self._job_shards.n_shards + self._transfer_shards.n_shards

    def index_arrays(self) -> tuple:
        """The five pre-sorted index arrays ``__init__`` can rebuild
        shards from without sorting (what the shm exporter spools)."""
        jv, ji = self._job_shards.sorted_flat()
        tv, ti = self._transfer_shards.sorted_flat()
        return jv, ji, tv, ti, np.asarray(self._file_order)

    def counts(self) -> dict:
        return {
            "jobs": len(self.columns.jobs),
            "files": len(self.columns.files),
            "transfers": len(self.columns.transfers),
        }
