"""Time-sliced (and pluggable site-keyed) collection sharding.

Rucio-style metadata partitioning scaled down to this repo: a
:class:`ShardedCollection` keeps the single document list of a plain
:class:`~repro.metastore.store.Collection` (doc ids stay global, so
they remain valid column-pack row positions) but partitions its *field
indices* by a shard key derived from one field per document.  Range
queries on the key field route to only the shards the window overlaps;
everything else fans out across shards and unions, which reproduces the
unsharded answer exactly — sharding is a representation change, not a
semantic one.

Incremental ingest lands each document in the shard its key selects,
and ``freeze`` is a per-shard no-op for clean shards, so appending
recent telemetry touches only the tail shard (``FieldIndex.full_builds``
does not grow — the same invariant the streaming suite asserts for the
unsharded store).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.metastore.index import FieldIndex
from repro.metastore.store import Collection
from repro.obs import get_obs

#: Shard key for documents whose shard field is missing, None, or not
#: interpretable by the policy.  Such documents still get indexed (in
#: this overflow shard) so fan-out queries see them.
NULL_SHARD = "__null__"


class TimeShardPolicy:
    """Partition by fixed-width time slices of one timestamp field.

    ``shard_key`` is monotone in the field value, so a ``[t0, t1)``
    window overlaps a contiguous run of shard keys — ``route_range``
    returns exactly that run.
    """

    def __init__(self, key_field: str, slice_seconds: float) -> None:
        if slice_seconds <= 0:
            raise ValueError("slice_seconds must be positive")
        self.key_field = key_field
        self.slice_seconds = float(slice_seconds)

    def shard_key(self, value: Any) -> Any:
        if isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
            value, (bool, np.bool_)
        ):
            v = float(value)
            if not math.isnan(v):
                return int(v // self.slice_seconds)
        return NULL_SHARD

    def route_range(
        self,
        keys: Sequence[Any],
        gte: Optional[float] = None,
        lt: Optional[float] = None,
        gt: Optional[float] = None,
        lte: Optional[float] = None,
    ) -> List[Any]:
        """Shard keys (from ``keys``) whose slice may intersect the range.

        Conservative at the bounds (a superset is always correct; the
        per-shard ``FieldIndex`` re-checks exact values), but never
        includes a slice fully outside the window — that is the entire
        point of routing.
        """
        lo = max((b for b in (gte, gt) if b is not None), default=-math.inf)
        hi = min((b for b in (lt, lte) if b is not None), default=math.inf)
        s = self.slice_seconds
        out = []
        for k in keys:
            if k == NULL_SHARD:
                continue  # key-field value was None: not in this index at all
            if (k + 1) * s > lo and k * s <= hi:
                out.append(k)
        return out

    def route_term(self, keys: Sequence[Any], value: Any) -> List[Any]:
        k = self.shard_key(value)
        return [k] if k in set(keys) else []


class SiteShardPolicy:
    """Partition by a categorical field (e.g. ``computingsite``).

    Term lookups on the key field hit exactly one shard; range queries
    fan out (a categorical key has no slice order to exploit).
    """

    def __init__(self, key_field: str) -> None:
        self.key_field = key_field

    def shard_key(self, value: Any) -> Any:
        if isinstance(value, str) and value:
            return value
        return NULL_SHARD

    def route_range(self, keys: Sequence[Any], **bounds: Optional[float]) -> List[Any]:
        return [k for k in keys if k != NULL_SHARD]

    def route_term(self, keys: Sequence[Any], value: Any) -> List[Any]:
        k = self.shard_key(value)
        return [k] if k in set(keys) else []


class ShardedFieldIndex:
    """Facade presenting one field's per-shard indices as a single index.

    Implements the full ``FieldIndex`` lookup surface (term / terms /
    range / range_ids / exists / cardinality), routing to a subset of
    shards when the queried field is the shard key and fanning out
    otherwise.  Looks up shards live, so it stays valid across later
    ingests.
    """

    def __init__(self, name: str, collection: "ShardedCollection") -> None:
        self.name = name
        self._col = collection

    def _shard_items(self):
        """(shard_key, FieldIndex) pairs for shards that saw this field."""
        name = self.name
        return [
            (key, indices[name])
            for key, indices in self._col.shard_tables()
            if name in indices
        ]

    def _record_route(self, scanned: int, total: int, op: str) -> None:
        obs = get_obs()
        if obs.enabled:
            obs.metrics.counter(
                "metastore.shard_route",
                collection=self._col.name,
                field=self.name,
                op=op,
            ).inc()
            obs.metrics.counter(
                "metastore.shards_scanned", collection=self._col.name, op=op
            ).inc(scanned)
            obs.metrics.counter(
                "metastore.shards_total", collection=self._col.name, op=op
            ).inc(total)

    # -- lookups (FieldIndex surface) ----------------------------------------

    def term(self, value: Any) -> Set[int]:
        items = self._shard_items()
        if self.name == self._col.policy.key_field:
            routed = set(self._col.policy.route_term([k for k, _ in items], value))
            selected = [idx for k, idx in items if k in routed]
        else:
            selected = [idx for _, idx in items]
        self._record_route(len(selected), len(items), "term")
        out: Set[int] = set()
        for idx in selected:
            out |= idx.term(value)
        return out

    def terms(self, values) -> Set[int]:
        out: Set[int] = set()
        items = self._shard_items()
        self._record_route(len(items), len(items), "terms")
        for _, idx in items:
            out |= idx.terms(values)
        return out

    def range_ids(
        self,
        gte: Optional[float] = None,
        lt: Optional[float] = None,
        gt: Optional[float] = None,
        lte: Optional[float] = None,
    ) -> np.ndarray:
        items = self._shard_items()
        if any(not idx.is_numeric for _, idx in items):
            raise TypeError(f"field {self.name!r} is not numeric; range query invalid")
        if self.name == self._col.policy.key_field:
            routed = self._col.policy.route_range(
                [k for k, _ in items], gte=gte, lt=lt, gt=gt, lte=lte
            )
            routed_set = set(routed)
            selected = [(k, idx) for k, idx in items if k in routed_set]
        else:
            selected = items
        with get_obs().tracer.span("metastore.shard_route", cat="metastore") as sp:
            sp.set("collection", self._col.name)
            sp.set("field", self.name)
            sp.set("shards_scanned", len(selected))
            sp.set("shards_total", len(items))
            parts = [
                idx.range_ids(gte=gte, lt=lt, gt=gt, lte=lte) for _, idx in selected
            ]
            parts = [p for p in parts if len(p)]
        self._record_route(len(selected), len(items), "range")
        if not parts:
            return np.empty(0, dtype=np.int64)
        if len(parts) == 1:
            return parts[0]
        # Value order across shards is NOT restored here; every caller
        # (Collection.search_ids, FieldIndex.range) re-sorts or goes
        # through a set, exactly like the single-index slice.
        return np.concatenate(parts)

    def range(
        self,
        gte: Optional[float] = None,
        lt: Optional[float] = None,
        gt: Optional[float] = None,
        lte: Optional[float] = None,
    ) -> Set[int]:
        return set(int(d) for d in self.range_ids(gte=gte, lt=lt, gt=gt, lte=lte))

    def exists(self) -> Set[int]:
        out: Set[int] = set()
        for _, idx in self._shard_items():
            out |= idx.exists()
        return out

    @property
    def is_numeric(self) -> bool:
        return all(idx.is_numeric for _, idx in self._shard_items())

    @property
    def cardinality(self) -> int:
        values: Set[Any] = set()
        for _, idx in self._shard_items():
            values.update(idx._by_value.keys())
        return len(values)


class ShardedCollection(Collection):
    """A Collection whose field indices are partitioned by a shard policy."""

    def __init__(
        self,
        name: str,
        indexed_fields: Optional[Sequence[str]] = None,
        policy: Optional[Any] = None,
    ) -> None:
        super().__init__(name, indexed_fields)
        if policy is None:
            raise ValueError("ShardedCollection requires a shard policy")
        self.policy = policy
        #: shard key -> {field name -> FieldIndex over GLOBAL doc ids}
        self._shards: Dict[Any, Dict[str, FieldIndex]] = {}
        self._facades: Dict[str, ShardedFieldIndex] = {}

    # -- ingest routing ------------------------------------------------------

    def _indices_for(self, mapping: Dict[str, Any]) -> Dict[str, FieldIndex]:
        key = self.policy.shard_key(mapping.get(self.policy.key_field))
        indices = self._shards.get(key)
        if indices is None:
            indices = self._shards[key] = {}
        return indices

    def freeze(self) -> None:
        # Per-shard freeze; FieldIndex.freeze() is a no-op on clean
        # shards, so a tail-shard append never re-sorts earlier shards.
        for indices in self._shards.values():
            for idx in indices.values():
                idx.freeze()

    # -- query surface -------------------------------------------------------

    def field_index(self, name: str) -> ShardedFieldIndex:  # type: ignore[override]
        facade = self._facades.get(name)
        if facade is None:
            facade = self._facades[name] = ShardedFieldIndex(name, self)
        return facade

    def shard_tables(self):
        """Deterministically ordered (shard_key, index-table) pairs."""
        return sorted(self._shards.items(), key=lambda kv: (kv[0] == NULL_SHARD, str(kv[0])))

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_keys(self) -> List[Any]:
        return [k for k, _ in self.shard_tables()]
