"""Per-field indices.

A :class:`FieldIndex` maps field values to document ids (an inverted
index for exact-term lookup) and keeps a sorted column for range scans.
Numeric columns use numpy ``searchsorted`` so range queries are
O(log n + hits) instead of full scans — the "efficient computing for
scalability" §5.5 calls for.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

import numpy as np


class FieldIndex:
    """Index over one field of one collection.

    Built once after bulk ingestion (``freeze``); lookups before
    freezing fall back to the hash index only.  Appends after the first
    freeze merge into the sorted column instead of rebuilding it — the
    streaming ingest path (:meth:`Collection.append`) freezes once per
    micro-batch, so a full re-sort there would make ingest quadratic
    over a run.
    """

    #: Process-wide count of full sorted-column rebuilds.  Incremental
    #: appends must not grow this (tests assert it); only the first
    #: freeze of a column pays the full sort.
    full_builds = 0

    def __init__(self, name: str) -> None:
        self.name = name
        self._by_value: Dict[Any, List[int]] = {}
        self._doc_ids: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._numeric: bool = True
        #: Set by :meth:`add`, cleared by :meth:`freeze`.  Keeping the
        #: stale frozen arrays around (instead of dropping them on every
        #: add) means ingest interleaved with range queries re-sorts the
        #: column once per batch, not once per query.
        self._dirty: bool = False
        #: (value, doc_id) pairs added since the last freeze — the
        #: delta an incremental freeze merges into the frozen arrays.
        self._pending: List[tuple] = []

    @staticmethod
    def _is_numeric(value: Any) -> bool:
        # bools are ints to isinstance(), but a True/False column is a
        # flag, not a range-scannable measure — don't sort it as one.
        return isinstance(
            value, (int, float, np.integer, np.floating)
        ) and not isinstance(value, (bool, np.bool_))

    def add(self, doc_id: int, value: Any) -> None:
        if value is None:
            return
        self._by_value.setdefault(value, []).append(doc_id)
        if self._numeric and not self._is_numeric(value):
            self._numeric = False
            self._pending.clear()
        if self._numeric:
            self._pending.append((value, doc_id))
        self._dirty = True

    def freeze(self) -> None:
        """(Re)build the sorted column for range queries (numeric only).

        No-op when nothing was added since the last freeze, so callers
        can freeze eagerly per batch without re-sorting clean columns.
        Once a column is frozen, later batches merge O(delta log n)
        into the existing arrays instead of re-sorting everything —
        doc ids only grow, so inserting each pending pair after its
        equal-valued predecessors (``side="right"``) reproduces the
        full rebuild's (value, doc_id) order exactly.
        """
        if not self._numeric or not self._by_value:
            self._values = None
            self._doc_ids = None
            self._dirty = False
            self._pending.clear()
            return
        if not self._dirty and self._values is not None:
            return
        if self._values is not None and self._pending:
            self._pending.sort()
            new_values = np.array([p[0] for p in self._pending], dtype=float)
            new_ids = np.array([p[1] for p in self._pending], dtype=np.int64)
            at = np.searchsorted(self._values, new_values, side="right")
            self._values = np.insert(self._values, at, new_values)
            self._doc_ids = np.insert(self._doc_ids, at, new_ids)
        else:
            FieldIndex.full_builds += 1
            pairs = [(v, d) for v, docs in self._by_value.items() for d in docs]
            pairs.sort()
            self._values = np.array([p[0] for p in pairs], dtype=float)
            self._doc_ids = np.array([p[1] for p in pairs], dtype=np.int64)
        self._dirty = False
        self._pending.clear()

    @property
    def is_numeric(self) -> bool:
        """Whether every value seen so far supports range scans."""
        return self._numeric

    # -- lookups -------------------------------------------------------------

    def term(self, value: Any) -> Set[int]:
        return set(self._by_value.get(value, ()))

    def terms(self, values) -> Set[int]:
        out: Set[int] = set()
        for v in values:
            out.update(self._by_value.get(v, ()))
        return out

    def range_ids(
        self,
        gte: Optional[float] = None,
        lt: Optional[float] = None,
        gt: Optional[float] = None,
        lte: Optional[float] = None,
    ) -> np.ndarray:
        """Doc ids in range as an ndarray (value-sorted, not id-sorted).

        The array fast path: callers that only need an ordered document
        list (e.g. :meth:`Collection.search` on a bare range query) can
        sort this slice directly instead of round-tripping through a
        Python set — the difference is visible on every window
        preselection.
        """
        if not self._numeric:
            raise TypeError(f"field {self.name!r} is not numeric; range query invalid")
        if self._values is None or self._dirty:
            self.freeze()
        if self._values is None:  # empty index
            return np.empty(0, dtype=np.int64)
        lo_idx = 0
        hi_idx = len(self._values)
        if gte is not None:
            lo_idx = int(np.searchsorted(self._values, gte, side="left"))
        if gt is not None:
            lo_idx = max(lo_idx, int(np.searchsorted(self._values, gt, side="right")))
        if lt is not None:
            hi_idx = min(hi_idx, int(np.searchsorted(self._values, lt, side="left")))
        if lte is not None:
            hi_idx = min(hi_idx, int(np.searchsorted(self._values, lte, side="right")))
        if lo_idx >= hi_idx:
            return np.empty(0, dtype=np.int64)
        assert self._doc_ids is not None
        return self._doc_ids[lo_idx:hi_idx]

    def range(
        self,
        gte: Optional[float] = None,
        lt: Optional[float] = None,
        gt: Optional[float] = None,
        lte: Optional[float] = None,
    ) -> Set[int]:
        """Doc ids whose value falls in the (half-open by default) range."""
        return set(int(d) for d in self.range_ids(gte=gte, lt=lt, gt=gt, lte=lte))

    def exists(self) -> Set[int]:
        out: Set[int] = set()
        for docs in self._by_value.values():
            out.update(docs)
        return out

    @property
    def cardinality(self) -> int:
        return len(self._by_value)
