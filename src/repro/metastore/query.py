"""Query DSL.

A small algebra of composable query nodes (Term / Terms / Range /
Exists / Bool / MatchAll) mirroring the subset of the OpenSearch query
DSL the paper's retrieval module needs.  Each node evaluates to a set
of document ids against a :class:`~repro.metastore.store.DocumentStore`
collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Protocol, Sequence, Set


class _Collection(Protocol):
    """What a query needs from a collection (structural typing)."""

    def field_index(self, name: str): ...
    def all_ids(self) -> Set[int]: ...


class Query(Protocol):
    def evaluate(self, collection: _Collection) -> Set[int]: ...


@dataclass(frozen=True)
class Term:
    """Exact value match on one field."""

    fld: str
    value: Any

    def evaluate(self, collection: _Collection) -> Set[int]:
        return collection.field_index(self.fld).term(self.value)


@dataclass(frozen=True)
class Terms:
    """Match any of several values (OR within one field)."""

    fld: str
    values: tuple

    def __init__(self, fld: str, values: Sequence[Any]) -> None:
        object.__setattr__(self, "fld", fld)
        object.__setattr__(self, "values", tuple(values))

    def evaluate(self, collection: _Collection) -> Set[int]:
        return collection.field_index(self.fld).terms(self.values)


@dataclass(frozen=True)
class Range:
    """Numeric range on one field; bounds are optional."""

    fld: str
    gte: Optional[float] = None
    lt: Optional[float] = None
    gt: Optional[float] = None
    lte: Optional[float] = None

    def evaluate(self, collection: _Collection) -> Set[int]:
        return collection.field_index(self.fld).range(
            gte=self.gte, lt=self.lt, gt=self.gt, lte=self.lte
        )

    def evaluate_ids(self, collection: _Collection):
        """Array fast path: doc ids as an ndarray, skipping set construction.

        :meth:`Collection.search` uses this when the whole query is a
        single range — the dominant preselection pattern (`endtime` /
        `starttime` windows) — so a window scan costs one sorted-column
        slice plus one sort instead of a set build over every hit.
        """
        return collection.field_index(self.fld).range_ids(
            gte=self.gte, lt=self.lt, gt=self.gt, lte=self.lte
        )


@dataclass(frozen=True)
class Exists:
    """Field is present and non-null."""

    fld: str

    def evaluate(self, collection: _Collection) -> Set[int]:
        return collection.field_index(self.fld).exists()


@dataclass(frozen=True)
class MatchAll:
    def evaluate(self, collection: _Collection) -> Set[int]:
        return collection.all_ids()


@dataclass
class Bool:
    """Boolean composition: must (AND), should (OR), must_not (NOT)."""

    must: List[Query] = field(default_factory=list)
    should: List[Query] = field(default_factory=list)
    must_not: List[Query] = field(default_factory=list)

    def evaluate(self, collection: _Collection) -> Set[int]:
        if self.must:
            # Evaluate all, intersect smallest-first to keep sets tight.
            sets = sorted((q.evaluate(collection) for q in self.must), key=len)
            result = sets[0].copy()
            for s in sets[1:]:
                result &= s
                if not result:
                    break
        elif self.should:
            result = set()
        else:
            result = collection.all_ids()

        if self.should:
            union: Set[int] = set()
            for q in self.should:
                union |= q.evaluate(collection)
            result = (result & union) if self.must else union

        for q in self.must_not:
            result -= q.evaluate(collection)
        return result
