"""OpenSearch-like façade.

The paper's analysis workflow (Fig 4) starts with an "OpenSearch
framework-based querying module" that retrieves job metadata from PanDA
and file/transfer metadata from Rucio for a common time window.  This
façade reproduces that surface: ingest the degraded telemetry, then ask
for jobs completed in a window and transfers started in a window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.columnar.interner import StringInterner
from repro.columnar.packs import WindowColumns
from repro.metastore.query import Bool, Query, Range, Term, Terms
from repro.metastore.store import Collection, DocumentStore
from repro.obs import get_obs
from repro.telemetry.degradation import DegradedTelemetry
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord


@dataclass
class SearchResult:
    """A retrieval result with provenance."""

    collection: str
    query_description: str
    hits: List


class OpenSearchLike:
    """Query layer over the three telemetry collections."""

    JOB_FIELDS = (
        "pandaid", "jeditaskid", "computingsite", "prodsourcelabel",
        "status", "taskstatus", "creationtime", "starttime", "endtime",
    )
    FILE_FIELDS = (
        "pandaid", "jeditaskid", "lfn", "dataset", "proddblock", "scope",
        "file_size", "ftype",
    )
    TRANSFER_FIELDS = (
        "row_id", "lfn", "dataset", "proddblock", "scope", "file_size",
        "source_site", "destination_site", "activity", "is_download",
        "is_upload", "starttime", "endtime", "jeditaskid", "success",
    )

    def __init__(
        self,
        shard_seconds: Optional[float] = None,
        shard_policies: Optional[dict] = None,
    ) -> None:
        # Time-sliced sharding (DESIGN §11): jobs partition on the field
        # their window preselection ranges over (endtime), transfers on
        # theirs (starttime).  Files are looked up by pandaid, which has
        # no useful time order — they stay unsharded unless the caller
        # supplies a policy explicitly.
        policies = dict(shard_policies or {})
        if shard_seconds:
            from repro.metastore.sharding import TimeShardPolicy

            policies.setdefault("jobs", TimeShardPolicy("endtime", shard_seconds))
            policies.setdefault("transfers", TimeShardPolicy("starttime", shard_seconds))
        self.store = DocumentStore()
        self.jobs: Collection = self.store.create(
            "jobs", self.JOB_FIELDS, policy=policies.get("jobs")
        )
        self.files: Collection = self.store.create(
            "files", self.FILE_FIELDS, policy=policies.get("files")
        )
        self.transfers: Collection = self.store.create(
            "transfers", self.TRANSFER_FIELDS, policy=policies.get("transfers")
        )
        #: Shared dictionary encoding for the columnar engine.  Warmed
        #: once at ingest (see :meth:`warm_interner`), so every window
        #: lowering afterwards reuses stable codes instead of growing a
        #: private vocabulary per window.
        self.interner = StringInterner()
        self._packs: Optional[WindowColumns] = None
        self._packs_generation = -1

    @classmethod
    def from_telemetry(
        cls,
        telemetry: DegradedTelemetry,
        shard_seconds: Optional[float] = None,
        shard_policies: Optional[dict] = None,
    ) -> "OpenSearchLike":
        os_like = cls(shard_seconds=shard_seconds, shard_policies=shard_policies)
        os_like.jobs.ingest(telemetry.jobs)
        os_like.files.ingest(telemetry.files)
        os_like.transfers.ingest(telemetry.transfers)
        os_like.store.freeze()
        os_like.warm_interner()
        return os_like

    def warm_interner(self) -> int:
        """Intern every string field Algorithm 1 joins or filters on.

        Idempotent (codes are append-only); returns the vocabulary
        size.  Call after out-of-band ingests to keep window lowerings
        allocation-free on the dictionary side.
        """
        self._warm(self.jobs, self.files, self.transfers)
        return len(self.interner)

    def _warm(self, jobs, files, transfers) -> None:
        intern = self.interner.intern
        for j in jobs:
            intern(j.computingsite)
            intern(j.status)
            intern(j.taskstatus)
        for f in files:
            intern(f.lfn)
            intern(f.dataset)
            intern(f.proddblock)
            intern(f.scope)
        for t in transfers:
            intern(t.lfn)
            intern(t.dataset)
            intern(t.proddblock)
            intern(t.scope)
            intern(t.source_site)
            intern(t.destination_site)
            intern(t.activity)

    def ingest_batch(
        self,
        jobs: Sequence[JobRecord] = (),
        files: Sequence[FileRecord] = (),
        transfers: Sequence[TransferRecord] = (),
    ) -> int:
        """Append a telemetry micro-batch; all derived state stays hot.

        The streaming ingest primitive: each collection appends with an
        incremental index re-freeze (``Collection.append``), the delta
        strings warm the shared interner, and — when the full-table
        column packs were already lowered — only the delta records are
        lowered and concatenated onto them.  The store generation bumps
        with every non-empty append, so ``ArtifactCache`` entries and
        persistent worker pools keyed on it invalidate exactly as they
        would for a bulk ingest.
        """
        jobs, files, transfers = list(jobs), list(files), list(transfers)
        obs = get_obs()
        with obs.tracer.span("metastore.ingest_batch", cat="metastore") as sp:
            had_packs = self._packs is not None
            n = 0
            if jobs:
                n += self.jobs.append(jobs)
            if files:
                n += self.files.append(files)
            if transfers:
                n += self.transfers.append(transfers)
            self._warm(jobs, files, transfers)
            if n and had_packs:
                self._packs = self._packs.extend(jobs, files, transfers)
                self._packs_generation = self.generation
            sp.set("n_jobs", len(jobs))
            sp.set("n_files", len(files))
            sp.set("n_transfers", len(transfers))
            sp.set("extended_packs", bool(n and had_packs))
        if obs.enabled:
            obs.metrics.counter("metastore.ingested_records").inc(n)
        return n

    # -- columnar lowering ----------------------------------------------------

    def column_packs(self) -> WindowColumns:
        """Full-table column packs, lowered once per data generation.

        Doc ids double as pack row positions (both follow ingestion
        order), so any id array from the query layer cuts a window's
        packs out of these via pure NumPy gathers — the per-record
        Python cost of lowering is paid once per ingest, not per
        window.  Stale packs are rebuilt automatically after further
        ingests (generation check).
        """
        gen = self.generation
        if self._packs is None or self._packs_generation != gen:
            with get_obs().tracer.span("metastore.lower_packs", cat="metastore") as sp:
                self._packs = WindowColumns.lower(
                    list(self.jobs), list(self.files), list(self.transfers),
                    self.interner,
                )
                self._packs_generation = gen
                sp.set("n_jobs", len(self.jobs))
                sp.set("n_files", len(self.files))
                sp.set("n_transfers", len(self.transfers))
        return self._packs

    def materialize_window(
        self, t0: float, t1: float, user_jobs_only: bool = True
    ) -> Tuple[List[JobRecord], List[FileRecord], List[TransferRecord], WindowColumns]:
        """One window's records *and* pre-lowered columns, in one pass.

        The §4.2 pre-selection (jobs completed in the window, one
        batched file lookup, transfers started in the window) evaluated
        to id arrays, then resolved twice from the same ids: to record
        lists (identical to the individual query methods) and to column
        packs gathered from :meth:`column_packs`.
        """
        with get_obs().tracer.span("metastore.materialize_window", cat="metastore") as sp:
            packs = self.column_packs()
            if user_jobs_only:
                job_query: Query = Bool(
                    must=[Range("endtime", gte=t0, lt=t1), Term("prodsourcelabel", "user")]
                )
            else:
                job_query = Range("endtime", gte=t0, lt=t1)
            job_ids = self.jobs.search_ids(job_query)
            transfer_ids = self.transfers.search_ids(Range("starttime", gte=t0, lt=t1))
            file_ids = self.files.search_ids(
                Terms("pandaid", packs.jobs.pandaid[job_ids].tolist())
            )
            sp.set("t0", t0)
            sp.set("t1", t1)
            sp.set("n_jobs", len(job_ids))
            sp.set("n_files", len(file_ids))
            sp.set("n_transfers", len(transfer_ids))
            return (
                self.jobs.take(job_ids),
                self.files.take(file_ids),
                self.transfers.take(transfer_ids),
                packs.take(job_ids, file_ids, transfer_ids),
            )

    # -- the retrieval patterns §4.2 relies on -------------------------------

    def jobs_completed_in(self, t0: float, t1: float) -> List[JobRecord]:
        """Jobs whose end time falls in [t0, t1) — running jobs excluded."""
        return self.jobs.search(Range("endtime", gte=t0, lt=t1))

    def user_jobs_completed_in(self, t0: float, t1: float) -> List[JobRecord]:
        return self.jobs.search(
            Bool(must=[Range("endtime", gte=t0, lt=t1), Term("prodsourcelabel", "user")])
        )

    def transfers_started_in(self, t0: float, t1: float) -> List[TransferRecord]:
        return self.transfers.search(Range("starttime", gte=t0, lt=t1))

    def transfers_with_taskid_in(self, t0: float, t1: float) -> List[TransferRecord]:
        return self.transfers.search(
            Bool(must=[Range("starttime", gte=t0, lt=t1), Range("jeditaskid", gt=0)])
        )

    def files_of_job(self, pandaid: int) -> List[FileRecord]:
        return self.files.search(Term("pandaid", pandaid))

    def files_of_jobs(self, pandaids: Sequence[int]) -> List[FileRecord]:
        """Batched file lookup: one terms query for a whole job set.

        Replaces the N+1 pattern of calling :meth:`files_of_job` per
        job during preselection; results come back in storage order,
        which is deterministic across processes.
        """
        with get_obs().tracer.span("metastore.files_of_jobs", cat="metastore") as sp:
            hits = self.files.search(Terms("pandaid", pandaids))
            sp.set("n_jobs", len(pandaids))
            sp.set("n_hits", len(hits))
            return hits

    def files_of_task(self, jeditaskid: int) -> List[FileRecord]:
        return self.files.search(Term("jeditaskid", jeditaskid))

    @property
    def generation(self) -> int:
        """Data version of the underlying store (cache-invalidation key)."""
        return self.store.generation

    def shard_counts(self) -> dict:
        """Shards per collection (1 for unsharded collections)."""
        return {
            name: getattr(self.store.collection(name), "n_shards", 1)
            for name in self.store.names()
        }

    def search(self, collection: str, query: Query, description: str = "") -> SearchResult:
        with get_obs().tracer.span("metastore.search", cat="metastore") as sp:
            hits = self.store.collection(collection).search(query)
            sp.set("collection", collection)
            sp.set("n_hits", len(hits))
        return SearchResult(collection=collection, query_description=description, hits=hits)
