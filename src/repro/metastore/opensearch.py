"""OpenSearch-like façade.

The paper's analysis workflow (Fig 4) starts with an "OpenSearch
framework-based querying module" that retrieves job metadata from PanDA
and file/transfer metadata from Rucio for a common time window.  This
façade reproduces that surface: ingest the degraded telemetry, then ask
for jobs completed in a window and transfers started in a window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.metastore.query import Bool, Query, Range, Term, Terms
from repro.metastore.store import Collection, DocumentStore
from repro.telemetry.degradation import DegradedTelemetry
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord


@dataclass
class SearchResult:
    """A retrieval result with provenance."""

    collection: str
    query_description: str
    hits: List


class OpenSearchLike:
    """Query layer over the three telemetry collections."""

    JOB_FIELDS = (
        "pandaid", "jeditaskid", "computingsite", "prodsourcelabel",
        "status", "taskstatus", "creationtime", "starttime", "endtime",
    )
    FILE_FIELDS = (
        "pandaid", "jeditaskid", "lfn", "dataset", "proddblock", "scope",
        "file_size", "ftype",
    )
    TRANSFER_FIELDS = (
        "row_id", "lfn", "dataset", "proddblock", "scope", "file_size",
        "source_site", "destination_site", "activity", "is_download",
        "is_upload", "starttime", "endtime", "jeditaskid", "success",
    )

    def __init__(self) -> None:
        self.store = DocumentStore()
        self.jobs: Collection = self.store.create("jobs", self.JOB_FIELDS)
        self.files: Collection = self.store.create("files", self.FILE_FIELDS)
        self.transfers: Collection = self.store.create("transfers", self.TRANSFER_FIELDS)

    @classmethod
    def from_telemetry(cls, telemetry: DegradedTelemetry) -> "OpenSearchLike":
        os_like = cls()
        os_like.jobs.ingest(telemetry.jobs)
        os_like.files.ingest(telemetry.files)
        os_like.transfers.ingest(telemetry.transfers)
        os_like.store.freeze()
        return os_like

    # -- the retrieval patterns §4.2 relies on -------------------------------

    def jobs_completed_in(self, t0: float, t1: float) -> List[JobRecord]:
        """Jobs whose end time falls in [t0, t1) — running jobs excluded."""
        return self.jobs.search(Range("endtime", gte=t0, lt=t1))

    def user_jobs_completed_in(self, t0: float, t1: float) -> List[JobRecord]:
        return self.jobs.search(
            Bool(must=[Range("endtime", gte=t0, lt=t1), Term("prodsourcelabel", "user")])
        )

    def transfers_started_in(self, t0: float, t1: float) -> List[TransferRecord]:
        return self.transfers.search(Range("starttime", gte=t0, lt=t1))

    def transfers_with_taskid_in(self, t0: float, t1: float) -> List[TransferRecord]:
        return self.transfers.search(
            Bool(must=[Range("starttime", gte=t0, lt=t1), Range("jeditaskid", gt=0)])
        )

    def files_of_job(self, pandaid: int) -> List[FileRecord]:
        return self.files.search(Term("pandaid", pandaid))

    def files_of_jobs(self, pandaids: Sequence[int]) -> List[FileRecord]:
        """Batched file lookup: one terms query for a whole job set.

        Replaces the N+1 pattern of calling :meth:`files_of_job` per
        job during preselection; results come back in storage order,
        which is deterministic across processes.
        """
        return self.files.search(Terms("pandaid", pandaids))

    def files_of_task(self, jeditaskid: int) -> List[FileRecord]:
        return self.files.search(Term("jeditaskid", jeditaskid))

    @property
    def generation(self) -> int:
        """Data version of the underlying store (cache-invalidation key)."""
        return self.store.generation

    def search(self, collection: str, query: Query, description: str = "") -> SearchResult:
        hits = self.store.collection(collection).search(query)
        return SearchResult(collection=collection, query_description=description, hits=hits)
