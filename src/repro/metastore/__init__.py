"""Metadata store: the OpenSearch-like querying module of Fig 4.

An in-memory document store with per-field hash indices and range
queries.  The analysis workflow retrieves job, file, and transfer
metadata through this store exactly as the paper's querying module
retrieves them from OpenSearch — time-window preselection first, field
filters after.
"""

from repro.metastore.index import FieldIndex
from repro.metastore.query import Query, Term, Terms, Range, Bool, Exists, MatchAll
from repro.metastore.store import DocumentStore
from repro.metastore.opensearch import OpenSearchLike, SearchResult
from repro.metastore.sharding import (
    NULL_SHARD,
    ShardedCollection,
    ShardedFieldIndex,
    SiteShardPolicy,
    TimeShardPolicy,
)
from repro.metastore.packsource import PackSource, SidecarColumns

__all__ = [
    "FieldIndex",
    "NULL_SHARD",
    "PackSource",
    "ShardedCollection",
    "ShardedFieldIndex",
    "SidecarColumns",
    "SiteShardPolicy",
    "TimeShardPolicy",
    "Query",
    "Term",
    "Terms",
    "Range",
    "Bool",
    "Exists",
    "MatchAll",
    "DocumentStore",
    "OpenSearchLike",
    "SearchResult",
]
