"""Synthetic WLCG-like grid infrastructure.

Models the physical substrate the paper's systems run on: computing
sites organised in tiers 0-3 across world regions, Rucio storage
elements (RSEs) attached to sites, and a network model with
heterogeneous nominal bandwidth, diurnal modulation, and stochastic
congestion.  The default preset builds a 111-site grid (110 real sites
plus the ``UNKNOWN`` pseudo-site that aggregates mislabelled transfer
endpoints, mirroring §3.2 of the paper).
"""

from repro.grid.tier import Tier
from repro.grid.site import Site, UNKNOWN_SITE_NAME
from repro.grid.rse import StorageElement, RseKind
from repro.grid.network import LinkProfile, NetworkModel
from repro.grid.topology import GridTopology
from repro.grid.presets import build_wlcg, WlcgPresetConfig

__all__ = [
    "Tier",
    "Site",
    "UNKNOWN_SITE_NAME",
    "StorageElement",
    "RseKind",
    "LinkProfile",
    "NetworkModel",
    "GridTopology",
    "build_wlcg",
    "WlcgPresetConfig",
]
