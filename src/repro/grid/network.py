"""Network model.

Bandwidth between two sites is modelled as

``effective(t) = nominal * diurnal(t) * congestion(link, t) / share``

* ``nominal`` derives from the endpoint tiers (LAN speed for intra-site
  transfers, min of the WAN uplinks for remote ones), scaled down for
  inter-region distance and perturbed by a stable per-pair factor so the
  grid is heterogeneous.
* ``diurnal(t)`` is a smooth daily cycle (busy hours depress capacity).
* ``congestion(link, t)`` is a piecewise-constant stochastic factor,
  deterministic in ``(seed, link, time-bucket)``, with occasional deep
  drops — reproducing the short-interval fluctuation the paper measures
  in Figs 7-8 (10 → 130 MBps swings remote, 60 → 430 MBps local).
* ``share`` is the number of concurrently active transfers on the link;
  the transfer engine snapshots it at transfer start.

Evaluating bandwidth is a pure function of time, so transfer durations
can be integrated without a global bandwidth-recomputation event storm —
the dominant cost stays O(active transfers), per the HPC guides' advice
to keep hot paths simple and vectorisable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.grid.site import Site, UNKNOWN_SITE_NAME
from repro.grid.tier import TIER_LAN_BANDWIDTH, TIER_WAN_BANDWIDTH


@dataclass(frozen=True)
class LinkProfile:
    """Static parameters of a (source site, destination site) link."""

    src: str
    dst: str
    nominal_bandwidth: float  # bytes/s under ideal conditions
    latency: float  # seconds, fixed per-transfer overhead
    congestion_sigma: float  # spread of the lognormal congestion factor
    deep_drop_prob: float  # chance a bucket collapses to ~5-20% capacity
    diurnal_amplitude: float  # 0..1, depth of the daily cycle

    @property
    def is_local(self) -> bool:
        return self.src == self.dst


#: Bandwidth multiplier applied when endpoints sit in different regions.
CROSS_REGION_FACTOR = 0.55
#: Length of one congestion bucket (piecewise-constant period).
CONGESTION_BUCKET_SECONDS = 900.0
#: Hour of day at which the diurnal cycle bottoms out (busiest).
DIURNAL_PEAK_HOUR = 15.0


def _stable_u32(*parts: object) -> int:
    """Stable 32-bit hash of a tuple of printable parts (crc32-based)."""
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class NetworkModel:
    """Derives link profiles and time-varying effective bandwidth.

    Parameters
    ----------
    sites:
        Mapping site name -> :class:`Site`.
    seed:
        Root seed; all congestion draws are deterministic in it.
    """

    def __init__(self, sites: Dict[str, Site], seed: int = 0) -> None:
        self.sites = sites
        self.seed = int(seed)
        self._profiles: Dict[Tuple[str, str], LinkProfile] = {}
        self._active: Dict[Tuple[str, str], int] = {}

    # -- static link profile --------------------------------------------------

    def profile(self, src: str, dst: str) -> LinkProfile:
        """Link profile for the ordered pair, derived lazily and cached."""
        key = (src, dst)
        cached = self._profiles.get(key)
        if cached is not None:
            return cached

        s = self.sites[src]
        d = self.sites[dst]
        if src == dst:
            nominal = TIER_LAN_BANDWIDTH[s.tier]
            latency = 0.2
            sigma = 0.55
            drop = 0.06
            diurnal = 0.25
        else:
            nominal = min(TIER_WAN_BANDWIDTH[s.tier], TIER_WAN_BANDWIDTH[d.tier])
            if s.region != d.region:
                nominal *= CROSS_REGION_FACTOR
            latency = 2.0 if s.region == d.region else 6.0
            sigma = 0.75
            drop = 0.10
            diurnal = 0.35

        # Stable per-pair heterogeneity in [0.5, 1.5); direction-dependent,
        # which produces the asymmetric A->B vs B->A usage of Fig 7a/7b.
        h = _stable_u32(self.seed, "pair", src, dst)
        nominal *= 0.5 + (h / 0xFFFFFFFF)

        prof = LinkProfile(
            src=src,
            dst=dst,
            nominal_bandwidth=nominal,
            latency=latency,
            congestion_sigma=sigma,
            deep_drop_prob=drop,
            diurnal_amplitude=diurnal,
        )
        self._profiles[key] = prof
        return prof

    # -- time-varying factors --------------------------------------------------

    def diurnal_factor(self, prof: LinkProfile, t: float) -> float:
        """Smooth daily cycle in [1 - amplitude, 1]."""
        hour = (t / 3600.0) % 24.0
        phase = 2.0 * np.pi * (hour - DIURNAL_PEAK_HOUR) / 24.0
        # cos(phase)=1 at the peak hour -> deepest depression.
        return 1.0 - prof.diurnal_amplitude * 0.5 * (1.0 + np.cos(phase))

    def congestion_factor(self, prof: LinkProfile, t: float) -> float:
        """Piecewise-constant stochastic factor, deterministic per bucket."""
        bucket = int(t // CONGESTION_BUCKET_SECONDS)
        h = _stable_u32(self.seed, "cong", prof.src, prof.dst, bucket)
        rng = np.random.default_rng(h)
        if rng.random() < prof.deep_drop_prob:
            # Deep drop: the link collapses to 5-20% of capacity for one
            # bucket (the intermittent dips of Fig 8).
            return float(rng.uniform(0.05, 0.20))
        # Lognormal around 1 with the profile's spread, capped at 1 so
        # congestion never *adds* capacity.
        factor = float(rng.lognormal(0.0, prof.congestion_sigma))
        return min(1.0, factor)

    def effective_bandwidth(self, src: str, dst: str, t: float, share: int = 1) -> float:
        """Per-transfer effective bandwidth on the link at time ``t``.

        ``share`` is the number of transfers splitting the link; the
        floor of 64 KB/s keeps durations finite under pathological
        congestion.
        """
        if UNKNOWN_SITE_NAME in (src, dst):
            # The UNKNOWN pseudo-site never carries real traffic; it only
            # appears in *records* after degradation.  If asked anyway,
            # answer with a modest default.
            return 10e6 / max(1, share)
        prof = self.profile(src, dst)
        bw = (
            prof.nominal_bandwidth
            * self.diurnal_factor(prof, t)
            * self.congestion_factor(prof, t)
            / max(1, share)
        )
        return max(64_000.0, bw)

    # -- active-transfer accounting ---------------------------------------------

    def acquire(self, src: str, dst: str) -> int:
        """Register an active transfer; returns the new share count."""
        key = (src, dst)
        self._active[key] = self._active.get(key, 0) + 1
        return self._active[key]

    def release(self, src: str, dst: str) -> None:
        key = (src, dst)
        n = self._active.get(key, 0)
        if n <= 0:
            raise RuntimeError(f"link {key} released with no active transfers")
        if n == 1:
            del self._active[key]
        else:
            self._active[key] = n - 1

    def active_on(self, src: str, dst: str) -> int:
        return self._active.get((src, dst), 0)

    def transfer_duration(self, src: str, dst: str, nbytes: float, t: float) -> float:
        """Estimate wall time to move ``nbytes`` starting at ``t``.

        Integrates the piecewise-constant effective bandwidth across
        congestion buckets, including the current share snapshot, so a
        transfer that straddles a deep drop genuinely slows down — the
        mechanism behind the 20x throughput spreads of Figs 10-11.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        share = self.active_on(src, dst) or 1
        prof = None if UNKNOWN_SITE_NAME in (src, dst) else self.profile(src, dst)
        latency = prof.latency if prof else 1.0
        remaining = float(nbytes)
        now = t
        elapsed = latency
        # Hard cap on integration steps; beyond it, finish at current rate.
        for _ in range(10_000):
            if remaining <= 0:
                break
            bw = self.effective_bandwidth(src, dst, now, share)
            bucket_end = (int(now // CONGESTION_BUCKET_SECONDS) + 1) * CONGESTION_BUCKET_SECONDS
            window = bucket_end - now
            can_move = bw * window
            if can_move >= remaining:
                elapsed += remaining / bw
                remaining = 0.0
            else:
                remaining -= can_move
                elapsed += window
                now = bucket_end
        else:  # pragma: no cover - pathological sizes only
            bw = self.effective_bandwidth(src, dst, now, share)
            elapsed += remaining / bw
        return elapsed
