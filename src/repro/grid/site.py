"""Computing sites.

A site bundles compute capacity (job slots), stage-in concurrency
(whether the local transfer tooling moves files in parallel — §5.4's
first case study shows some sites do not), and a region used to derive
wide-area link quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.grid.tier import Tier

#: Name of the pseudo-site that aggregates transfers whose true endpoint
#: was lost during metadata collection (paper §3.2: "the 102nd site is
#: labelled as *unknown*").
UNKNOWN_SITE_NAME = "UNKNOWN"


@dataclass
class Site:
    """One computing centre on the grid.

    Attributes
    ----------
    name:
        Unique site name, e.g. ``"CERN-PROD"`` or ``"US-T2-07"``.
    tier:
        WLCG tier.
    region:
        Coarse geography (e.g. ``"CERN"``, ``"NorthAmerica"``); link
        latency and bandwidth degrade with region distance.
    compute_slots:
        Number of concurrently running payload jobs the site sustains.
    parallel_stagein:
        Maximum concurrent stage-in transfers per job.  ``1`` reproduces
        the sequential-transfer bandwidth under-utilization of Fig 10.
    reliability:
        Baseline probability that a job at this site avoids
        infrastructure-caused failure (the failure model combines this
        with staging-delay effects).
    """

    name: str
    tier: Tier
    region: str
    compute_slots: int = 100
    parallel_stagein: int = 4
    reliability: float = 0.97
    index: int = -1  # position in the topology's site list

    # runtime occupancy, managed by the PanDA pilot layer
    running_jobs: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.compute_slots <= 0:
            raise ValueError(f"site {self.name}: compute_slots must be positive")
        if self.parallel_stagein <= 0:
            raise ValueError(f"site {self.name}: parallel_stagein must be positive")
        if not (0.0 <= self.reliability <= 1.0):
            raise ValueError(f"site {self.name}: reliability must be in [0, 1]")

    @property
    def is_unknown(self) -> bool:
        return self.name == UNKNOWN_SITE_NAME

    @property
    def has_free_slot(self) -> bool:
        return self.running_jobs < self.compute_slots

    @property
    def load(self) -> float:
        """Fraction of compute slots occupied."""
        return self.running_jobs / self.compute_slots

    def occupy(self) -> None:
        if not self.has_free_slot:
            raise RuntimeError(f"site {self.name} has no free slot")
        self.running_jobs += 1

    def release(self) -> None:
        if self.running_jobs <= 0:
            raise RuntimeError(f"site {self.name} released below zero occupancy")
        self.running_jobs -= 1


def make_unknown_site() -> Site:
    """The catch-all pseudo-site for mislabelled transfer endpoints."""
    return Site(
        name=UNKNOWN_SITE_NAME,
        tier=Tier.T3,
        region="unknown",
        compute_slots=1,
        parallel_stagein=1,
        reliability=1.0,
    )


def sites_by_tier(sites: List[Site]) -> dict[Tier, List[Site]]:
    """Group sites by tier, preserving order."""
    out: dict[Tier, List[Site]] = {}
    for s in sites:
        out.setdefault(s.tier, []).append(s)
    return out
