"""Grid topology: the container tying sites, RSEs, and the network together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.grid.network import NetworkModel
from repro.grid.rse import RseKind, StorageElement, rse_name
from repro.grid.site import Site, UNKNOWN_SITE_NAME, make_unknown_site
from repro.grid.tier import Tier


@dataclass
class GridTopology:
    """All static infrastructure for one simulation.

    Construct via :meth:`build` (or the :mod:`repro.grid.presets`
    helpers), which validates name uniqueness and assigns site indices —
    the indices are what Fig 3's site-matrix axes are labelled with.
    """

    sites: Dict[str, Site] = field(default_factory=dict)
    rses: Dict[str, StorageElement] = field(default_factory=dict)
    network: Optional[NetworkModel] = None
    seed: int = 0

    @classmethod
    def build(
        cls,
        sites: Iterable[Site],
        seed: int = 0,
        include_unknown: bool = True,
        datadisk_capacity: float = 50e15,
        scratchdisk_capacity: float = 5e15,
        tape_capacity: float = 500e15,
    ) -> "GridTopology":
        topo = cls(seed=seed)
        for site in sites:
            topo._add_site(site)
        if include_unknown and UNKNOWN_SITE_NAME not in topo.sites:
            topo._add_site(make_unknown_site())
        for site in topo.sites.values():
            if site.is_unknown:
                continue
            topo._add_rse(site, RseKind.DATADISK, datadisk_capacity)
            topo._add_rse(site, RseKind.SCRATCHDISK, scratchdisk_capacity)
            if site.tier in (Tier.T0, Tier.T1):
                topo._add_rse(site, RseKind.TAPE, tape_capacity)
        topo.network = NetworkModel(topo.sites, seed=seed)
        return topo

    def _add_site(self, site: Site) -> None:
        if site.name in self.sites:
            raise ValueError(f"duplicate site name: {site.name}")
        site.index = len(self.sites)
        self.sites[site.name] = site

    def _add_rse(self, site: Site, kind: RseKind, capacity: float) -> StorageElement:
        name = rse_name(site.name, kind)
        if name in self.rses:
            raise ValueError(f"duplicate RSE name: {name}")
        rse = StorageElement(name=name, site_name=site.name, kind=kind, capacity_bytes=capacity)
        self.rses[name] = rse
        return rse

    # -- lookup helpers -----------------------------------------------------

    def site(self, name: str) -> Site:
        return self.sites[name]

    def rse(self, name: str) -> StorageElement:
        return self.rses[name]

    def site_rses(self, site_name: str, kind: Optional[RseKind] = None) -> List[StorageElement]:
        return [
            r
            for r in self.rses.values()
            if r.site_name == site_name and (kind is None or r.kind == kind)
        ]

    def datadisk(self, site_name: str) -> StorageElement:
        """The site's DATADISK — the default placement target."""
        return self.rses[rse_name(site_name, RseKind.DATADISK)]

    def scratchdisk(self, site_name: str) -> StorageElement:
        return self.rses[rse_name(site_name, RseKind.SCRATCHDISK)]

    def real_sites(self) -> List[Site]:
        """All sites except the UNKNOWN pseudo-site, in index order."""
        return [s for s in self.sites.values() if not s.is_unknown]

    def compute_sites(self) -> List[Site]:
        """Sites eligible to run jobs (real sites with slots)."""
        return [s for s in self.real_sites() if s.compute_slots > 0]

    def sites_in_tier(self, tier: Tier) -> List[Site]:
        return [s for s in self.real_sites() if s.tier == tier]

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def site_names(self) -> List[str]:
        """Site names in index order (matrix axis order)."""
        return sorted(self.sites, key=lambda n: self.sites[n].index)

    def total_storage_capacity(self) -> float:
        return sum(r.capacity_bytes for r in self.rses.values())

    def validate(self) -> None:
        """Internal-consistency checks; raises on violation."""
        indices = sorted(s.index for s in self.sites.values())
        if indices != list(range(len(self.sites))):
            raise AssertionError("site indices are not a dense 0..n-1 range")
        for r in self.rses.values():
            if r.site_name not in self.sites:
                raise AssertionError(f"RSE {r.name} references unknown site {r.site_name}")
        if self.network is None:
            raise AssertionError("topology has no network model")
