"""Site and network incidents.

The paper frames its analysis around "system performance and
resilience pitfalls" (§3.2): hot spots raise "the likelihood of errors
at network and storage hot spots", and §5.3 attributes extreme local
queuing to sites whose services degraded.  This module injects exactly
those events into a running simulation:

* **compute incidents** — a site loses a fraction of its slots and
  reliability for a period (service degradation, partial outage);
* **network incidents** — links touching a site lose a fraction of
  their bandwidth for a period (congested uplink, failing switch).

Incidents are scheduled on the engine and restore state automatically;
the network side hooks :class:`~repro.grid.network.NetworkModel`
through a multiplicative factor consulted on every bandwidth
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.grid.network import NetworkModel
from repro.grid.topology import GridTopology
from repro.sim.engine import Engine


@dataclass(frozen=True)
class Incident:
    """One scheduled degradation."""

    site: str
    start: float
    end: float
    kind: str  # "compute" | "network"
    #: remaining capacity fraction during the incident (0..1)
    severity: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("incident must have positive duration")
        if not (0.0 <= self.severity < 1.0):
            raise ValueError("severity is the *remaining* fraction, in [0, 1)")
        if self.kind not in ("compute", "network"):
            raise ValueError(f"unknown incident kind: {self.kind}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class IncidentAwareNetwork:
    """Wraps a NetworkModel's bandwidth with incident factors.

    Installed by :class:`IncidentInjector`; pure function of time, so
    transfer-duration integration keeps working unchanged.
    """

    def __init__(self, network: NetworkModel) -> None:
        self.network = network
        #: site -> list of (start, end, severity)
        self.windows: Dict[str, List[Tuple[float, float, float]]] = {}
        self._orig_effective = network.effective_bandwidth
        network.effective_bandwidth = self.effective_bandwidth  # type: ignore[method-assign]

    def add(self, incident: Incident) -> None:
        self.windows.setdefault(incident.site, []).append(
            (incident.start, incident.end, incident.severity))

    def factor(self, site: str, t: float) -> float:
        f = 1.0
        for start, end, severity in self.windows.get(site, ()):
            if start <= t < end:
                f = min(f, severity)
        return f

    def effective_bandwidth(self, src: str, dst: str, t: float, share: int = 1) -> float:
        bw = self._orig_effective(src, dst, t, share)
        f = min(self.factor(src, t), self.factor(dst, t))
        return max(64_000.0, bw * f)


class IncidentInjector:
    """Schedules incidents against a harness's topology and engine."""

    def __init__(self, engine: Engine, topology: GridTopology) -> None:
        self.engine = engine
        self.topology = topology
        assert topology.network is not None
        self.network_hook = IncidentAwareNetwork(topology.network)
        self.applied: List[Incident] = []
        #: original (slots, reliability) per site under compute incident
        self._saved: Dict[str, Tuple[int, float]] = {}

    def schedule(self, incident: Incident) -> None:
        if incident.site not in self.topology.sites:
            raise KeyError(f"unknown site: {incident.site}")
        self.applied.append(incident)
        if incident.kind == "network":
            self.network_hook.add(incident)
            return
        # compute incident: shrink slots and reliability for the window
        self.engine.schedule_at(
            incident.start, lambda: self._begin_compute(incident),
            label=f"incident:{incident.site}",
        )
        self.engine.schedule_at(
            incident.end, lambda: self._end_compute(incident),
            label=f"incident-end:{incident.site}",
        )

    def _begin_compute(self, incident: Incident) -> None:
        site = self.topology.site(incident.site)
        if incident.site not in self._saved:
            self._saved[incident.site] = (site.compute_slots, site.reliability)
        slots, reliability = self._saved[incident.site]
        site.compute_slots = max(1, int(slots * incident.severity))
        site.reliability = max(0.5, reliability * (0.5 + incident.severity / 2))

    def _end_compute(self, incident: Incident) -> None:
        saved = self._saved.pop(incident.site, None)
        if saved is None:
            return
        site = self.topology.site(incident.site)
        site.compute_slots, site.reliability = saved

    def active_at(self, t: float) -> List[Incident]:
        return [i for i in self.applied if i.start <= t < i.end]
