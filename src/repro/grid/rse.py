"""Rucio Storage Elements.

An RSE is the logical endpoint Rucio addresses when placing replicas
(§2.2).  A site typically exposes a DATADISK (managed, long-lived), a
SCRATCHDISK (user analysis outputs, short-lived), and at Tier-0/1 a
TAPE endpoint.  Capacity accounting here is deliberately simple — the
paper's analysis never exhausts storage — but over-filling raises, so
placement bugs surface in tests rather than silently corrupting runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RseKind(enum.Enum):
    DATADISK = "DATADISK"
    SCRATCHDISK = "SCRATCHDISK"
    TAPE = "TAPE"

    @property
    def is_tape(self) -> bool:
        return self is RseKind.TAPE


@dataclass
class StorageElement:
    """One storage endpoint attached to a site.

    Attributes
    ----------
    name:
        Canonical RSE name, e.g. ``"CERN-PROD_DATADISK"``.
    site_name:
        Owning site.
    kind:
        Disk class / tape.
    capacity_bytes:
        Total capacity; ``used_bytes`` may never exceed it.
    """

    name: str
    site_name: str
    kind: RseKind
    capacity_bytes: float
    used_bytes: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"RSE {self.name}: capacity must be positive")

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    @property
    def fill_fraction(self) -> float:
        return self.used_bytes / self.capacity_bytes

    def allocate(self, nbytes: float) -> None:
        """Account for a new replica of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise RuntimeError(
                f"RSE {self.name} over capacity: "
                f"{self.used_bytes + nbytes:.3e} > {self.capacity_bytes:.3e}"
            )
        self.used_bytes += nbytes

    def release(self, nbytes: float) -> None:
        """Account for a deleted replica of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("cannot release negative bytes")
        if nbytes > self.used_bytes + 1e-6:
            raise RuntimeError(f"RSE {self.name} released more than used")
        self.used_bytes = max(0.0, self.used_bytes - nbytes)


def rse_name(site_name: str, kind: RseKind) -> str:
    """Canonical RSE naming: ``<SITE>_<KIND>``."""
    return f"{site_name}_{kind.value}"
