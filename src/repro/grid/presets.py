"""Preset topologies.

:func:`build_wlcg` constructs a WLCG-like grid mirroring the population
the paper observes: 110 named sites (1 Tier-0 at CERN, 10 Tier-1
national labs, ~60 Tier-2s, ~39 Tier-3s) across eight world regions,
plus the ``UNKNOWN`` pseudo-site — 111 sites total, matching §3.2
("Of the 111 sites that recorded file transfers...").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.grid.site import Site
from repro.grid.tier import TIER_COMPUTE_WEIGHT, Tier
from repro.grid.topology import GridTopology

#: Region -> (short code, relative share of sites).  Shares follow the
#: rough geography of WLCG membership.
REGIONS: List[tuple[str, str, float]] = [
    ("CERN", "CERN", 0.03),
    ("NorthEurope", "NE", 0.18),
    ("SouthEurope", "SE", 0.16),
    ("CentralEurope", "CE", 0.14),
    ("NorthAmerica", "NA", 0.20),
    ("SouthAmerica", "SA", 0.05),
    ("Asia", "AS", 0.16),
    ("Oceania", "OC", 0.08),
]

#: Tier-1 national labs and their regions (10 T1s, ATLAS-like).
TIER1_SITES: List[tuple[str, str]] = [
    ("BNL-ATLAS", "NorthAmerica"),       # NY, USA — the paper's (6,6) outlier
    ("TRIUMF-LCG2", "NorthAmerica"),
    ("RAL-LCG2", "NorthEurope"),
    ("NDGF-T1", "NorthEurope"),          # North Europe — the 446.3 PB outlier
    ("FZK-LCG2", "CentralEurope"),
    ("IN2P3-CC", "SouthEurope"),
    ("INFN-T1", "SouthEurope"),
    ("PIC", "SouthEurope"),
    ("SARA-MATRIX", "NorthEurope"),
    ("TOKYO-LCG2", "Asia"),
]


@dataclass
class WlcgPresetConfig:
    """Knobs for the preset builder.

    Defaults reproduce the paper's 111-site population.  ``scale``
    multiplies compute slots everywhere, letting small test topologies
    share code with full scenarios.
    """

    n_tier2: int = 60
    n_tier3: int = 39
    scale: float = 1.0
    base_slots_t2: int = 60
    seed: int = 0
    #: Fraction of sites whose stage-in tooling is sequential-only
    #: (drives the Fig 10 under-utilization case).
    sequential_site_fraction: float = 0.25
    include_unknown: bool = True


def build_wlcg(config: WlcgPresetConfig | None = None, seed: int | None = None) -> GridTopology:
    """Build the default WLCG-like topology.

    ``seed`` overrides ``config.seed`` for convenience.  The builder is
    fully deterministic in the seed.
    """
    cfg = config or WlcgPresetConfig()
    if seed is not None:
        cfg = WlcgPresetConfig(**{**cfg.__dict__, "seed": seed})
    rng = np.random.default_rng(cfg.seed)

    sites: List[Site] = []

    def slots(tier: Tier) -> int:
        base = cfg.base_slots_t2 * TIER_COMPUTE_WEIGHT[tier] / TIER_COMPUTE_WEIGHT[Tier.T2]
        jitter = rng.uniform(0.7, 1.3)
        return max(4, int(round(base * jitter * cfg.scale)))

    def stagein_streams() -> int:
        return 1 if rng.random() < cfg.sequential_site_fraction else int(rng.integers(2, 9))

    def reliability(tier: Tier) -> float:
        base = {Tier.T0: 0.985, Tier.T1: 0.975, Tier.T2: 0.955, Tier.T3: 0.93}[tier]
        return float(np.clip(base + rng.normal(0, 0.01), 0.85, 0.999))

    # Tier-0
    sites.append(
        Site(
            name="CERN-PROD",
            tier=Tier.T0,
            region="CERN",
            compute_slots=slots(Tier.T0),
            parallel_stagein=8,
            reliability=reliability(Tier.T0),
        )
    )

    # Tier-1 national labs
    for name, region in TIER1_SITES:
        sites.append(
            Site(
                name=name,
                tier=Tier.T1,
                region=region,
                compute_slots=slots(Tier.T1),
                parallel_stagein=stagein_streams(),
                reliability=reliability(Tier.T1),
            )
        )

    # Tier-2 / Tier-3 spread across regions proportionally to their share.
    def spread(n: int, tier: Tier, prefix: str) -> None:
        region_names = [r[0] for r in REGIONS]
        weights = np.array([r[2] for r in REGIONS])
        weights = weights / weights.sum()
        counts = np.floor(weights * n).astype(int)
        # distribute the remainder to the largest regions
        for i in np.argsort(-weights)[: n - int(counts.sum())]:
            counts[i] += 1
        for (region, code, _), count in zip(REGIONS, counts):
            for k in range(count):
                sites.append(
                    Site(
                        name=f"{code}-{prefix}-{k:02d}",
                        tier=tier,
                        region=region,
                        compute_slots=slots(tier),
                        parallel_stagein=stagein_streams(),
                        reliability=reliability(tier),
                    )
                )

    spread(cfg.n_tier2, Tier.T2, "T2")
    spread(cfg.n_tier3, Tier.T3, "T3")

    topo = GridTopology.build(sites, seed=cfg.seed, include_unknown=cfg.include_unknown)
    topo.validate()
    return topo


def build_mini(seed: int = 0, n_tier2: int = 4, n_tier3: int = 2) -> GridTopology:
    """A small topology for unit tests: T0 + 2 T1s + a few T2/T3s."""
    cfg = WlcgPresetConfig(n_tier2=n_tier2, n_tier3=n_tier3, seed=seed, scale=0.2)
    rng = np.random.default_rng(seed)
    sites: List[Site] = [
        Site("CERN-PROD", Tier.T0, "CERN", compute_slots=40, parallel_stagein=8),
        Site("BNL-ATLAS", Tier.T1, "NorthAmerica", compute_slots=30, parallel_stagein=4),
        Site("NDGF-T1", Tier.T1, "NorthEurope", compute_slots=30, parallel_stagein=4),
    ]
    for k in range(cfg.n_tier2):
        seq = rng.random() < 0.5
        sites.append(
            Site(
                f"T2-{k:02d}",
                Tier.T2,
                ["NorthAmerica", "NorthEurope", "Asia", "SouthEurope"][k % 4],
                compute_slots=12,
                parallel_stagein=1 if seq else 4,
            )
        )
    for k in range(cfg.n_tier3):
        sites.append(
            Site(f"T3-{k:02d}", Tier.T3, "Asia", compute_slots=4, parallel_stagein=1)
        )
    topo = GridTopology.build(sites, seed=seed)
    topo.validate()
    return topo
