"""WLCG tier taxonomy.

The Worldwide LHC Computing Grid organises sites in four tiers (§2.1 of
the paper): Tier-0 at CERN records and first-processes raw data, Tier-1
national labs hold long-term custodial storage, Tier-2 universities
provide simulation and analysis capacity, Tier-3 institutes offer
localised resources.
"""

from __future__ import annotations

import enum


class Tier(enum.IntEnum):
    """WLCG site tier.  Lower number = closer to the detector."""

    T0 = 0
    T1 = 1
    T2 = 2
    T3 = 3

    @property
    def label(self) -> str:
        return f"Tier-{int(self)}"

    @classmethod
    def parse(cls, text: str) -> "Tier":
        """Parse ``'T1'``, ``'Tier-1'``, or ``'1'`` into a tier."""
        t = text.strip().upper().replace("TIER-", "T").replace("TIER", "T")
        if not t.startswith("T"):
            t = "T" + t
        try:
            return cls[t]
        except KeyError:
            raise ValueError(f"unrecognised tier: {text!r}") from None


#: Relative compute capacity weight by tier, used by the preset builder.
TIER_COMPUTE_WEIGHT = {Tier.T0: 8.0, Tier.T1: 5.0, Tier.T2: 1.5, Tier.T3: 0.4}

#: Relative storage capacity weight by tier.
TIER_STORAGE_WEIGHT = {Tier.T0: 10.0, Tier.T1: 6.0, Tier.T2: 1.0, Tier.T3: 0.2}

#: Typical wide-area nominal bandwidth (bytes/s) of a site's uplink by tier.
TIER_WAN_BANDWIDTH = {
    Tier.T0: 400e6,  # 400 MBps
    Tier.T1: 250e6,
    Tier.T2: 120e6,
    Tier.T3: 40e6,
}

#: Typical LAN (intra-site) nominal bandwidth (bytes/s) by tier.
TIER_LAN_BANDWIDTH = {
    Tier.T0: 1200e6,
    Tier.T1: 800e6,
    Tier.T2: 450e6,
    Tier.T3: 150e6,
}
