"""Command-line interface.

``python -m repro <command>`` exposes the main workflows:

* ``simulate`` — run a campaign, print population statistics;
* ``match`` — campaign + Exact/RM1/RM2 matching, print Tables 1-2;
* ``analyze`` — the full §5 analysis batch (headline, Fig-9 sweep,
  temporal profiles, site dashboards), fanned across the persistent
  worker pool when ``--workers`` > 1;
* ``sweep`` — window-sensitivity curve via the (optionally parallel)
  sweep executor;
* ``stream`` — replay the campaign window through the streaming
  dataplane (``repro.stream``) in micro-batches and verify the
  accumulated matches are bit-identical to the batch pipeline;
* ``anomalies`` — campaign + anomaly report + mitigation advice;
* ``scale`` — walk the 10x scale ladder (3.6k → 36k → … → ~1M jobs)
  and write per-rung throughput / peak-RSS / shard-count artifacts;
* ``serve`` — run the multi-tenant match service (``repro.serve``)
  under one open-loop Poisson session, print latency / shed / hit
  statistics;
* ``serve-bench`` — drive the service through a ladder of offered
  loads and write the p50/p95/p99 + shed-rate saturation artifact;
* ``growth`` — print the Fig 2 cumulative-volume series;
* ``ablation`` — locality vs co-optimized brokerage comparison;
* ``export`` — dump degraded telemetry and matching results to files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.analysis.summary import (
    activity_breakdown,
    headline_stats,
    method_comparison_jobs,
    method_comparison_transfers,
)
from repro.core.anomaly.inference import inference_accuracy
from repro.core.anomaly.report import build_anomaly_report
from repro.coopt.policies import advise
from repro.reporting.export import rows_to_csv, to_json_file
from repro.reporting.tables import render_activity_table, render_method_tables, render_table
from repro.scenarios.eightday import EightDayConfig, EightDayStudy
from repro.scenarios.growth import GrowthModel
from repro.units import EB, bytes_to_human


def _add_campaign_args(p: argparse.ArgumentParser) -> None:
    from repro.exec import DEFAULT_ENGINE, DEFAULT_FRAME, ENGINES, FRAMES

    p.add_argument("--days", type=float, default=2.0, help="campaign length (days)")
    p.add_argument("--seed", type=int, default=2025, help="root random seed")
    p.add_argument("--intensity", type=float, default=1.0, help="arrival-rate scale")
    p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="processes for the matching executor (1 = serial; results "
             "are identical either way)")
    p.add_argument(
        "--engine", choices=ENGINES, default=DEFAULT_ENGINE,
        help="matching join engine: 'columnar' runs the vectorized "
             "kernels over interned column packs, 'row' the reference "
             "dict join (identical results; default %(default)s)")
    p.add_argument(
        "--frame", choices=FRAMES, default=DEFAULT_FRAME,
        help="analysis dataplane: 'columnar' lowers match results to "
             "MatchFrame arrays and runs vectorized analyses, 'row' the "
             "reference per-record loops (identical results; default "
             "%(default)s)")
    p.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="partition the jobs/transfers time indices into N shards "
             "so window queries touch only overlapped slices "
             "(0 = unsharded; results are identical either way)")
    p.add_argument(
        "--obs", action="store_true",
        help="collect spans and metrics while running and print a "
             "per-stage summary to stderr (results are unaffected)")
    p.add_argument(
        "--methods", default="exact,rm1,rm2", metavar="LIST",
        help="comma-separated matching methods for match/stream "
             "(exact, rm1, rm2, rm3, subset; default %(default)s)")
    p.add_argument(
        "--rm3-threshold", type=float, default=None, metavar="P",
        help="decision threshold for the rm3 scored matcher "
             "(default: the committed calibration)")


def _study(args) -> EightDayStudy:
    from repro.obs import Obs

    cfg = EightDayConfig(seed=args.seed, days=args.days, intensity=args.intensity)
    obs = Obs.collecting() if getattr(args, "obs", False) else None
    args.obs_bundle = obs
    shards = getattr(args, "shards", 0) or 0
    shard_seconds = (args.days * 86400.0 / shards) if shards > 0 else None
    print(f"simulating {args.days:g} days (seed {args.seed}) ...", file=sys.stderr)
    return EightDayStudy(
        cfg,
        engine=getattr(args, "engine", None),
        frame=getattr(args, "frame", None),
        obs=obs,
        shard_seconds=shard_seconds,
    ).run()


def _matchers(args, study: EightDayStudy):
    """Matcher instances for ``--methods``, or None for the default ladder.

    Returning None keeps the study's cached default report usable; an
    explicit list always runs fresh (see ``EightDayStudy.matching_report``).
    """
    from repro.exec.executor import make_matchers

    names = [s.strip() for s in args.methods.split(",") if s.strip()]
    if names == ["exact", "rm1", "rm2"] and args.rm3_threshold is None:
        return None
    return make_matchers(
        names,
        known_sites=study.harness.known_site_names(),
        rm3_threshold=args.rm3_threshold,
    )


def cmd_simulate(args) -> int:
    study = _study(args)
    harness = study.harness
    telemetry = study.telemetry
    print(f"sites                : {harness.topology.n_sites}")
    print(f"jobs completed       : {harness.collector.n_jobs}")
    print(f"transfer events      : {harness.collector.n_transfers}")
    print(f"tape recalls         : {harness.tape.completed if harness.tape else 0}")
    print(f"degraded transfers   : {len(telemetry.transfers)} "
          f"({telemetry.n_transfers_with_taskid} with jeditaskid)")
    print(f"degraded file rows   : {len(telemetry.files)}")
    print(f"success fraction     : {harness.panda.success_fraction():.1%}")
    return 0


def cmd_match(args) -> int:
    study = _study(args)
    telemetry = study.telemetry
    report = study.matching_report(workers=args.workers, matchers=_matchers(args, study))
    headline_method = "exact" if "exact" in report.methods else report.methods[0]
    stats = headline_stats(report, method=headline_method, frame=args.frame)
    t0, t1 = study.harness.window
    columns = study.pipeline.artifacts(t0, t1).columns if args.frame == "columnar" else None
    print(f"matched transfers : {stats.n_matched_transfers} "
          f"({stats.transfer_match_pct:.2f}% of taskid transfers)")
    print(f"matched jobs      : {stats.n_matched_jobs} "
          f"({stats.job_match_pct:.2f}% of user jobs)")
    print(f"transfer-time in queue: mean {stats.mean_transfer_pct:.2f}% "
          f"geomean {stats.geomean_transfer_pct:.3f}%\n")
    if "exact" in report.methods:
        print(render_activity_table(
            activity_breakdown(report["exact"], telemetry.transfers, columns=columns)))
        print()
    print(render_method_tables(
        method_comparison_transfers(report, frame=args.frame),
        method_comparison_jobs(report, frame=args.frame),
        report.n_transfers_with_taskid,
        report.n_jobs,
    ))
    return 0


def cmd_analyze(args) -> int:
    from repro.core.analysis.sites import hottest_sites
    from repro.core.analysis.thresholds import StatusCombo
    from repro.exec import make_executor

    study = _study(args)
    with make_executor(args.workers, engine=args.engine) as ex:
        results = study.analyses(executor=ex, frame=args.frame)
    stats = results["headline"]
    print(f"matched jobs      : {stats.n_matched_jobs} "
          f"({stats.job_match_pct:.2f}% of user jobs)")
    print(f"matched transfers : {stats.n_matched_transfers} "
          f"({stats.transfer_match_pct:.2f}% of taskid transfers)")
    print(f"transfer-time in queue: mean {stats.mean_transfer_pct:.2f}% "
          f"geomean {stats.geomean_transfer_pct:.3f}%\n")

    sweep = results["thresholds"]
    header = ["status combo"] + [f"<={t:g}%" for t in sweep.thresholds]
    rows = [[combo.value] + [str(n) for n in sweep.cumulative[combo]]
            for combo in StatusCombo]
    print(render_table(header, rows))
    print(f"\ntop queuing jobs  : {len(results['top_local'])} local, "
          f"{len(results['top_remote'])} remote")

    volume, submissions = results["volume"], results["submissions"]
    print(f"transfer volume   : gini {volume.temporal_gini():.3f}  "
          f"peak/mean {volume.peak_to_mean():.2f}")
    print(f"job submissions   : gini {submissions.temporal_gini():.3f}  "
          f"peak/mean {submissions.peak_to_mean():.2f}\n")

    hot = hottest_sites(results["sites"], by="p95_queue", top=5)
    print(render_table(
        ["site (by p95 queue)", "jobs", "fail rate", "p95 queue (h)"],
        [[b.site, str(b.n_jobs), f"{b.failure_rate:.1%}", f"{b.p95_queue / 3600.0:.2f}"]
         for b in hot]))
    return 0


def cmd_sweep(args) -> int:
    from repro.core.matching.windows import growing_window_curve, saturation_ratio
    from repro.exec.executor import make_executor

    study = _study(args)
    executor = make_executor(args.workers, engine=args.engine)
    t0, t1 = study.harness.window
    curve = growing_window_curve(
        study.pipeline, t0, t1, n_points=args.points, executor=executor)
    rows = [
        [f"{p.length / 86400.0:.2f}", str(p.n_jobs), str(p.n_matched_jobs),
         f"{p.job_match_rate:.2%}", str(p.n_matched_transfers)]
        for p in curve
    ]
    print(render_table(
        ["window (days)", "jobs", "matched jobs", "match rate", "matched transfers"],
        rows))
    print(f"\nhalf-window saturation: {saturation_ratio(curve):.3f}  "
          f"(workers={args.workers})")
    return 0


def cmd_stream(args) -> int:
    study = _study(args)
    matchers = _matchers(args, study)
    processor = study.stream(
        batch_seconds=args.batch_hours * 3600.0, lateness=args.lateness,
        matchers=matchers,
    )
    metrics = processor.metrics()
    print(f"micro-batches        : {metrics.n_batches} "
          f"({args.batch_hours:g}h event-time spans)")
    print(f"events processed     : {metrics.n_events} "
          f"({metrics.n_job_events} jobs, {metrics.n_transfer_events} transfers)")
    print(f"sustained throughput : {metrics.events_per_sec:,.0f} events/s "
          f"(ingest {metrics.ingest_s:.2f}s match {metrics.match_s:.2f}s "
          f"fold {metrics.fold_s:.2f}s)")
    print(f"late events          : {metrics.n_late_events}  "
          f"pending jobs at EOS  : {metrics.n_pending_jobs}")
    stream_report = processor.report()
    for method, n in metrics.total_matched.items():
        print(f"matched jobs [{method:5s}] : {n}")

    stats = processor.headline()
    print(f"\nrunning headline     : {stats.n_matched_transfers} matched "
          f"transfers ({stats.transfer_match_pct:.2f}%), mean transfer-time "
          f"{stats.mean_transfer_pct:.2f}% of queue")

    batch_report = study.matching_report(workers=args.workers, matchers=matchers)
    identical = all(
        stream_report[m].matched_pairs() == batch_report[m].matched_pairs()
        and stream_report[m] == batch_report[m]
        for m in batch_report.methods
    )
    print(f"streaming vs batch   : "
          f"{'bit-identical' if identical else 'DIVERGED'}")
    return 0 if identical else 1


def cmd_anomalies(args) -> int:
    study = _study(args)
    telemetry = study.telemetry
    matches = study.matching_report(workers=args.workers)["rm2"].matched_jobs()
    report = build_anomaly_report(
        matches, telemetry.transfers,
        site_names=study.harness.topology.site_names())
    print(report)
    if report.inferences:
        acc = inference_accuracy(report.inferences, telemetry.ground_truth.true_sites)
        print(f"inference accuracy vs ground truth: {acc:.0%}")
    print()
    for a in advise(report):
        print(a)
    return 0


def cmd_profile(args) -> int:
    """Run the campaign under full observability and write trace artifacts.

    Executes matching, the §5 analysis batch, and a streaming replay
    with an enabled :class:`~repro.obs.Obs` bundle, then writes a
    Chrome-trace file (``trace.json``, load in ``chrome://tracing`` or
    Perfetto) and a flat metrics/span snapshot (``metrics.json``) to
    ``--out`` and prints the per-stage wall-time table.
    """
    import os

    from repro.obs import Obs
    from repro.reporting import (
        render_stage_summary,
        write_chrome_trace,
        write_metrics_json,
    )

    obs = Obs.collecting()
    cfg = EightDayConfig(seed=args.seed, days=args.days, intensity=args.intensity)
    print(f"simulating {args.days:g} days (seed {args.seed}) ...", file=sys.stderr)
    study = EightDayStudy(
        cfg, engine=args.engine, frame=args.frame, obs=obs
    ).run()
    report = study.matching_report(workers=args.workers)
    study.analyses(workers=args.workers)
    processor = study.stream(batch_seconds=args.batch_hours * 3600.0)

    # A small closed-loop run so control-loop spans ("coopt" category)
    # appear in the same trace as matching/analysis/streaming.
    from repro.scenarios.coopt import CoOptConfig, run_policy

    run_policy(CoOptConfig(seed=args.seed, days=0.25, epoch_hours=2.0),
               "full", obs=obs)

    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, "trace.json")
    metrics_path = os.path.join(args.out, "metrics.json")
    n_events = write_chrome_trace(trace_path, obs.tracer)
    write_metrics_json(metrics_path, obs)

    print(render_stage_summary(obs.tracer, top=args.top))
    print(f"\nmatched jobs (rm2)   : {report['rm2'].n_matched_jobs}")
    print(f"stream batches       : {processor.metrics().n_batches}")
    print(f"wrote {n_events} trace events to {trace_path}")
    print(f"wrote metrics snapshot to {metrics_path}")
    return 0


def cmd_report(args) -> int:
    from repro.reporting.markdown import write_markdown_report

    n = write_markdown_report(args.results, args.out)
    print(f"rendered {n} experiment(s) to {args.out}")
    return 0 if n else 1


def cmd_growth(args) -> int:
    model = GrowthModel()
    rows = [
        [str(p.year), bytes_to_human(p.ingested), bytes_to_human(p.cumulative),
         f"{p.cumulative / EB:.3f}"]
        for p in model.series()
    ]
    print(render_table(["year", "ingested", "cumulative", "EB"], rows))
    return 0


def cmd_ablation(args) -> int:
    from repro.obs import Obs
    from repro.scenarios.ablation import AblationConfig, run_ablation

    obs = Obs.collecting() if getattr(args, "obs", False) else None
    args.obs_bundle = obs
    result = run_ablation(AblationConfig(seed=args.seed, days=args.days), obs=obs)
    print(result.locality.summary())
    print(result.coopt.summary())
    print(f"queue speedup: {result.queue_speedup:.2f}x  "
          f"balance gain: {result.balance_gain:+.0%}")
    return 0


def cmd_coopt(args) -> int:
    """Run the closed co-optimization loop (one policy, or the sweep).

    ``--sweep`` walks the registered policy ladder across the given
    degradation severities and prints the delta table; otherwise a
    single policy runs once and its summary is printed.  With
    ``--obs``, control-loop spans and per-decision counters are
    collected and (when ``--out`` is given) written to
    ``<out>/metrics.json`` next to the sweep rows.
    """
    import os

    from repro.obs import Obs
    from repro.scenarios.coopt import CoOptConfig, run_policy, run_sweep

    obs = Obs.collecting() if getattr(args, "obs", False) else None
    args.obs_bundle = obs
    severities = [float(s) for s in args.severities.split(",") if s.strip()]
    cfg = CoOptConfig(
        seed=args.seed,
        days=args.days,
        epoch_hours=args.epoch_hours,
        severities=severities,
    )
    payload: dict
    if args.sweep:
        print(
            f"sweeping {len(list(cfg.policies))} policies x "
            f"{len(severities)} severities ({args.days:g} days, seed {args.seed}) ...",
            file=sys.stderr,
        )
        sweep = run_sweep(cfg, obs=obs)
        print(sweep.table())
        payload = {"config": {"seed": cfg.seed, "days": cfg.days,
                              "epoch_hours": cfg.epoch_hours,
                              "severities": severities},
                   "rows": sweep.rows()}
    else:
        result = run_policy(cfg, args.policy, severities[0], obs=obs)
        print(result.summary())
        payload = {"config": {"seed": cfg.seed, "days": cfg.days,
                              "epoch_hours": cfg.epoch_hours,
                              "severity": severities[0]},
                   "rows": [result.row()]}
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        to_json_file(os.path.join(args.out, "coopt.json"), payload)
        print(f"wrote sweep rows to {args.out}/coopt.json", file=sys.stderr)
        if obs is not None:
            from repro.reporting import write_metrics_json

            metrics_path = os.path.join(args.out, "metrics.json")
            write_metrics_json(metrics_path, obs)
            print(f"wrote decision counters to {metrics_path}", file=sys.stderr)
    return 0


def cmd_scale(args) -> int:
    """Walk the scale ladder and write per-rung dataplane artifacts.

    Each rung synthesizes a full 8-day window at 10x the previous
    rung's job count, runs Exact/RM1/RM2 matching plus the §5 headline
    analyses, and records throughput, peak RSS, and shard counts.
    ``--full`` appends the paper-scale rung (~1M jobs, ~6.5M
    transfers).
    """
    from repro.scenarios.scale import PAPER_RUNG, scale_ladder

    rungs = [int(r) for r in args.rungs.split(",") if r.strip()]
    if args.full and PAPER_RUNG not in rungs:
        rungs.append(PAPER_RUNG)
    shard_seconds = args.shard_hours * 3600.0
    shared_memory = False if args.no_shm else None
    payload = scale_ladder(
        rungs=rungs,
        seed=args.seed,
        days=args.days,
        shard_seconds=shard_seconds,
        workers=args.workers,
        engine=args.engine,
        shared_memory=shared_memory,
    )
    to_json_file(args.out, payload)
    print(f"{'jobs':>9}  {'gen s':>7}  {'match s':>7}  {'jobs/s':>9}  "
          f"{'peak MB':>8}  {'shards':>6}  mode")
    for row in payload["rungs"]:
        shards = max(row["shards"].values()) if row["shards"] else 1
        print(f"{row['n_jobs']:>9,}  {row['generate_seconds']:>7.2f}  "
              f"{row['match_seconds']:>7.2f}  {row['match_jobs_per_sec']:>9,.0f}  "
              f"{row['peak_rss_mb']:>8.0f}  {shards:>6}  {row['seed_mode']}")
    print(f"wrote {len(payload['rungs'])} rung(s) to {args.out}")
    return 0


def cmd_export(args) -> int:
    study = _study(args)
    telemetry = study.telemetry
    report = study.matching_report(workers=args.workers)
    n = rows_to_csv(f"{args.out}/transfers.csv", telemetry.transfers)
    m = rows_to_csv(f"{args.out}/jobs.csv", telemetry.jobs)
    k = rows_to_csv(f"{args.out}/files.csv", telemetry.files)
    to_json_file(f"{args.out}/matching.json", {
        method: {
            "matched_jobs": report[method].n_matched_jobs,
            "matched_transfers": report[method].n_matched_transfers,
            "pairs": report[method].matched_pairs(),
        }
        for method in report.methods
    })
    print(f"wrote {n} transfers, {m} jobs, {k} file rows, and matching.json to {args.out}")
    return 0


def cmd_serve(args) -> int:
    """Run the multi-tenant match service against one open-loop session."""
    import asyncio
    import json

    from repro.serve import (
        AdmissionPolicy,
        LoadSpec,
        MatchService,
        ServeConfig,
        Workload,
        default_tenants,
        run_workload,
    )

    study = _study(args)
    t0, t1 = study.harness.window
    tenants = default_tenants(args.tenants)
    service = MatchService(
        study.source,
        known_sites=study.harness.known_site_names(),
        tenants=tenants,
        config=ServeConfig(
            max_workers=args.serve_workers,
            policy=AdmissionPolicy(
                rate=args.tenant_rate if args.tenant_rate > 0 else None,
                queue_depth=args.queue_depth,
            ),
            engine=args.engine,
            frame=args.frame,
            verify_every=args.verify_every,
        ),
    )
    spec = LoadSpec.make(
        tenants,
        rate=args.rate,
        duration=args.duration,
        long_fraction=args.long_fraction,
        seed=args.seed,
    )
    workload = Workload(spec, t0, t1)
    arrivals = workload.schedule()
    print(f"serving {len(arrivals)} requests from {len(tenants)} tenants "
          f"at {args.rate:g} req/s ...", file=sys.stderr)

    async def session():
        async with service:
            return await run_workload(service, arrivals)

    stats = asyncio.run(session())
    print(json.dumps(stats.summary(), indent=2, default=float))
    if args.verify_every:
        print(f"verified {service.verify_samples} sampled responses, "
              f"{service.verify_violations} violations", file=sys.stderr)
    return 1 if service.verify_violations else 0


def cmd_serve_bench(args) -> int:
    """Saturation ladder: latency/throughput/shed-rate per offered load."""
    from repro.serve.bench import (
        BenchConfig,
        format_report,
        run_serve_bench,
        write_results,
    )

    rates = tuple(float(r) for r in args.rates.split(","))
    config = BenchConfig(
        days=args.days,
        seed=args.seed,
        intensity=args.intensity,
        tenants=args.tenants,
        max_workers=args.serve_workers,
        queue_depth=args.queue_depth,
        rates=rates,
        duration=args.duration,
        long_fraction=args.long_fraction,
        verify_every=args.verify_every,
        engine=args.engine,
    )
    print(f"simulating {args.days:g} days, then {len(rates)} load levels "
          f"x {args.duration:g}s ...", file=sys.stderr)
    results = run_serve_bench(config)
    print(format_report(results))
    path = write_results(results, args.out)
    print(f"wrote {path}", file=sys.stderr)
    return 1 if results["verify"]["violations"] else 0


def _add_serve_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--tenants", type=int, default=8,
                   help="number of tenants (default %(default)s)")
    p.add_argument("--serve-workers", type=int, default=4, metavar="N",
                   help="service compute threads (default %(default)s)")
    p.add_argument("--queue-depth", type=int, default=24,
                   help="per-tenant fair-queue bound (default %(default)s)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds of load per level (default %(default)s)")
    p.add_argument("--long-fraction", type=float, default=0.1,
                   help="fraction of full-window analysis requests "
                        "(default %(default)s)")
    p.add_argument("--verify-every", type=int, default=0, metavar="N",
                   help="recompute every Nth response directly and compare "
                        "(0 = off)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PanDA/Rucio co-analysis reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, extra in (
        ("simulate", cmd_simulate, None),
        ("match", cmd_match, None),
        ("analyze", cmd_analyze, None),
        ("sweep", cmd_sweep, "points"),
        ("stream", cmd_stream, "stream"),
        ("anomalies", cmd_anomalies, None),
        ("ablation", cmd_ablation, None),
        ("export", cmd_export, "out"),
    ):
        p = sub.add_parser(name, help=fn.__doc__)
        _add_campaign_args(p)
        if extra == "out":
            p.add_argument("--out", default="repro_export", help="output directory")
        if extra == "points":
            p.add_argument("--points", type=int, default=6,
                           help="growing-window points in the sweep")
        if extra == "stream":
            p.add_argument("--batch-hours", type=float, default=6.0,
                           metavar="HOURS",
                           help="micro-batch event-time span in hours "
                                "(default %(default)s)")
            p.add_argument("--lateness", type=float, default=0.0,
                           help="allowed event-time disorder in seconds "
                                "before a job window closes")
        p.set_defaults(fn=fn)

    co = sub.add_parser(
        "coopt",
        help="run the closed co-optimization control loop — one policy, "
             "or the full ladder x severity sweep with --sweep")
    co.add_argument("--sweep", action="store_true",
                    help="run every registered policy across --severities "
                         "and print the baseline-delta table")
    co.add_argument("--policy", default="full",
                    help="policy to run without --sweep (default %(default)s)")
    co.add_argument("--days", type=float, default=0.5,
                    help="campaign length in days (default %(default)s)")
    co.add_argument("--seed", type=int, default=11, help="root random seed")
    co.add_argument("--epoch-hours", type=float, default=2.0, metavar="HOURS",
                    help="control-loop decision epoch (default %(default)s)")
    co.add_argument("--severities", default="1.0",
                    help="comma-separated degradation severities "
                         "(default %(default)s)")
    co.add_argument("--obs", action="store_true",
                    help="collect control-loop spans and decision counters")
    co.add_argument("--out", default="",
                    help="directory for coopt.json (+ metrics.json with "
                         "--obs); empty = don't write")
    co.set_defaults(fn=cmd_coopt)

    pr = sub.add_parser(
        "profile",
        help="run matching + analyses + streaming under the tracer and "
             "write Chrome-trace / metrics artifacts")
    _add_campaign_args(pr)
    pr.add_argument("--out", default="repro_profile",
                    help="artifact directory (default %(default)s)")
    pr.add_argument("--batch-hours", type=float, default=6.0, metavar="HOURS",
                    help="streaming micro-batch span (default %(default)s)")
    pr.add_argument("--top", type=int, default=20,
                    help="rows in the stage summary table (0 = all)")
    pr.set_defaults(fn=cmd_profile)

    sc = sub.add_parser(
        "scale",
        help="walk the 10x scale ladder and write per-rung throughput, "
             "peak-RSS, and shard-count artifacts")
    sc.add_argument("--rungs", default="3600,36000",
                    help="comma-separated rung sizes in jobs "
                         "(default %(default)s)")
    sc.add_argument("--full", action="store_true",
                    help="append the paper-scale rung (~1M jobs, "
                         "~6.5M transfers)")
    sc.add_argument("--seed", type=int, default=2025, help="root random seed")
    sc.add_argument("--days", type=float, default=8.0,
                    help="window length in days (default %(default)s)")
    sc.add_argument("--workers", type=int, default=1, metavar="N",
                    help="processes for the matching executor")
    sc.add_argument("--engine", default="columnar",
                    help="matching join engine (default %(default)s)")
    sc.add_argument("--shard-hours", type=float, default=24.0,
                    metavar="HOURS",
                    help="time-shard width for the jobs/transfers indices "
                         "(default %(default)s)")
    sc.add_argument("--no-shm", action="store_true",
                    help="seed parallel workers by pickling instead of "
                         "shared-memory pack attach (results identical)")
    sc.add_argument("--out", default="benchmarks/results/scale_ladder.json",
                    help="artifact path (default %(default)s)")
    sc.set_defaults(fn=cmd_scale)

    sv = sub.add_parser(
        "serve",
        help="run the multi-tenant match service under one open-loop "
             "Poisson session and print latency/shed/hit statistics")
    _add_campaign_args(sv)
    _add_serve_args(sv)
    sv.add_argument("--rate", type=float, default=80.0,
                    help="aggregate offered load in req/s (default %(default)s)")
    sv.add_argument("--tenant-rate", type=float, default=0.0,
                    help="per-tenant admission rate cap in req/s "
                         "(0 = unlimited)")
    sv.set_defaults(fn=cmd_serve)

    sb = sub.add_parser(
        "serve-bench",
        help="drive the service through a ladder of offered loads and "
             "write the p50/p95/p99 + shed-rate saturation artifact")
    sb.add_argument("--days", type=float, default=1.5,
                    help="campaign length in days (default %(default)s)")
    sb.add_argument("--seed", type=int, default=2025, help="root random seed")
    sb.add_argument("--intensity", type=float, default=1.0,
                    help="arrival-rate scale for the simulated campaign")
    sb.add_argument("--engine", default="columnar",
                    help="matching join engine (default %(default)s)")
    _add_serve_args(sb)
    sb.add_argument("--rates", default="40,160,2400",
                    help="comma-separated offered loads in req/s; the top "
                         "rung should sit past saturation "
                         "(default %(default)s)")
    sb.add_argument("--out", default="benchmarks/results/serve_latency.json",
                    help="artifact path (default %(default)s)")
    sb.set_defaults(fn=cmd_serve_bench, verify_every=23)

    g = sub.add_parser("growth", help="print the Fig 2 volume series")
    g.set_defaults(fn=cmd_growth)

    r = sub.add_parser("report", help="render benchmark artifacts to markdown")
    r.add_argument("--results", default="benchmarks/results",
                   help="artifact directory written by the benchmarks")
    r.add_argument("--out", default="EXPERIMENT_RESULTS.md", help="output file")
    r.set_defaults(fn=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rc = args.fn(args)
    obs = getattr(args, "obs_bundle", None)
    if obs is not None and args.fn is not cmd_profile:
        from repro.reporting import render_stage_summary

        print("\n" + render_stage_summary(obs.tracer, top=15), file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
