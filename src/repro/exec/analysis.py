"""Analysis fan-out: named §5 analyses over the persistent pool.

:func:`run_analyses` runs a batch of named analyses (Table 1/2, the
Fig-5/6 breakdowns, the Fig-9 sweep, site dashboards, temporal
profiles, ...) for one window.  Serially it shares one materialized
window and one matching report across every spec; through a
:class:`~repro.exec.executor.ParallelExecutor` each spec becomes one
task on the *persistent* pool, and workers memoize the window's report
(:func:`~repro.exec.executor.worker_report`) so the Exact/RM1/RM2
matching work is done once per worker, not once per analysis.

Every spec resolves through the same row/columnar ``frame`` switch as
the underlying analysis functions, so fan-out never changes numbers —
only where and when they are computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.columnar import (
    DEFAULT_ENGINE,
    DEFAULT_FRAME,
    validate_engine,
    validate_frame,
)
from repro.core.analysis.matrix import build_transfer_matrix
from repro.core.analysis.queuing import (
    timing_table,
    timings_for_result,
    top_jobs_breakdown,
)
from repro.core.analysis.sites import build_dashboards
from repro.core.analysis.summary import (
    activity_breakdown,
    headline_stats,
    method_comparison_jobs,
    method_comparison_transfers,
)
from repro.core.analysis.temporal import submission_profile, transfer_volume_profile
from repro.core.analysis.thresholds import threshold_sweep_result
from repro.exec.artifacts import ArtifactCache, WindowArtifacts, build_report
from repro.exec.executor import (
    ParallelExecutor,
    SerialExecutor,
    default_matchers,
    worker_cache,
    worker_report,
)
from repro.exec.plan import WindowPlan


@dataclass(frozen=True)
class AnalysisSpec:
    """One named analysis over one window's matching report.

    ``params`` is a sorted tuple of (key, value) pairs — kept hashable
    and cheaply picklable so specs travel to pool workers unchanged.
    Build with :meth:`make` to pass keyword parameters naturally.
    """

    name: str
    method: str = "exact"
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, name: str, method: str = "exact", **params) -> "AnalysisSpec":
        return cls(name=name, method=method, params=tuple(sorted(params.items())))

    @classmethod
    def of(cls, spec: Union[str, "AnalysisSpec"]) -> "AnalysisSpec":
        return spec if isinstance(spec, AnalysisSpec) else cls(name=spec)


#: Specs that need no extra parameters — the full §5 batch.
DEFAULT_ANALYSES: Tuple[str, ...] = (
    "headline",
    "table1",
    "table2_transfers",
    "table2_jobs",
    "top_local",
    "top_remote",
    "thresholds",
    "sites",
    "volume",
    "submissions",
)

ANALYSIS_NAMES: Tuple[str, ...] = DEFAULT_ANALYSES + ("timings", "matrix")


def _columns_for(artifacts: WindowArtifacts, choice: str):
    # The columnar fast paths need the window's pre-lowered packs; a
    # row-engine materialization has none, and the analyses then take
    # their reference loops (identical results, just slower).
    return artifacts.columns if choice == "columnar" else None


def _top_jobs(result, locality: str, choice: str, **kw):
    if choice == "columnar":
        return timing_table(result).top_jobs(locality, **kw)
    return top_jobs_breakdown(timings_for_result(result, frame="row"), locality, **kw)


def _dispatch(
    spec: AnalysisSpec,
    report,
    artifacts: WindowArtifacts,
    plan: WindowPlan,
    choice: str,
):
    name, kw = spec.name, dict(spec.params)
    result = report[spec.method]
    if name == "headline":
        return headline_stats(report, method=spec.method, frame=choice)
    if name == "timings":
        return timings_for_result(result, frame=choice)
    if name == "top_local":
        return _top_jobs(result, "local", choice, **kw)
    if name == "top_remote":
        return _top_jobs(result, "remote", choice, **kw)
    if name == "thresholds":
        return threshold_sweep_result(result, frame=choice, **kw)
    if name == "table1":
        return activity_breakdown(
            result, artifacts.transfers, columns=_columns_for(artifacts, choice)
        )
    if name == "table2_transfers":
        return method_comparison_transfers(report, frame=choice)
    if name == "table2_jobs":
        return method_comparison_jobs(report, frame=choice)
    if name == "matrix":
        site_names = kw.pop("site_names")
        return build_transfer_matrix(
            artifacts.transfers,
            list(site_names),
            columns=_columns_for(artifacts, choice),
        )
    if name == "sites":
        return build_dashboards(
            artifacts.jobs, artifacts.transfers, columns=_columns_for(artifacts, choice)
        )
    if name == "volume":
        return transfer_volume_profile(
            artifacts.transfers,
            plan.t0,
            plan.t1,
            columns=_columns_for(artifacts, choice),
            **kw,
        )
    if name == "submissions":
        return submission_profile(
            artifacts.jobs,
            plan.t0,
            plan.t1,
            columns=_columns_for(artifacts, choice),
            **kw,
        )
    raise ValueError(f"unknown analysis {name!r} (known: {', '.join(ANALYSIS_NAMES)})")


def analyze_report(
    report,
    artifacts: WindowArtifacts,
    specs: Sequence[Union[str, AnalysisSpec]] = DEFAULT_ANALYSES,
    frame: Optional[str] = None,
) -> Dict[str, object]:
    """Run every spec against an already-built report (in-process).

    The pure analysis half of :func:`run_analyses` — benchmarks time it
    separately from matching, and the serial path delegates here.
    """
    choice = validate_frame(frame) if frame is not None else DEFAULT_FRAME
    return {
        spec.name: _dispatch(spec, report, artifacts, artifacts.plan, choice)
        for spec in (AnalysisSpec.of(s) for s in specs)
    }


def _analysis_task(task):
    """Pool task: one spec against the worker's memoized report."""
    plan, spec, matchers, engine, choice = task
    report = worker_report(plan, list(matchers), engine)
    artifacts = worker_cache().get(plan)
    return _dispatch(spec, report, artifacts, plan, choice)


def run_analyses(
    source,
    plan: WindowPlan,
    specs: Sequence[Union[str, AnalysisSpec]] = DEFAULT_ANALYSES,
    *,
    matchers=None,
    known_sites=None,
    executor=None,
    engine: Optional[str] = None,
    frame: Optional[str] = None,
) -> Dict[str, object]:
    """Run every spec for one window; returns ``{spec name: result}``.

    With a :class:`ParallelExecutor`, specs fan out across the
    executor's persistent pool (one task each); matching work is shared
    through the workers' report memo, and interleaving this with
    ``execute`` sweeps over the same source re-uses the same pool — no
    re-initialization.  Otherwise the specs run in-process against one
    report.  ``frame`` picks the analysis dataplane (row or columnar;
    default :data:`repro.columnar.DEFAULT_FRAME`) — results are
    bit-identical either way.
    """
    resolved: List[AnalysisSpec] = [AnalysisSpec.of(s) for s in specs]
    choice = validate_frame(frame) if frame is not None else DEFAULT_FRAME
    matchers = list(matchers) if matchers is not None else default_matchers(known_sites)

    if isinstance(executor, ParallelExecutor) and resolved:
        eng = executor._engine(engine)
        tasks = [(plan, spec, tuple(matchers), eng, choice) for spec in resolved]
        results = executor.map_with_source(_analysis_task, tasks, source, engine=eng)
        return {spec.name: res for spec, res in zip(resolved, results)}

    if executor is not None:
        eng = executor._engine(engine)
    else:
        eng = validate_engine(engine or DEFAULT_ENGINE)
    if isinstance(executor, SerialExecutor):
        cache = executor._cache_for(source)
    else:
        cache = ArtifactCache(source, engine=eng)
    artifacts = cache.get(plan)
    report = build_report(artifacts, matchers, engine=eng)
    return analyze_report(report, artifacts, resolved, frame=choice)
