"""Plan/materialize/execute dataplane for the §4.2 analysis workflow.

The three stages, mirroring Rucio's declarative-what / daemon-how
split:

* :mod:`repro.exec.plan` — :class:`WindowPlan` describes a
  pre-selection without running it;
* :mod:`repro.exec.artifacts` — :class:`WindowArtifacts` materializes
  a plan (jobs, files, transfers, candidate join) once;
  :class:`ArtifactCache` shares it across matchers, sweeps, and
  analyses, keyed by the source's data generation;
* :mod:`repro.exec.executor` — :class:`SerialExecutor` and
  :class:`ParallelExecutor` turn plans into
  :class:`~repro.core.matching.base.MatchingReport`\\ s with a
  deterministic map/reduce, fanning across cores when asked.

A fourth stage rides on the executors:
:mod:`repro.exec.analysis` fans named §5 analyses
(:func:`run_analyses`) across the :class:`ParallelExecutor`'s
persistent pool, sharing each window's matching report inside the
workers.

Every stage accepts an ``engine`` choice (``"row"`` or ``"columnar"``,
see :mod:`repro.columnar`); both engines read the same artifacts and
produce bit-identical reports.  Analyses additionally accept a
``frame`` choice — the analysis dataplane (row loops vs ``MatchFrame``
kernels), equally bit-identical.
"""

from repro.columnar import (
    DEFAULT_ENGINE,
    DEFAULT_FRAME,
    ENGINES,
    FRAMES,
    validate_engine,
    validate_frame,
)
from repro.exec.artifacts import (
    ArtifactCache,
    WindowArtifacts,
    build_report,
    match_artifacts,
)
from repro.exec.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_matchers,
    make_executor,
)
from repro.exec.plan import WindowPlan, growing_plans, sliding_plans

# The analysis fan-out sits *above* repro.core.analysis, which in turn
# reaches back into repro.columnar — importing it here eagerly would
# close an import cycle during the columnar package's own init.  PEP
# 562 lazy attributes keep ``from repro.exec import run_analyses``
# working without participating in that cycle.
_ANALYSIS_EXPORTS = (
    "ANALYSIS_NAMES",
    "AnalysisSpec",
    "DEFAULT_ANALYSES",
    "analyze_report",
    "run_analyses",
)


def __getattr__(name):
    if name in _ANALYSIS_EXPORTS:
        from repro.exec import analysis

        return getattr(analysis, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ANALYSIS_NAMES",
    "AnalysisSpec",
    "ArtifactCache",
    "DEFAULT_ANALYSES",
    "DEFAULT_ENGINE",
    "DEFAULT_FRAME",
    "ENGINES",
    "Executor",
    "FRAMES",
    "ParallelExecutor",
    "SerialExecutor",
    "WindowArtifacts",
    "WindowPlan",
    "analyze_report",
    "build_report",
    "default_matchers",
    "growing_plans",
    "make_executor",
    "match_artifacts",
    "run_analyses",
    "sliding_plans",
    "validate_engine",
    "validate_frame",
]
