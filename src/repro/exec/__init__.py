"""Plan/materialize/execute dataplane for the §4.2 analysis workflow.

The three stages, mirroring Rucio's declarative-what / daemon-how
split:

* :mod:`repro.exec.plan` — :class:`WindowPlan` describes a
  pre-selection without running it;
* :mod:`repro.exec.artifacts` — :class:`WindowArtifacts` materializes
  a plan (jobs, files, transfers, candidate join) once;
  :class:`ArtifactCache` shares it across matchers, sweeps, and
  analyses, keyed by the source's data generation;
* :mod:`repro.exec.executor` — :class:`SerialExecutor` and
  :class:`ParallelExecutor` turn plans into
  :class:`~repro.core.matching.base.MatchingReport`\\ s with a
  deterministic map/reduce, fanning across cores when asked.

Every stage accepts an ``engine`` choice (``"row"`` or ``"columnar"``,
see :mod:`repro.columnar`); both engines read the same artifacts and
produce bit-identical reports.
"""

from repro.columnar import DEFAULT_ENGINE, ENGINES, validate_engine
from repro.exec.artifacts import (
    ArtifactCache,
    WindowArtifacts,
    build_report,
    match_artifacts,
)
from repro.exec.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_matchers,
    make_executor,
)
from repro.exec.plan import WindowPlan, growing_plans, sliding_plans

__all__ = [
    "ArtifactCache",
    "DEFAULT_ENGINE",
    "ENGINES",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "WindowArtifacts",
    "WindowPlan",
    "build_report",
    "default_matchers",
    "growing_plans",
    "make_executor",
    "match_artifacts",
    "sliding_plans",
    "validate_engine",
]
