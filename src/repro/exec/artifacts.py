"""Materialized window artifacts and their cache.

Materializing a :class:`~repro.exec.plan.WindowPlan` is the expensive
half of the §4.2 workflow: three metastore queries (jobs, transfers,
and one *batched* file lookup) plus the Algorithm-1 join.  Every
matcher — Exact, RM1, RM2, subset — only ever reads these artifacts, so
one materialization serves all methods and every analysis that replays
the same window.

Two join engines share the artifacts:

* ``row`` — the dict-based
  :class:`~repro.core.matching.base.CandidateIndex` plus per-job Python
  loops (the specification);
* ``columnar`` — :class:`~repro.columnar.engine.ColumnarIndex`,
  structure-of-arrays packs with interned strings and vectorized
  kernels (the default; bit-identical output, property-tested).

Both indexes are built lazily, so an artifacts object only ever pays
for the engine(s) that actually run over it, and parity tests can run
both against one pre-selection.

:class:`ArtifactCache` memoizes materializations keyed by
``(t0, t1, user_jobs_only, source generation)``.  The generation term
makes invalidation automatic: ingesting new telemetry bumps the store's
generation, so stale artifacts can never be served.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar import (
    DEFAULT_ENGINE,
    ColumnarIndex,
    StringInterner,
    supports_columnar,
    validate_engine,
)
from repro.columnar.packs import WindowColumns
from repro.core.matching.base import (
    BaseMatcher,
    CandidateIndex,
    MatchingReport,
    MatchResult,
)
from repro.exec.plan import WindowPlan
from repro.obs import get_obs
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord


def _batched_files(source, pandaids: Sequence[int]) -> List[FileRecord]:
    """One query for all jobs' file rows; per-job fallback for bare sources."""
    batched = getattr(source, "files_of_jobs", None)
    if batched is not None:
        return batched(pandaids)
    out: List[FileRecord] = []
    for pid in pandaids:
        out.extend(source.files_of_job(pid))
    return out


class WindowArtifacts:
    """Everything the matchers need for one window, built once."""

    def __init__(
        self,
        plan: WindowPlan,
        generation: int,
        jobs: List[JobRecord],
        files: List[FileRecord],
        transfers: List[TransferRecord],
        engine: Optional[str] = None,
        interner: Optional[StringInterner] = None,
        columns: Optional[WindowColumns] = None,
    ) -> None:
        self.plan = plan
        self.generation = generation
        self.jobs = jobs
        self.files = files
        self.transfers = transfers
        self.engine = validate_engine(engine or DEFAULT_ENGINE)
        self.interner = interner
        self.columns = columns
        self._index: Optional[CandidateIndex] = None
        self._columnar: Optional[ColumnarIndex] = None
        if columns is not None:
            self.n_transfers_with_taskid = int(
                np.count_nonzero(columns.transfers.jeditaskid > 0)
            )
        else:
            self.n_transfers_with_taskid = sum(1 for t in transfers if t.has_jeditaskid)

    @property
    def index(self) -> CandidateIndex:
        """The row engine's dict join (built on first use)."""
        if self._index is None:
            self._index = CandidateIndex(self.files, self.transfers)
        return self._index

    @property
    def columnar(self) -> ColumnarIndex:
        """The columnar engine's packed join (built on first use)."""
        if self._columnar is None:
            self._columnar = ColumnarIndex(
                self.jobs,
                self.files,
                self.transfers,
                interner=self.interner,
                columns=self.columns,
            )
        return self._columnar

    @property
    def window(self) -> Tuple[float, float]:
        return self.plan.window

    @classmethod
    def materialize(
        cls, source, plan: WindowPlan, engine: Optional[str] = None
    ) -> "WindowArtifacts":
        """Run the pre-selection queries; joins are built lazily per engine.

        Sources exposing ``materialize_window`` (the id-array fast path
        of :class:`~repro.metastore.opensearch.OpenSearchLike`) hand
        back pre-lowered column packs alongside the record lists; the
        columnar join then starts from pure NumPy gathers instead of
        re-lowering the window's records.  The row engine skips that
        path — it would pay the full-table lowering for nothing.
        """
        generation = getattr(source, "generation", 0)
        chosen = validate_engine(engine or DEFAULT_ENGINE)
        fast = getattr(source, "materialize_window", None)
        if fast is not None and chosen == "columnar":
            jobs, files, transfers, columns = fast(plan.t0, plan.t1, plan.user_jobs_only)
            return cls(
                plan,
                generation,
                jobs,
                files,
                transfers,
                engine=chosen,
                interner=getattr(source, "interner", None),
                columns=columns,
            )
        if plan.user_jobs_only:
            jobs = source.user_jobs_completed_in(plan.t0, plan.t1)
        else:
            jobs = source.jobs_completed_in(plan.t0, plan.t1)
        transfers = source.transfers_started_in(plan.t0, plan.t1)
        files = _batched_files(source, [j.pandaid for j in jobs])
        return cls(
            plan,
            generation,
            jobs,
            files,
            transfers,
            engine=engine,
            interner=getattr(source, "interner", None),
        )


def match_artifacts(
    matcher: BaseMatcher, artifacts: WindowArtifacts, engine: Optional[str] = None
) -> MatchResult:
    """Run one matcher's pure per-job filter over shared artifacts.

    ``engine`` overrides the artifacts' default.  A matcher whose
    predicates the columnar kernels cannot lower (custom ``site_ok``
    etc.) silently runs on the row engine — correctness always wins.
    """
    chosen = validate_engine(engine or artifacts.engine)
    with get_obs().tracer.span("executor.task", cat="executor") as sp:
        sp.set("method", matcher.name)
        if chosen == "columnar" and supports_columnar(matcher):
            sp.set("engine", "columnar")
            return artifacts.columnar.run(
                matcher, n_transfers_considered=artifacts.n_transfers_with_taskid
            )
        sp.set("engine", "row")
        return matcher.run(
            artifacts.jobs,
            artifacts.index,
            n_transfers_considered=artifacts.n_transfers_with_taskid,
        )


def build_report(
    artifacts: WindowArtifacts,
    matchers: Sequence[BaseMatcher],
    engine: Optional[str] = None,
) -> MatchingReport:
    """All methods over one materialized window."""
    return MatchingReport(
        window=artifacts.window,
        n_jobs=len(artifacts.jobs),
        n_transfers=len(artifacts.transfers),
        n_transfers_with_taskid=artifacts.n_transfers_with_taskid,
        results={m.name: match_artifacts(m, artifacts, engine) for m in matchers},
    )


class ArtifactCache:
    """Memoized materialization over one source, with LRU bounds.

    A cache is bound to its source; ``get`` keys on the plan plus the
    source's current generation, evicting entries from older
    generations eagerly (they can never hit again).  The cache's
    ``engine`` becomes each materialized artifacts' default engine —
    both joins stay lazily available either way.

    The cache is thread-safe — the serving layer shares one instance
    across its whole worker pool.  One lock guards the LRU order, the
    eviction sweeps, and the hit/miss/eviction stats; materialization
    itself runs *outside* the lock so two threads missing on different
    windows overlap their metastore work.  Two threads missing on the
    same key may both materialize, but only one result is kept
    (first-insert wins) and both callers get that shared object —
    duplicated work, never divergent state.
    """

    def __init__(
        self, source, max_entries: int = 32, engine: Optional[str] = None
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.source = source
        self.max_entries = max_entries
        self.engine = validate_engine(engine or DEFAULT_ENGINE)
        self._entries: "OrderedDict[tuple, WindowArtifacts]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, plan: WindowPlan) -> WindowArtifacts:
        obs = get_obs()
        generation = getattr(self.source, "generation", 0)
        key = plan.key(generation)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                if obs.enabled:
                    obs.metrics.counter("artifact.cache", event="hit").inc()
                self._entries.move_to_end(key)
                return cached
            self.misses += 1
            if obs.enabled:
                obs.metrics.counter("artifact.cache", event="miss").inc()
            # Entries from older generations are dead; drop them all.
            stale = [k for k in self._entries if k[3] != generation]
            for k in stale:
                del self._entries[k]
            self._evicted(obs, len(stale))

        with obs.tracer.span("artifact.materialize", cat="artifact") as sp:
            artifacts = WindowArtifacts.materialize(self.source, plan, engine=self.engine)
            sp.set("t0", plan.t0)
            sp.set("t1", plan.t1)
            sp.set("n_jobs", len(artifacts.jobs))
            sp.set("n_files", len(artifacts.files))
            sp.set("n_transfers", len(artifacts.transfers))

        with self._lock:
            racing = self._entries.get(key)
            if racing is not None:
                self._entries.move_to_end(key)
                return racing
            self._entries[key] = artifacts
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evicted(obs, 1)
        return artifacts

    def _evicted(self, obs, n: int) -> None:
        if n:
            self.evictions += n
            if obs.enabled:
                obs.metrics.counter("artifact.cache", event="evict").inc(n)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
            }
