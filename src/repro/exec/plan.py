"""Declarative window plans — the "what" of the plan/execute split.

Rucio scales by separating declarative intent (rules) from daemon-driven
execution; this package applies the same split to the §4.2 analysis
workflow.  A :class:`WindowPlan` *describes* one pre-selection — the
time window and the job population — without touching the metastore.
Materialization (`repro.exec.artifacts`) and scheduling
(`repro.exec.executor`) consume plans; because plans are small frozen
values they hash, pickle, and dedupe cheaply, which is what makes the
artifact cache and process fan-out work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True, order=True)
class WindowPlan:
    """One pre-selection, declaratively: [t0, t1) over a job population."""

    t0: float
    t1: float
    user_jobs_only: bool = True

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(f"window ends before it starts: [{self.t0}, {self.t1})")

    @property
    def length(self) -> float:
        return self.t1 - self.t0

    @property
    def window(self) -> Tuple[float, float]:
        return (self.t0, self.t1)

    def key(self, generation: int) -> Tuple[float, float, bool, int]:
        """Cache key: the plan plus the source's data generation."""
        return (self.t0, self.t1, self.user_jobs_only, generation)


def growing_plans(
    t0: float,
    t1: float,
    n_points: int = 6,
    user_jobs_only: bool = True,
) -> List[WindowPlan]:
    """Plans anchored at ``t0`` growing to the full window (§4.2 curve)."""
    if n_points < 2:
        raise ValueError("need at least two points")
    return [
        WindowPlan(t0, t0 + (t1 - t0) * k / n_points, user_jobs_only)
        for k in range(1, n_points + 1)
    ]


def sliding_plans(
    t0: float,
    t1: float,
    window_length: float,
    step: Optional[float] = None,
    user_jobs_only: bool = True,
) -> List[WindowPlan]:
    """Fixed-length plans sliding across [t0, t1]."""
    if window_length <= 0:
        raise ValueError("window_length must be positive")
    step = step or window_length
    out: List[WindowPlan] = []
    start = t0
    while start + window_length <= t1 + 1e-9:
        out.append(WindowPlan(start, start + window_length, user_jobs_only))
        start += step
    return out
