"""Executors — the "how" of the plan/execute split.

An executor turns window plans into :class:`MatchingReport`\\ s through
a map/reduce interface: the *map* phase runs one (plan, matcher) task
per unit — against a shared :class:`ArtifactCache` serially, or across
a process pool in parallel — and the *reduce* phase reassembles results
into per-plan reports **in plan order**, regardless of completion
order.  That ordering rule is what makes serial and parallel execution
produce bit-identical ``matched_pairs()``: every task is a pure
function of (source, plan, matcher), and reduction never looks at
timing.

Parallel workers each hold their own artifact cache, seeded once per
pool from a pickled copy of the source; tasks for the same plan are
chunked together so a window is materialized once per worker, not once
per matcher.

The pool itself is *persistent*: a :class:`ParallelExecutor` creates
its ``ProcessPoolExecutor`` once and reuses it across every
``execute()``/``map`` call, keyed on ``(source, generation, engine)``
so worker state can never go stale — re-forking and re-pickling the
source per call was the dominant cost of sweep workloads.  The pool is
released by the existing ``close()``/context-manager protocol (and
defensively by ``__del__``); ``pool_inits`` counts initializations so
benchmarks can assert sweeps run on one pool.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.columnar import DEFAULT_ENGINE, validate_engine
from repro.columnar import shm
from repro.core.matching.base import BaseMatcher, MatchingReport, MatchResult
from repro.core.matching.exact import ExactMatcher
from repro.core.matching.rm1 import RM1Matcher
from repro.core.matching.rm2 import RM2Matcher
from repro.core.matching.rm3 import RM3Matcher
from repro.core.matching.subset import SubsetMatcher
from repro.exec.artifacts import ArtifactCache, build_report, match_artifacts
from repro.exec.plan import WindowPlan
from repro.obs import get_obs


def default_matchers(known_sites=None) -> List[BaseMatcher]:
    """The paper's method ladder: Exact, RM1, RM2."""
    known_sites = known_sites or set()
    return [ExactMatcher(known_sites), RM1Matcher(known_sites), RM2Matcher(known_sites)]


#: Method-name registry behind ``--methods``; every entry takes the
#: known-site set as its only positional argument.
MATCHER_FACTORIES = {
    "exact": ExactMatcher,
    "rm1": RM1Matcher,
    "rm2": RM2Matcher,
    "rm3": RM3Matcher,
    "subset": SubsetMatcher,
}


def make_matchers(
    names: Sequence[str],
    known_sites=None,
    rm3_threshold: Optional[float] = None,
) -> List[BaseMatcher]:
    """Instantiate matchers by registry name, in the given order.

    ``rm3_threshold`` overrides :data:`~repro.core.matching.rm3.
    DEFAULT_RM3_THRESHOLD` for any ``rm3`` entries; the other methods
    have no tuning knobs.
    """
    known_sites = known_sites or set()
    out: List[BaseMatcher] = []
    for name in names:
        factory = MATCHER_FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown matching method {name!r}; "
                f"expected one of {sorted(MATCHER_FACTORIES)}"
            )
        if name == "rm3" and rm3_threshold is not None:
            out.append(RM3Matcher(known_sites, threshold=rm3_threshold))
        else:
            out.append(factory(known_sites))
    return out


class Executor:
    """Map/reduce over window plans; see :class:`SerialExecutor` and
    :class:`ParallelExecutor` for the two scheduling policies."""

    #: degree of parallelism (1 for serial)
    workers: int = 1

    #: join engine for matching tasks (None = DEFAULT_ENGINE)
    engine: Optional[str] = None

    def map(self, fn: Callable, items: Iterable) -> List:
        raise NotImplementedError

    def execute(
        self,
        source,
        plans: Sequence[WindowPlan],
        matchers: Optional[Sequence[BaseMatcher]] = None,
        known_sites=None,
        engine: Optional[str] = None,
    ) -> List[MatchingReport]:
        raise NotImplementedError

    def _engine(self, engine: Optional[str]) -> str:
        """Resolve a per-call engine override against the executor default."""
        return validate_engine(engine or self.engine or DEFAULT_ENGINE)

    def close(self) -> None:
        """Release pooled resources (no-op for serial execution)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process execution against one shared artifact cache."""

    def __init__(
        self, cache: Optional[ArtifactCache] = None, engine: Optional[str] = None
    ) -> None:
        self.cache = cache
        self.engine = validate_engine(engine) if engine is not None else None

    def map(self, fn: Callable, items: Iterable) -> List:
        return [fn(item) for item in items]

    def _cache_for(self, source) -> ArtifactCache:
        if self.cache is None or self.cache.source is not source:
            self.cache = ArtifactCache(source, engine=self.engine)
        return self.cache

    def execute(
        self,
        source,
        plans: Sequence[WindowPlan],
        matchers: Optional[Sequence[BaseMatcher]] = None,
        known_sites=None,
        engine: Optional[str] = None,
    ) -> List[MatchingReport]:
        matchers = list(matchers) if matchers is not None else default_matchers(known_sites)
        eng = self._engine(engine)
        cache = self._cache_for(source)
        tracer = get_obs().tracer
        reports = []
        for plan in plans:
            with tracer.span("executor.window", cat="executor") as sp:
                report = build_report(cache.get(plan), matchers, engine=eng)
                sp.set("t0", plan.t0)
                sp.set("t1", plan.t1)
                sp.set("n_jobs", report.n_jobs)
                sp.set("n_matchers", len(matchers))
            reports.append(report)
        return reports


# -- process-pool plumbing ----------------------------------------------------
#
# Worker state is module-global: the pool initializer deserializes the
# source once per worker process, and every task then only ships a
# (plan, matcher) pair.  Caches live per worker, so a worker that runs
# several matchers over one plan materializes the window once.

_WORKER_CACHE: Optional[ArtifactCache] = None

#: Per-worker memo of whole-window matching reports, keyed by
#: ``(plan key, matcher names, engine)``.  Analysis fan-out tasks for
#: one report share the matching work through this; it lives exactly as
#: long as the worker process (= the pool), and the pool is keyed on
#: the source generation, so entries can never go stale.
_WORKER_REPORTS: dict = {}


def _worker_init(source, engine: Optional[str] = None) -> None:
    global _WORKER_CACHE
    if isinstance(source, shm.ArchiveRef):
        # Zero-copy path: the initializer received a pack-archive
        # handle, not a pickled source — attach to the memory-mapped
        # columns instead of deserializing megabytes of records.
        source = shm.attach(source)
    _WORKER_CACHE = ArtifactCache(source, engine=engine)
    _WORKER_REPORTS.clear()


def worker_cache() -> ArtifactCache:
    """The calling worker process's artifact cache (post-initializer)."""
    assert _WORKER_CACHE is not None, "pool initializer did not run"
    return _WORKER_CACHE


def worker_report(
    plan: WindowPlan, matchers: Sequence[BaseMatcher], engine: Optional[str]
) -> MatchingReport:
    """Memoized whole-window report inside one worker process."""
    cache = worker_cache()
    generation = getattr(cache.source, "generation", 0)
    key = (plan.key(generation), tuple(m.name for m in matchers), engine)
    report = _WORKER_REPORTS.get(key)
    if report is None:
        report = build_report(cache.get(plan), matchers, engine=engine)
        _WORKER_REPORTS[key] = report
    return report


def _worker_task(task: Tuple[WindowPlan, BaseMatcher]):
    plan, matcher = task
    assert _WORKER_CACHE is not None, "pool initializer did not run"
    artifacts = _WORKER_CACHE.get(plan)
    result = match_artifacts(matcher, artifacts)
    return (
        result,
        len(artifacts.jobs),
        len(artifacts.transfers),
        artifacts.n_transfers_with_taskid,
    )


# -- source identity ----------------------------------------------------------

#: Monotonic tokens for source objects.  ``id()`` is recycled by the
#: allocator the moment a source is garbage-collected, so keying pools
#: on it could silently serve a *new* source from a *stale* worker
#: cache; tokens are handed out once per live object and never reused.
_SOURCE_TOKEN_BY_OBJ: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SOURCE_TOKEN_COUNTER = itertools.count(1)


def source_token(source) -> tuple:
    """A pool-key-safe identity for ``source``.

    ``("tok", n)`` with a monotonically assigned ``n`` for
    weak-referenceable objects (every real source); falls back to
    ``("id", id(source))`` for exotic objects that support neither weak
    references nor hashing — those keep the old (recyclable) semantics
    rather than being leaked by a strong-reference registry.
    """
    try:
        tok = _SOURCE_TOKEN_BY_OBJ.get(source)
        if tok is None:
            tok = next(_SOURCE_TOKEN_COUNTER)
            _SOURCE_TOKEN_BY_OBJ[source] = tok
        return ("tok", tok)
    except TypeError:
        return ("id", id(source))


class ParallelExecutor(Executor):
    """Process-pool execution: plans × matchers fanned across cores.

    Determinism: ``ProcessPoolExecutor.map`` yields results in task
    order, and reduction groups them back per plan positionally, so the
    output is bit-identical to :class:`SerialExecutor` — completion
    order never influences it.  Matcher instances are pickled per task;
    worker-side mutations (e.g. ``SubsetMatcher.fallbacks``) stay in
    the worker.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        mp_context=None,
        engine: Optional[str] = None,
        shared_memory: Optional[bool] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or os.cpu_count() or 1
        self._mp_context = mp_context
        self.engine = validate_engine(engine) if engine is not None else None
        #: Worker seeding strategy.  ``None`` (auto) spools the source
        #: to a zero-copy pack archive whenever the engine is columnar
        #: and the source exposes column packs, falling back to the
        #: pickled-source initializer otherwise; ``True`` forces the
        #: attempt, ``False`` forces pickling.
        self.shared_memory = shared_memory
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_key: Optional[tuple] = None
        self._archive_key: Optional[tuple] = None
        # Guards pool creation/rotation, archive acquire/release, and
        # close(): the serving layer drives one executor from many
        # threads, and an unguarded key-change check could build two
        # pools (leaking one plus its archive refcount) or double-release
        # an archive when two callers race a generation bump.
        self._lock = threading.RLock()
        #: Number of pool initializations over this executor's lifetime;
        #: a sweep over one source must leave this at 1.
        self.pool_inits = 0
        #: How the most recent source-keyed pool seeded its workers
        #: ("shm" or "pickle"); None before the first one.
        self.seed_mode: Optional[str] = None

    # -- persistent pool lifecycle -------------------------------------------

    def _source_key(self, source, engine: str) -> tuple:
        return ("source", source_token(source), getattr(source, "generation", 0), engine)

    def _shm_wanted(self, source, engine: str) -> bool:
        if self.shared_memory is False:
            return False
        if self.shared_memory:
            return True
        return engine == "columnar" and hasattr(source, "column_packs")

    def _init_spec(self, source, engine: str, key: tuple) -> tuple:
        """Initializer args for a new pool: an archive ref or the source.

        Acquires a refcounted pack archive when shared memory is wanted
        and the source can be spooled; any export failure degrades to
        the pickle path (shared memory is an optimization, never a
        requirement).
        """
        obs = get_obs()
        if self._shm_wanted(source, engine):
            try:
                archive = shm.acquire(source, key)
            except shm.ExportError:
                if obs.enabled:
                    obs.metrics.counter("executor.shm", event="fallback").inc()
            else:
                self._archive_key = key
                self.seed_mode = "shm"
                return (shm.ArchiveRef(str(archive.path)), engine)
        self.seed_mode = "pickle"
        return (source, engine)

    def _release_archive(self) -> None:
        if self._archive_key is not None:
            shm.release(self._archive_key)
            self._archive_key = None

    def _pool_for(self, key: tuple, initargs_for=None) -> ProcessPoolExecutor:
        """The persistent pool for ``key``, (re)created only on key change.

        ``key`` captures everything the workers' global state depends
        on — the source identity token, its data generation, and the
        engine — so reuse is safe exactly when the key matches.  A bare
        pool (``key[0] == "bare"``) carries no worker state and any
        live pool can serve it.  ``initargs_for`` is invoked only when
        a pool is actually created, so archive exports happen once per
        key, not once per call.

        Thread-safe: concurrent callers on one key share one pool (the
        creation race is resolved under the executor lock), and callers
        racing a key change rotate exactly once.
        """
        obs = get_obs()
        with self._lock:
            if self._pool is not None:
                if key == self._pool_key or key[0] == "bare":
                    if obs.enabled:
                        obs.metrics.counter("executor.pool", event="reuse").inc()
                    return self._pool
                self._pool.shutdown(wait=True)
                self._pool = None
                # The outgoing pool's workers held the old archive's maps;
                # they are gone after shutdown, so the spool can go too.
                self._release_archive()
            self.pool_inits += 1
            if obs.enabled:
                obs.metrics.counter("executor.pool", event="init").inc()
            with obs.tracer.span("executor.pool_init", cat="executor") as sp:
                sp.set("workers", self.workers)
                initargs = initargs_for() if initargs_for is not None else None
                sp.set("seed_mode", self.seed_mode if initargs is not None else "none")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self._mp_context,
                    initializer=_worker_init if initargs is not None else None,
                    initargs=initargs if initargs is not None else (),
                )
            self._pool_key = key
            return self._pool

    def close(self) -> None:
        """Release the pool and any spooled archive.  Idempotent and
        thread-safe: a second (or concurrent) close is a no-op."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_key = None
            self._release_archive()

    def __del__(self) -> None:
        # Defensive: tests and sweeps that forget close() must not leak
        # worker processes or spooled archives.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)
        try:
            self._release_archive()
        except Exception:
            pass

    def map(self, fn: Callable, items: Iterable) -> List:
        """Generic parallel map; ``fn`` and items must be picklable.

        Routed through the persistent pool: an existing pool (bare or
        source-keyed) is reused as-is, so interleaving ``map`` calls
        with ``execute`` sweeps costs no re-initialization.
        """
        items = list(items)
        if not items:
            return []
        pool = self._pool_for(("bare",))
        with get_obs().tracer.span("executor.map", cat="executor") as sp:
            sp.set("n_items", len(items))
            sp.set("workers", self.workers)
            return list(pool.map(fn, items))

    def map_with_source(
        self, fn: Callable, items: Iterable, source, engine: Optional[str] = None
    ) -> List:
        """Parallel map whose tasks read the per-worker source state.

        Ensures the pool's workers were initialized for ``source`` (and
        ``engine``), exactly like :meth:`execute` — the entry point the
        analysis fan-out (:mod:`repro.exec.analysis`) builds on.
        """
        items = list(items)
        if not items:
            return []
        eng = self._engine(engine)
        key = self._source_key(source, eng)
        pool = self._pool_for(key, initargs_for=lambda: self._init_spec(source, eng, key))
        with get_obs().tracer.span("executor.map", cat="executor") as sp:
            sp.set("n_items", len(items))
            sp.set("workers", self.workers)
            return list(pool.map(fn, items))

    def execute(
        self,
        source,
        plans: Sequence[WindowPlan],
        matchers: Optional[Sequence[BaseMatcher]] = None,
        known_sites=None,
        engine: Optional[str] = None,
    ) -> List[MatchingReport]:
        matchers = list(matchers) if matchers is not None else default_matchers(known_sites)
        plans = list(plans)
        eng = self._engine(engine)
        if not plans or not matchers:
            return SerialExecutor(engine=eng).execute(source, plans, matchers)

        tasks = [(plan, matcher) for plan in plans for matcher in matchers]
        if len(plans) >= self.workers:
            # Sweep case: keep one plan's tasks in one chunk so each
            # window is materialized by exactly one worker.
            chunksize = len(matchers)
        else:
            # Few plans, many matchers: matcher-level parallelism wins
            # even though several workers materialize the same window.
            chunksize = 1
        key = self._source_key(source, eng)
        pool = self._pool_for(key, initargs_for=lambda: self._init_spec(source, eng, key))
        with get_obs().tracer.span("executor.map", cat="executor") as sp:
            sp.set("n_tasks", len(tasks))
            sp.set("workers", self.workers)
            sp.set("chunksize", chunksize)
            partials = list(pool.map(_worker_task, tasks, chunksize=chunksize))

        reports: List[MatchingReport] = []
        cursor = iter(partials)
        for plan in plans:
            results = {}
            n_jobs = n_transfers = n_taskid = 0
            for _ in matchers:
                result, n_jobs, n_transfers, n_taskid = next(cursor)
                results[result.method] = result
            reports.append(MatchingReport(
                window=plan.window,
                n_jobs=n_jobs,
                n_transfers=n_transfers,
                n_transfers_with_taskid=n_taskid,
                results=results,
            ))
        return reports


def make_executor(
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    shared_memory: Optional[bool] = None,
) -> Executor:
    """``--workers``/``--engine`` plumbing: 0/1/None → serial, N>1 → N
    processes; ``engine`` picks the join implementation either way."""
    if workers is None or workers <= 1:
        return SerialExecutor(engine=engine)
    return ParallelExecutor(workers=workers, engine=engine, shared_memory=shared_memory)
