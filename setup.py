"""Setup shim.

The build environment has no network access and no ``wheel`` package, so
PEP 517 editable installs cannot build the editable wheel.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` use the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
