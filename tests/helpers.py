"""Shared builders for unit tests: records, topologies, harnesses."""

from __future__ import annotations

from typing import List, Optional

from repro.grid.presets import build_mini
from repro.grid.topology import GridTopology
from repro.telemetry.records import FileRecord, JobRecord, TransferRecord


def make_job(
    pandaid: int = 1,
    jeditaskid: int = 100,
    site: str = "SITE-A",
    creation: float = 0.0,
    start: Optional[float] = 1000.0,
    end: Optional[float] = 2000.0,
    nin: int = 3000,
    nout: int = 0,
    status: str = "finished",
    taskstatus: str = "finished",
    label: str = "user",
) -> JobRecord:
    return JobRecord(
        pandaid=pandaid,
        jeditaskid=jeditaskid,
        computingsite=site,
        prodsourcelabel=label,
        status=status,
        taskstatus=taskstatus,
        creationtime=creation,
        starttime=start,
        endtime=end,
        ninputfilebytes=nin,
        noutputfilebytes=nout,
    )


def make_file(
    pandaid: int = 1,
    jeditaskid: int = 100,
    lfn: str = "f1",
    dataset: str = "ds",
    proddblock: str = "ds",
    scope: str = "user.x",
    size: int = 1000,
    ftype: str = "input",
) -> FileRecord:
    return FileRecord(
        pandaid=pandaid,
        jeditaskid=jeditaskid,
        lfn=lfn,
        dataset=dataset,
        proddblock=proddblock,
        scope=scope,
        file_size=size,
        ftype=ftype,
    )


def make_transfer(
    row_id: int = 1,
    lfn: str = "f1",
    dataset: str = "ds",
    proddblock: str = "ds",
    scope: str = "user.x",
    size: int = 1000,
    src: str = "SITE-A",
    dst: str = "SITE-A",
    activity: str = "Analysis Download",
    download: bool = True,
    upload: bool = False,
    start: float = 100.0,
    end: float = 200.0,
    jeditaskid: int = 100,
    success: bool = True,
) -> TransferRecord:
    return TransferRecord(
        row_id=row_id,
        lfn=lfn,
        scope=scope,
        dataset=dataset,
        proddblock=proddblock,
        file_size=size,
        source_site=src,
        destination_site=dst,
        activity=activity,
        is_download=download,
        is_upload=upload,
        starttime=start,
        endtime=end,
        success=success,
        jeditaskid=jeditaskid,
    )


def matching_triple(n_files: int = 3, site: str = "SITE-A"):
    """A job, its file rows, and perfectly matching transfers."""
    job = make_job(site=site, nin=n_files * 1000)
    files = [
        make_file(lfn=f"f{i}", size=1000)
        for i in range(n_files)
    ]
    transfers = [
        make_transfer(row_id=i + 1, lfn=f"f{i}", size=1000, src=site, dst=site,
                      start=100.0 + i, end=150.0 + i)
        for i in range(n_files)
    ]
    return job, files, transfers


def mini_topology(seed: int = 3) -> GridTopology:
    return build_mini(seed=seed)
