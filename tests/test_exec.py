"""Tests for the plan/materialize/execute dataplane (``repro.exec``).

Covers the hard requirements of the refactor: serial and parallel
executors must produce bit-identical reports; the artifact cache must
eliminate repeated pre-selections and ``CandidateIndex`` builds; and
cache entries must die when the source's data generation changes.
"""

import pytest

from repro.columnar import ColumnarIndex
from repro.core.matching.base import CandidateIndex, JobMatch, MatchResult
from repro.core.matching.pipeline import MatchingPipeline
from repro.core.matching.subset import SubsetMatcher
from repro.core.matching.windows import growing_window_curve, multi_method_sweep
from repro.exec import (
    ArtifactCache,
    ParallelExecutor,
    SerialExecutor,
    WindowPlan,
    default_matchers,
    growing_plans,
    make_executor,
    sliding_plans,
)
from repro.metastore.opensearch import OpenSearchLike

from tests.helpers import make_file, make_job, make_transfer, matching_triple


def tiny_source() -> OpenSearchLike:
    """A private one-job source (safe to mutate, unlike the fixtures)."""
    job, files, transfers = matching_triple()
    source = OpenSearchLike()
    source.jobs.ingest([job])
    source.files.ingest(files)
    source.transfers.ingest(transfers)
    source.store.freeze()
    return source


class TestWindowPlan:
    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            WindowPlan(10.0, 5.0)

    def test_key_includes_generation(self):
        plan = WindowPlan(0.0, 10.0)
        assert plan.key(1) != plan.key(2)
        assert plan.key(3) == (0.0, 10.0, True, 3)

    def test_plans_are_hashable_and_ordered(self):
        plans = sliding_plans(0.0, 100.0, 25.0)
        assert len(set(plans)) == len(plans) == 4
        assert sorted(plans) == plans

    def test_growing_plans_end_at_full_window(self):
        plans = growing_plans(0.0, 60.0, n_points=3)
        assert [p.t1 for p in plans] == [20.0, 40.0, 60.0]
        assert all(p.t0 == 0.0 for p in plans)

    def test_growing_plans_need_two_points(self):
        with pytest.raises(ValueError):
            growing_plans(0.0, 60.0, n_points=1)


class TestArtifactCache:
    def test_hit_returns_same_artifacts(self):
        cache = ArtifactCache(tiny_source())
        plan = WindowPlan(0.0, 10_000.0)
        first = cache.get(plan)
        assert cache.get(plan) is first
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1, "evictions": 0}

    @pytest.mark.parametrize("engine,counter", [
        ("row", CandidateIndex),
        ("columnar", ColumnarIndex),
    ])
    def test_cache_eliminates_index_rebuilds(self, engine, counter):
        """The build-counter requirement: N methods, one join build."""
        source = tiny_source()
        pipeline = MatchingPipeline(source, known_sites={"SITE-A"}, engine=engine)
        before = counter.build_count
        pipeline.run(0.0, 10_000.0)  # exact + rm1 + rm2
        pipeline.run(0.0, 10_000.0, matchers=[SubsetMatcher({"SITE-A"})])
        growing_window_curve(pipeline, 0.0, 10_000.0, n_points=2)
        # one build for [0, 10000) shared by all five matcher runs, plus
        # one for the curve's half window [0, 5000).
        assert counter.build_count - before == 2

    def test_generation_change_invalidates(self):
        source = tiny_source()
        cache = ArtifactCache(source)
        plan = WindowPlan(0.0, 10_000.0)
        stale = cache.get(plan)
        assert len(stale.jobs) == 1

        job2 = make_job(pandaid=2, jeditaskid=200)
        source.jobs.ingest([job2])
        source.files.ingest([make_file(pandaid=2, jeditaskid=200, lfn="g0")])
        source.store.freeze()

        fresh = cache.get(plan)
        assert fresh is not stale
        assert len(fresh.jobs) == 2
        assert cache.misses == 2
        # the stale generation's entry was evicted, not retained
        assert len(cache) == 1

    def test_lru_bound(self):
        cache = ArtifactCache(tiny_source(), max_entries=2)
        for k in range(4):
            cache.get(WindowPlan(0.0, 1000.0 * (k + 1)))
        assert len(cache) == 2

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            ArtifactCache(tiny_source(), max_entries=0)

    def test_per_job_fallback_for_bare_sources(self):
        """Sources without files_of_jobs still materialize correctly."""
        source = tiny_source()

        class Bare:
            generation = 0
            user_jobs_completed_in = source.user_jobs_completed_in
            transfers_started_in = source.transfers_started_in
            files_of_job = source.files_of_job

        artifacts = ArtifactCache(Bare()).get(WindowPlan(0.0, 10_000.0))
        assert len(artifacts.files) == 3


def _report_fingerprint(report):
    """Everything the parity requirement names, per method."""
    return {
        "n_jobs": report.n_jobs,
        "n_transfers": report.n_transfers,
        "n_transfers_with_taskid": report.n_transfers_with_taskid,
        "methods": {
            m: {
                "pairs": report[m].matched_pairs(),
                "n_matched_jobs": report[m].n_matched_jobs,
                "n_matched_transfers": report[m].n_matched_transfers,
                "by_class": report[m].jobs_by_class(),
                "local_remote": report[m].local_remote_split(),
            }
            for m in report.methods
        },
    }


class TestExecutorParity:
    """Serial and parallel execution must be bit-identical (seeded workload)."""

    @pytest.fixture(scope="class")
    def plans(self, small_study):
        t0, t1 = small_study.harness.window
        return growing_plans(t0, t1, n_points=3)

    @pytest.mark.parametrize("matcher_set", ["default", "subset"])
    def test_reports_identical(self, small_study, plans, matcher_set):
        known = small_study.harness.known_site_names()
        matchers = None if matcher_set == "default" else [SubsetMatcher(known)]
        serial = SerialExecutor().execute(
            small_study.source, plans, matchers=matchers, known_sites=known)
        parallel = ParallelExecutor(workers=2).execute(
            small_study.source, plans, matchers=matchers, known_sites=known)
        assert len(serial) == len(parallel) == len(plans)
        for s, p in zip(serial, parallel):
            assert _report_fingerprint(s) == _report_fingerprint(p)

    def test_pipeline_run_with_parallel_executor(self, small_study):
        t0, t1 = small_study.harness.window
        pipeline = MatchingPipeline(
            small_study.source, known_sites=small_study.harness.known_site_names())
        serial = pipeline.run(t0, t1)
        parallel = pipeline.run(t0, t1, executor=ParallelExecutor(workers=2))
        assert _report_fingerprint(serial) == _report_fingerprint(parallel)

    def test_multi_method_sweep_parity(self, small_study, plans):
        pipeline = MatchingPipeline(
            small_study.source, known_sites=small_study.harness.known_site_names())
        serial = multi_method_sweep(pipeline, plans)
        parallel = multi_method_sweep(
            pipeline, plans, executor=ParallelExecutor(workers=2))
        for s, p in zip(serial, parallel):
            assert _report_fingerprint(s) == _report_fingerprint(p)

    def test_empty_plan_list(self, small_study):
        assert ParallelExecutor(workers=2).execute(small_study.source, []) == []

    def test_parallel_map(self):
        assert ParallelExecutor(workers=2).map(abs, [-1, 2, -3]) == [1, 2, 3]

    def test_serial_map(self):
        assert SerialExecutor().map(abs, [-1, 2, -3]) == [1, 2, 3]


class TestMakeExecutor:
    def test_serial_for_one_worker(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)

    def test_parallel_above_one(self):
        ex = make_executor(3)
        assert isinstance(ex, ParallelExecutor)
        assert ex.workers == 3

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)


class TestMatchedPairsUniqueness:
    """The double-counting satellite: pairs are always unique."""

    def test_duplicate_transfers_deduped(self):
        job, files, transfers = matching_triple()
        dup = MatchResult(
            method="bad",
            matches=[JobMatch(job=job, transfers=[transfers[0], transfers[0], transfers[1]])],
            n_jobs_considered=1,
            n_transfers_considered=3,
        )
        pairs = dup.matched_pairs()
        assert len(pairs) == len(set(pairs)) == 2
        assert dup.n_matched_transfers == 2

    def test_pairs_unique_on_seeded_workload(self, small_report):
        for method in small_report.methods:
            pairs = small_report[method].matched_pairs()
            assert len(pairs) == len(set(pairs))

    def test_order_preserved(self):
        job, files, transfers = matching_triple()
        res = MatchResult(
            method="ok",
            matches=[JobMatch(job=job, transfers=list(reversed(transfers)))],
            n_jobs_considered=1,
            n_transfers_considered=3,
        )
        pairs = res.matched_pairs()
        assert pairs == [(job.pandaid, t.row_id) for t in reversed(transfers)]


class TestBatchedPreselection:
    """The N+1 satellite: one files query per window, same rows."""

    def test_files_of_jobs_matches_per_job_union(self, small_study):
        t0, t1 = small_study.harness.window
        jobs = small_study.source.user_jobs_completed_in(t0, t1)[:50]
        batched = small_study.source.files_of_jobs([j.pandaid for j in jobs])
        per_job = []
        for j in jobs:
            per_job.extend(small_study.source.files_of_job(j.pandaid))
        assert sorted(map(id, batched)) == sorted(map(id, per_job))

    def test_pipeline_preselect_files_batched(self, small_study):
        pipeline = MatchingPipeline(small_study.source)
        t0, t1 = small_study.harness.window
        jobs = pipeline.preselect_jobs(t0, t1)
        files = pipeline.preselect_files(jobs)
        assert {f.pandaid for f in files} <= {j.pandaid for j in jobs}


class TestPersistentPool:
    """The zero-rebuild pool: one initialization per (source, generation)."""

    def test_pool_survives_execute_and_map(self):
        source = tiny_source()
        plans = sliding_plans(0.0, 20_000.0, 10_000.0)
        with ParallelExecutor(workers=2) as ex:
            ex.execute(source, plans[:1])
            ex.execute(source, plans)
            assert ex.map(abs, [-1, 2, -3]) == [1, 2, 3]
            ex.execute(source, plans)
            assert ex.pool_inits == 1

    def test_close_releases_pool(self):
        source = tiny_source()
        ex = ParallelExecutor(workers=2)
        ex.execute(source, [WindowPlan(0.0, 10_000.0)])
        ex.close()
        assert ex._pool is None
        ex.execute(source, [WindowPlan(0.0, 10_000.0)])
        ex.close()
        assert ex.pool_inits == 2

    def test_generation_bump_reinitializes(self):
        source = tiny_source()
        plan = WindowPlan(0.0, 10_000.0)
        with ParallelExecutor(workers=2) as ex:
            before = ex.execute(source, [plan])[0]
            job2, files2, _ = matching_triple()
            job2 = make_job(pandaid=999_999, creation=1.0, start=2.0, end=3.0)
            source.jobs.ingest([job2])
            source.store.freeze()
            after = ex.execute(source, [plan])[0]
            assert ex.pool_inits == 2
            assert after.n_jobs >= before.n_jobs

    def test_engine_change_reinitializes(self):
        source = tiny_source()
        plan = WindowPlan(0.0, 10_000.0)
        with ParallelExecutor(workers=2) as ex:
            col = ex.execute(source, [plan], engine="columnar")[0]
            row = ex.execute(source, [plan], engine="row")[0]
            assert ex.pool_inits == 2
            assert _report_fingerprint(col) == _report_fingerprint(row)


class TestArtifactCacheThreadSafety:
    """The serving layer shares one cache across worker threads."""

    def test_hammer_accounting_is_exact(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        source = tiny_source()
        cache = ArtifactCache(source, max_entries=4)
        plans = [WindowPlan(0.0, 5_000.0 + 1_000.0 * k) for k in range(3)]
        threads, rounds = 8, 60
        barrier = threading.Barrier(threads)

        def work(i):
            barrier.wait()
            got = []
            for k in range(rounds):
                got.append(cache.get(plans[(i + k) % len(plans)]))
            return got

        with ThreadPoolExecutor(threads) as pool:
            results = [f.result() for f in
                       [pool.submit(work, i) for i in range(threads)]]
        # no lost accounting: every get is either a hit or a miss
        assert cache.hits + cache.misses == threads * rounds
        assert len(cache) <= 4
        # every caller got artifacts for the generation it asked under
        for got in results:
            assert all(a.generation == source.generation for a in got)

    def test_racing_misses_converge_to_one_entry(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        source = tiny_source()
        cache = ArtifactCache(source)
        plan = WindowPlan(0.0, 10_000.0)
        barrier = threading.Barrier(8)

        def work(_):
            barrier.wait()
            return cache.get(plan)

        with ThreadPoolExecutor(8) as pool:
            got = [f.result() for f in [pool.submit(work, i) for i in range(8)]]
        # first insert wins: late racers adopt the cached object, so at
        # most one materialization survives and later gets share it
        assert len(cache) == 1
        survivor = cache.get(plan)
        assert sum(1 for a in got if a is survivor) >= 1
        assert cache.get(plan) is survivor
